//! Server job-lifecycle coverage: submit→poll→result equality with a
//! standalone oracle run, cancellation (queued and mid-run), quota
//! rejection, deadline expiry mapping to [`SimError`], and cache
//! hit/miss counters.

use std::sync::Arc;
use std::time::Duration;

use parsim_core::{EventDriven, LaneStimulus, SimConfig, SimError};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::{Builder, Netlist, NodeId};
use parsim_server::{JobOutcome, JobSpec, JobStatus, Server, ServerConfig, SubmitError};
use parsim_telemetry::{ServerCounter, ServerGauge};

/// Input schedules, one per input node.
type Schedules = Vec<Vec<(Time, Value)>>;

struct Circuit {
    netlist: Netlist,
    inputs: Vec<NodeId>,
    watch: Vec<NodeId>,
}

/// A small deterministic unit-delay circuit: clock, two stimulus inputs,
/// and a few gates. With `drive: Some`, inputs get `Vector` drivers (the
/// scalar-oracle form); with `None` they stay floating for batch-lane
/// overrides. Node creation order is identical either way, so `NodeId`s
/// line up across the two forms.
fn circuit(drive: Option<&Schedules>) -> Circuit {
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let in0 = b.node("in0", 1);
    let in1 = b.node("in1", 1);
    let g0 = b.node("g0", 1);
    let g1 = b.node("g1", 1);
    let g2 = b.node("g2", 1);
    b.element(
        "osc",
        ElementKind::Clock { half_period: 4, offset: 4 },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    if let Some(schedules) = drive {
        for (i, (input, sched)) in [in0, in1].iter().zip(schedules).enumerate() {
            let changes: Arc<[(u64, Value)]> =
                sched.iter().map(|&(t, v)| (t.ticks(), v)).collect::<Vec<_>>().into();
            b.element(
                &format!("vec{i}"),
                ElementKind::Vector { changes },
                Delay(1),
                &[],
                &[*input],
            )
            .unwrap();
        }
    }
    b.element("and0", ElementKind::And, Delay(1), &[in0, in1], &[g0]).unwrap();
    b.element("xor0", ElementKind::Xor, Delay(1), &[g0, clk], &[g1]).unwrap();
    b.element("nor0", ElementKind::Nor, Delay(1), &[g1, in0], &[g2]).unwrap();
    Circuit {
        netlist: b.finish().unwrap(),
        inputs: vec![in0, in1],
        watch: vec![clk, g0, g1, g2],
    }
}

fn bit(v: u64) -> Value {
    Value::from_u64(v, 1)
}

fn sched_a() -> Schedules {
    vec![
        vec![(Time(0), bit(0)), (Time(6), bit(1)), (Time(20), bit(0))],
        vec![(Time(0), bit(1)), (Time(11), bit(0))],
    ]
}

fn sched_b() -> Schedules {
    vec![
        vec![(Time(0), bit(1)), (Time(9), bit(0)), (Time(25), bit(1))],
        vec![(Time(0), bit(0)), (Time(15), bit(1))],
    ]
}

fn stimulus_for(c: &Circuit, schedules: &Schedules) -> LaneStimulus {
    let mut s = LaneStimulus::base();
    for (input, sched) in c.inputs.iter().zip(schedules) {
        s = s.drive(*input, sched.clone());
    }
    s
}

/// The standalone scalar-oracle result for one stimulus.
fn oracle(schedules: &Schedules, end: Time) -> parsim_core::SimResult {
    let c = circuit(Some(schedules));
    let cfg = SimConfig::new(end).watch_all(c.watch.clone());
    EventDriven::run(&c.netlist, &cfg).unwrap()
}

fn spec_for(tenant: &str, schedules: &Schedules, end: Time) -> JobSpec {
    let c = circuit(None);
    let watch = c.watch.clone();
    let stimulus = stimulus_for(&c, schedules);
    JobSpec::new(tenant, Arc::new(c.netlist), end)
        .stimulus(stimulus)
        .watch(watch[0])
        .watch(watch[1])
        .watch(watch[2])
        .watch(watch[3])
}

const WAIT: Duration = Duration::from_secs(30);

#[test]
fn submit_poll_result_matches_standalone_oracle() {
    let server = Server::start(ServerConfig::default());
    let end = Time(40);
    let id = server.submit(spec_for("alice", &sched_a(), end)).unwrap();
    assert_eq!(server.wait(id, WAIT), Some(JobStatus::Done));
    assert_eq!(server.status(id), Some(JobStatus::Done));
    let JobOutcome::Done(artifact) = server.outcome(id).unwrap() else {
        panic!("expected a done artifact");
    };
    let oracle = oracle(&sched_a(), end);
    let c = circuit(None);
    for node in c.watch {
        assert_eq!(
            artifact.result.waveform(node).unwrap().changes(),
            oracle.waveform(node).unwrap().changes(),
            "node {node:?} must match the scalar oracle"
        );
    }
    assert_eq!(artifact.result.to_vcd(), oracle.to_vcd(), "VCDs byte-identical");
    assert!(!artifact.cache_hit, "first pass of a digest compiles");
    assert_eq!(artifact.lanes_in_batch, 1);
}

#[test]
fn segmented_pass_matches_oracle_too() {
    let server = Server::start(ServerConfig {
        segment_ticks: 7, // uneven on purpose: 40 ticks = 5 full cuts + remainder
        ..ServerConfig::default()
    });
    let end = Time(40);
    let id = server.submit(spec_for("alice", &sched_b(), end)).unwrap();
    assert_eq!(server.wait(id, WAIT), Some(JobStatus::Done));
    let JobOutcome::Done(artifact) = server.outcome(id).unwrap() else {
        panic!("expected a done artifact");
    };
    assert_eq!(artifact.result.to_vcd(), oracle(&sched_b(), end).to_vcd());
    assert!(
        server.metrics().counter(ServerCounter::Segments) >= 6,
        "40 ticks at 7/segment is at least 6 segments"
    );
}

#[test]
fn cancel_queued_job_is_immediate() {
    let server = Server::start(ServerConfig { start_paused: true, ..ServerConfig::default() });
    let id = server.submit(spec_for("alice", &sched_a(), Time(40))).unwrap();
    assert_eq!(server.status(id), Some(JobStatus::Queued));
    assert!(server.cancel(id), "queued job accepts cancellation");
    assert_eq!(server.status(id), Some(JobStatus::Cancelled));
    assert!(server.outcome(id).is_none(), "cancelled jobs have no outcome");
    assert!(!server.cancel(id), "second cancel is a no-op");
    assert_eq!(server.metrics().counter(ServerCounter::JobsCancelled), 1);
    // The quota slot was released: a fresh submit succeeds even at quota 1.
    let server = Server::start(ServerConfig {
        start_paused: true,
        tenant_quota: 1,
        ..ServerConfig::default()
    });
    let first = server.submit(spec_for("bob", &sched_a(), Time(40))).unwrap();
    server.cancel(first);
    server.submit(spec_for("bob", &sched_a(), Time(40))).expect("slot released");
}

#[test]
fn cancel_mid_run_lands_at_a_segment_cut() {
    // Long run, tiny segments: cancellation is requested once the job is
    // observably running, and must take effect at a cut boundary. (If
    // the request raced ahead of dispatch the job cancels while queued —
    // the terminal status is Cancelled either way.)
    let server = Server::start(ServerConfig {
        segment_ticks: 5,
        threads: 1,
        ..ServerConfig::default()
    });
    let id = server.submit(spec_for("alice", &sched_a(), Time(20_000))).unwrap();
    let began = std::time::Instant::now();
    while server.status(id) == Some(JobStatus::Queued) && began.elapsed() < WAIT {
        std::thread::yield_now();
    }
    assert!(server.cancel(id), "running job accepts cancellation");
    assert_eq!(server.wait(id, WAIT), Some(JobStatus::Cancelled));
    assert!(server.outcome(id).is_none());
}

#[test]
fn quota_rejection_counts_and_releases() {
    let server = Server::start(ServerConfig {
        start_paused: true,
        tenant_quota: 2,
        ..ServerConfig::default()
    });
    let a = server.submit(spec_for("alice", &sched_a(), Time(40))).unwrap();
    let _b = server.submit(spec_for("alice", &sched_b(), Time(40))).unwrap();
    let err = server.submit(spec_for("alice", &sched_a(), Time(40))).unwrap_err();
    assert_eq!(
        err,
        SubmitError::QuotaExceeded { tenant: "alice".into(), limit: 2 }
    );
    assert_eq!(server.metrics().counter(ServerCounter::QuotaRejections), 1);
    // Another tenant is unaffected.
    server.submit(spec_for("carol", &sched_a(), Time(40))).expect("separate quota");
    // Finishing a job frees the slot.
    server.cancel(a);
    server.submit(spec_for("alice", &sched_a(), Time(40))).expect("slot released");
}

#[test]
fn deadline_expiry_maps_to_sim_error() {
    // Paused server: the job can never dispatch, so a zero budget
    // deterministically expires. Lazy expiry surfaces through wait().
    let server = Server::start(ServerConfig { start_paused: true, ..ServerConfig::default() });
    let spec = spec_for("alice", &sched_a(), Time(40)).deadline(Duration::ZERO);
    let id = server.submit(spec).unwrap();
    assert_eq!(server.wait(id, WAIT), Some(JobStatus::Failed));
    let JobOutcome::Failed(err) = server.outcome(id).unwrap() else {
        panic!("expected a failed outcome");
    };
    match err {
        SimError::DeadlineExceeded { engine, deadline, .. } => {
            assert_eq!(engine, "server", "server-synthesized expiry");
            assert_eq!(deadline, Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    assert_eq!(server.metrics().counter(ServerCounter::DeadlineExpirations), 1);
    assert_eq!(server.metrics().counter(ServerCounter::JobsFailed), 1);
}

#[test]
fn cache_hit_vs_miss_counters() {
    let server = Server::start(ServerConfig::default());
    let end = Time(40);
    // Same digest twice, sequentially: miss then hit.
    let a = server.submit(spec_for("alice", &sched_a(), end)).unwrap();
    assert_eq!(server.wait(a, WAIT), Some(JobStatus::Done));
    let b = server.submit(spec_for("bob", &sched_b(), end)).unwrap();
    assert_eq!(server.wait(b, WAIT), Some(JobStatus::Done));
    assert_eq!(server.metrics().counter(ServerCounter::CacheMisses), 1);
    assert_eq!(server.metrics().counter(ServerCounter::CacheHits), 1);
    assert_eq!(server.metrics().gauge(ServerGauge::CachedPrograms), 1);
    let JobOutcome::Done(first) = server.outcome(a).unwrap() else { panic!() };
    let JobOutcome::Done(second) = server.outcome(b).unwrap() else { panic!() };
    assert!(!first.cache_hit);
    assert!(second.cache_hit);
    // Results stay oracle-exact regardless of hit or miss.
    assert_eq!(first.result.to_vcd(), oracle(&sched_a(), end).to_vcd());
    assert_eq!(second.result.to_vcd(), oracle(&sched_b(), end).to_vcd());
}

#[test]
fn unknown_job_ids_are_none() {
    let server = Server::start(ServerConfig { start_paused: true, ..ServerConfig::default() });
    let ghost = parsim_server::JobId(999);
    assert_eq!(server.status(ghost), None);
    assert_eq!(server.wait(ghost, Duration::from_millis(10)), None);
    assert!(server.outcome(ghost).is_none());
    assert!(!server.cancel(ghost));
}

#[test]
fn different_digests_bin_separately() {
    // Two structurally different netlists must not share a pass.
    let server = Server::start(ServerConfig { start_paused: true, ..ServerConfig::default() });
    let a = server.submit(spec_for("alice", &sched_a(), Time(40))).unwrap();
    // A second, different circuit: reuse the builder with an extra gate.
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let q = b.node("q", 1);
    b.element("osc", ElementKind::Clock { half_period: 3, offset: 3 }, Delay(1), &[], &[clk])
        .unwrap();
    b.element("inv", ElementKind::Not, Delay(1), &[clk], &[q]).unwrap();
    let other = JobSpec::new("alice", Arc::new(b.finish().unwrap()), Time(40)).watch(q);
    let o = server.submit(other).unwrap();
    server.resume();
    assert_eq!(server.wait(a, WAIT), Some(JobStatus::Done));
    assert_eq!(server.wait(o, WAIT), Some(JobStatus::Done));
    assert_eq!(
        server.metrics().counter(ServerCounter::BatchPasses),
        2,
        "different digests take separate passes"
    );
    assert_eq!(server.metrics().counter(ServerCounter::CacheMisses), 2);
}
