//! End-to-end smoke: two tenants submit the same netlist text through the
//! transport, the scheduler serves both from a single lane-packed batch
//! pass, and each tenant's VCD is byte-identical to a standalone
//! scalar-oracle run of their stimulus. Also exercises the HTTP listener
//! over a loopback socket with the same scenario.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use parsim_core::{EventDriven, SimConfig};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::Builder;
use parsim_server::{
    HttpServer, InProcTransport, Request, Response, Server, ServerConfig, Transport,
};
use parsim_telemetry::{ServerCounter, ServerGauge};

/// The submission body: the same circuit the oracle builds, in
/// [`parsim_netlist::Netlist::from_text`] format, inputs undriven so each
/// tenant's lane overrides supply them.
const NETLIST_TEXT: &str = "\
node clk 1
node in0 1
node in1 1
node g0 1
node g1 1
node g2 1
elem osc clock:4:4 delay=1 out=clk
elem and0 and delay=1 in=in0,in1 out=g0
elem xor0 xor delay=1 in=g0,clk out=g1
elem nor0 nor delay=1 in=g1,in0 out=g2
";

const WATCH: &str = "clk,g0,g1,g2";
const END: u64 = 40;

/// `(in0 schedule, in1 schedule)` as `(time, value)` pairs.
type Drive = [&'static [(u64, u64)]; 2];

const DRIVE_A: Drive = [&[(0, 0), (6, 1), (20, 0)], &[(0, 1), (11, 0)]];
const DRIVE_B: Drive = [&[(0, 1), (9, 0), (25, 1)], &[(0, 0), (15, 1)]];

fn drive_param(d: &Drive) -> String {
    let clause = |name: &str, sched: &[(u64, u64)]| {
        let pairs: Vec<String> = sched.iter().map(|(t, v)| format!("{t}:{v}")).collect();
        format!("{name}@{}", pairs.join(";"))
    };
    format!("{},{}", clause("in0", d[0]), clause("in1", d[1]))
}

/// Standalone scalar-oracle VCD: the same circuit built with `Vector`
/// drivers feeding the inputs (node-creation order identical to the text
/// form, so `NodeId`s — and therefore VCD identifiers — line up).
fn oracle_vcd(d: &Drive) -> String {
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let in0 = b.node("in0", 1);
    let in1 = b.node("in1", 1);
    let g0 = b.node("g0", 1);
    let g1 = b.node("g1", 1);
    let g2 = b.node("g2", 1);
    b.element("osc", ElementKind::Clock { half_period: 4, offset: 4 }, Delay(1), &[], &[clk])
        .unwrap();
    for (i, (input, sched)) in [in0, in1].iter().zip(d).enumerate() {
        let changes: Arc<[(u64, Value)]> =
            sched.iter().map(|&(t, v)| (t, Value::from_u64(v, 1))).collect::<Vec<_>>().into();
        b.element(&format!("vec{i}"), ElementKind::Vector { changes }, Delay(1), &[], &[*input])
            .unwrap();
    }
    b.element("and0", ElementKind::And, Delay(1), &[in0, in1], &[g0]).unwrap();
    b.element("xor0", ElementKind::Xor, Delay(1), &[g0, clk], &[g1]).unwrap();
    b.element("nor0", ElementKind::Nor, Delay(1), &[g1, in0], &[g2]).unwrap();
    let netlist = b.finish().unwrap();
    let cfg = SimConfig::new(Time(END)).watch_all([clk, g0, g1, g2]);
    EventDriven::run(&netlist, &cfg).unwrap().to_vcd()
}

fn submit_request(tenant: &str, d: &Drive) -> Request {
    Request::Submit {
        tenant: tenant.into(),
        netlist: NETLIST_TEXT.into(),
        watch: WATCH.split(',').map(str::to_string).collect(),
        end: END,
        deadline_ms: None,
        overrides: drive_param(d)
            .split(',')
            .map(|clause| {
                let (node, sched) = clause.split_once('@').unwrap();
                let sched = sched
                    .split(';')
                    .map(|p| {
                        let (t, v) = p.split_once(':').unwrap();
                        (t.parse().unwrap(), v.parse().unwrap())
                    })
                    .collect();
                (node.to_string(), sched)
            })
            .collect(),
    }
}

#[test]
fn two_tenants_one_pass_byte_equal_waveforms() {
    // Paused server: both jobs queue into the same digest bin, so the
    // single resume provably serves them with one batch pass.
    let server = Arc::new(Server::start(ServerConfig {
        start_paused: true,
        ..ServerConfig::default()
    }));
    let transport = InProcTransport::new(server.clone());

    let Response::Submitted { id: alice } = transport.call(submit_request("alice", &DRIVE_A))
    else {
        panic!("alice's submit must succeed");
    };
    let Response::Submitted { id: bob } = transport.call(submit_request("bob", &DRIVE_B)) else {
        panic!("bob's submit must succeed");
    };
    server.resume();

    let mut lanes = Vec::new();
    for (id, drive) in [(alice, &DRIVE_A), (bob, &DRIVE_B)] {
        let resp = transport.call(Request::Result { id, wait_ms: 30_000 });
        let Response::Result { status, vcd, lane, lanes_in_batch, cache_hit, error } = resp
        else {
            panic!("expected a result response");
        };
        assert_eq!(status, "done");
        assert_eq!(error, None);
        assert_eq!(lanes_in_batch, 2, "both tenants share one pass");
        assert!(!cache_hit, "first pass of this digest compiles");
        assert_eq!(vcd.as_deref(), Some(oracle_vcd(drive).as_str()), "byte-identical to oracle");
        lanes.push(lane);
    }
    lanes.sort_unstable();
    assert_eq!(lanes, [0, 1], "tenants occupy distinct lanes of the pass");

    let m = server.metrics();
    assert_eq!(m.counter(ServerCounter::BatchPasses), 1, "one pass served both");
    assert_eq!(m.counter(ServerCounter::LanesPacked), 2);
    assert_eq!(m.counter(ServerCounter::JobsCompleted), 2);
    assert_eq!(m.counter(ServerCounter::CacheMisses), 1);
    assert_eq!(m.counter(ServerCounter::CacheHits), 0);
    assert_eq!(m.gauge(ServerGauge::LastBatchLanes), 2);

    // A third tenant reusing the digest rides the cached program.
    let Response::Submitted { id: carol } = transport.call(submit_request("carol", &DRIVE_A))
    else {
        panic!("carol's submit must succeed");
    };
    let Response::Result { cache_hit, vcd, .. } =
        transport.call(Request::Result { id: carol, wait_ms: 30_000 })
    else {
        panic!("expected a result response");
    };
    assert!(cache_hit, "second pass of the digest reuses the program");
    assert_eq!(vcd.as_deref(), Some(oracle_vcd(&DRIVE_A).as_str()));
    assert_eq!(server.metrics().counter(ServerCounter::CacheHits), 1);
}

/// One request over a real loopback socket; returns (status code,
/// headers, body).
fn http(addr: std::net::SocketAddr, request: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect loopback");
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let code: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    (code, head.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..]; // skip the chunk's trailing CRLF
    }
}

#[test]
fn http_loopback_round_trip() {
    let server = Arc::new(Server::start(ServerConfig::default()));
    let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new(server.clone()));
    let listener = HttpServer::bind("127.0.0.1:0", transport).expect("bind ephemeral port");
    let addr = listener.addr();

    // Submit over the wire: query carries tenant/end/watch/drive, body
    // carries the netlist text.
    let submit_path = format!(
        "/v1/jobs?tenant=alice&end={END}&watch={WATCH}&drive={}",
        drive_param(&DRIVE_A)
    );
    let (code, _, body) = post(addr, &submit_path, NETLIST_TEXT);
    assert_eq!(code, 200, "submit: {body}");
    let id: u64 = body.trim().strip_prefix("id=").expect("id=N body").parse().unwrap();

    // Long-poll the result; the body is the VCD, metadata rides headers.
    let (code, head, vcd) = get(addr, &format!("/v1/jobs/{id}/result?wait_ms=30000"));
    assert_eq!(code, 200, "result: {vcd}");
    assert!(head.contains("X-Parsim-Status: done"), "headers: {head}");
    assert!(head.contains("X-Parsim-Lanes-In-Batch: 1"), "headers: {head}");
    assert_eq!(vcd, oracle_vcd(&DRIVE_A), "wire VCD byte-identical to oracle");

    let (code, _, body) = get(addr, &format!("/v1/jobs/{id}"));
    assert_eq!((code, body.trim()), (200, "status=done"));

    // The stream route delivers the same bytes chunked.
    let (code, head, chunked) = get(addr, &format!("/v1/jobs/{id}/stream?wait_ms=1000"));
    assert_eq!(code, 200);
    assert!(head.contains("Transfer-Encoding: chunked"), "headers: {head}");
    assert_eq!(dechunk(&chunked), oracle_vcd(&DRIVE_A));

    // Metrics exposition is reachable and carries the server families.
    let (code, _, metrics) = get(addr, "/metrics");
    assert_eq!(code, 200);
    assert!(metrics.contains("parsim_server_jobs_submitted_total 1"), "metrics: {metrics}");
    assert!(metrics.contains("parsim_server_batch_passes_total 1"), "metrics: {metrics}");

    // Error paths over the wire: unknown job, cancel of unknown, bad
    // submits.
    let (code, _, _) = get(addr, "/v1/jobs/999");
    assert_eq!(code, 404);
    let (code, _, body) = post(addr, "/v1/jobs/999/cancel", "");
    assert_eq!((code, body.trim()), (200, "ok=false"));
    let (code, _, _) = post(addr, "/v1/jobs?tenant=alice", NETLIST_TEXT); // no end=
    assert_eq!(code, 400);
    let (code, _, _) = post(addr, &format!("/v1/jobs?tenant=a&end={END}"), "not a netlist");
    assert_eq!(code, 400);
    let (code, _, _) = post(
        addr,
        &format!("/v1/jobs?tenant=a&end={END}&watch=nope"),
        NETLIST_TEXT,
    );
    assert_eq!(code, 400, "unknown watch node is a bad request");
}
