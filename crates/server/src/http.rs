//! A dependency-free HTTP/1.1 front door over any [`Transport`].
//!
//! Hand-rolled on `std::net::TcpListener` — the workspace vendors no
//! async runtime or HTTP stack, and the service's request rate (jobs, not
//! events) makes thread-per-connection plus blocking reads entirely
//! adequate. One request per connection (`Connection: close`).
//!
//! Routes:
//!
//! | Method & path | Meaning |
//! |---|---|
//! | `POST /v1/jobs?tenant=T&end=N&watch=a,b[&deadline_ms=N][&drive=...]` | submit; body is [`Netlist::from_text`] format |
//! | `GET /v1/jobs/{id}` | status |
//! | `POST /v1/jobs/{id}/cancel` | cancel |
//! | `GET /v1/jobs/{id}/result[?wait_ms=N]` | long-poll result; VCD body |
//! | `GET /v1/jobs/{id}/stream[?wait_ms=N]` | result as chunked transfer |
//! | `GET /metrics` | Prometheus text exposition |
//!
//! The `drive` parameter carries lane overrides as
//! `node@t:v;t:v,node2@t:v` (times and values decimal, values resolved
//! against node widths).
//!
//! [`Netlist::from_text`]: parsim_netlist::Netlist::from_text

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::transport::{Request, Response, Transport};

/// A bound, serving HTTP listener. Dropping it stops accepting (open
/// connections finish their one request).
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral test port) and
    /// starts serving `transport`.
    pub fn bind(addr: &str, transport: Arc<dyn Transport>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let accept_thread = std::thread::Builder::new()
            .name("parsim-server-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let transport = transport.clone();
                    let _ = std::thread::Builder::new()
                        .name("parsim-server-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &*transport);
                        });
                }
            })?;
        Ok(HttpServer { addr: local, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_connection(stream: TcpStream, transport: &dyn Transport) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return write_plain(stream, 400, "malformed request line", &[]);
    };
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).into_owned();

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = parse_query(query);

    let (method, path) = (method.to_ascii_uppercase(), path.trim_end_matches('/'));
    let stream_mode = path.ends_with("/stream");
    match route(&method, path, &query, body) {
        Ok(req) => respond(stream, transport.call(req), stream_mode),
        Err((code, msg)) => write_plain(stream, code, &msg, &[]),
    }
}

/// Maps a parsed HTTP request onto a transport [`Request`].
fn route(
    method: &str,
    path: &str,
    query: &[(String, String)],
    body: String,
) -> Result<Request, (u16, String)> {
    let q = |key: &str| query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str());
    let q_u64 = |key: &str| -> Result<Option<u64>, (u16, String)> {
        match q(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| (400, format!("query parameter '{key}' must be an integer, got '{v}'"))),
        }
    };
    match (method, path) {
        ("POST", "/v1/jobs") => {
            let tenant = q("tenant").unwrap_or("anonymous").to_string();
            let end = q_u64("end")?.ok_or((400, "missing 'end' query parameter".into()))?;
            let watch = q("watch")
                .map(|w| w.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect())
                .unwrap_or_default();
            let overrides = match q("drive") {
                Some(d) => parse_drive(d).map_err(|e| (400, e))?,
                None => Vec::new(),
            };
            Ok(Request::Submit {
                tenant,
                netlist: body,
                watch,
                end,
                deadline_ms: q_u64("deadline_ms")?,
                overrides,
            })
        }
        ("GET", "/metrics") => Ok(Request::Metrics),
        _ => {
            let rest = path
                .strip_prefix("/v1/jobs/")
                .ok_or((404, format!("no route for {method} {path}")))?;
            let (id_part, action) = match rest.split_once('/') {
                Some((id, action)) => (id, Some(action)),
                None => (rest, None),
            };
            let id: u64 = id_part
                .parse()
                .map_err(|_| (400, format!("bad job id '{id_part}'")))?;
            match (method, action) {
                ("GET", None) => Ok(Request::Status { id }),
                ("POST", Some("cancel")) => Ok(Request::Cancel { id }),
                ("GET", Some("result")) | ("GET", Some("stream")) => Ok(Request::Result {
                    id,
                    wait_ms: q_u64("wait_ms")?.unwrap_or(0),
                }),
                _ => Err((404, format!("no route for {method} {path}"))),
            }
        }
    }
}

/// Per-node lane overrides as `(node, [(time, value)])` — the wire shape
/// of [`Request::Submit`]'s `overrides`.
type DriveOverrides = Vec<(String, Vec<(u64, u64)>)>;

/// Parses `node@t:v;t:v,node2@t:v` lane overrides.
fn parse_drive(s: &str) -> Result<DriveOverrides, String> {
    let mut out = Vec::new();
    for clause in s.split(',').filter(|c| !c.is_empty()) {
        let (node, sched) = clause
            .split_once('@')
            .ok_or_else(|| format!("drive clause '{clause}' missing '@'"))?;
        let mut schedule = Vec::new();
        for pair in sched.split(';').filter(|p| !p.is_empty()) {
            let (t, v) = pair
                .split_once(':')
                .ok_or_else(|| format!("drive pair '{pair}' missing ':'"))?;
            let t: u64 = t.parse().map_err(|_| format!("bad drive time '{t}'"))?;
            let v: u64 = v.parse().map_err(|_| format!("bad drive value '{v}'"))?;
            schedule.push((t, v));
        }
        out.push((node.to_string(), schedule));
    }
    Ok(out)
}

/// Splits and percent-decodes `k=v&k2=v2`.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let decoded = if bytes[i] == b'%' && i + 2 < bytes.len() {
            s.get(i + 1..i + 3)
                .and_then(|hex| u8::from_str_radix(hex, 16).ok())
        } else {
            None
        };
        match decoded {
            Some(b) => {
                out.push(b);
                i += 3;
            }
            None => {
                out.push(if bytes[i] == b'+' { b' ' } else { bytes[i] });
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn respond(stream: TcpStream, resp: Response, stream_mode: bool) -> std::io::Result<()> {
    match resp {
        Response::Submitted { id } => write_plain(stream, 200, &format!("id={id}\n"), &[]),
        Response::Status { status } => {
            write_plain(stream, 200, &format!("status={status}\n"), &[])
        }
        Response::Cancelled { ok } => write_plain(stream, 200, &format!("ok={ok}\n"), &[]),
        Response::Metrics { text } => write_plain(stream, 200, &text, &[]),
        Response::Error { code, message } => write_plain(stream, code, &format!("{message}\n"), &[]),
        Response::Result { status, vcd, lane, lanes_in_batch, cache_hit, error } => {
            let extra = [
                ("X-Parsim-Status", status.to_string()),
                ("X-Parsim-Lane", lane.to_string()),
                ("X-Parsim-Lanes-In-Batch", lanes_in_batch.to_string()),
                ("X-Parsim-Cache-Hit", cache_hit.to_string()),
            ];
            match (vcd, error) {
                (Some(vcd), _) if stream_mode => write_chunked(stream, 200, &vcd, &extra),
                (Some(vcd), _) => write_plain(stream, 200, &vcd, &extra),
                (None, Some(err)) => write_plain(stream, 500, &format!("{err}\n"), &extra),
                // Still pending after the long-poll window.
                (None, None) => write_plain(stream, 202, &format!("status={status}\n"), &extra),
            }
        }
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_plain(
    mut stream: TcpStream,
    code: u16,
    body: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(code),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Chunked transfer for `/stream`: the body goes out in bounded pieces,
/// so a large VCD never needs a contiguous Content-Length send.
fn write_chunked(
    mut stream: TcpStream,
    code: u16,
    body: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: text/plain; charset=utf-8\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        status_text(code)
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    for chunk in body.as_bytes().chunks(4096) {
        stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
        stream.write_all(chunk)?;
        stream.write_all(b"\r\n")?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_decodes_pairs() {
        let q = parse_query("tenant=alice&end=40&watch=a%2Cb&x=1+2");
        assert_eq!(q[0], ("tenant".into(), "alice".into()));
        assert_eq!(q[2], ("watch".into(), "a,b".into()));
        assert_eq!(q[3], ("x".into(), "1 2".into()));
    }

    #[test]
    fn drive_clause_parsing() {
        let d = parse_drive("clk@0:1;5:0,rst@2:1").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], ("clk".into(), vec![(0, 1), (5, 0)]));
        assert_eq!(d[1], ("rst".into(), vec![(2, 1)]));
        assert!(parse_drive("clk0:1").is_err(), "missing @");
        assert!(parse_drive("clk@zero:1").is_err(), "bad time");
    }

    #[test]
    fn routes_map_to_requests() {
        let q = parse_query("wait_ms=50");
        assert_eq!(
            route("GET", "/v1/jobs/7/result", &q, String::new()).unwrap(),
            Request::Result { id: 7, wait_ms: 50 }
        );
        assert_eq!(
            route("GET", "/v1/jobs/7", &[], String::new()).unwrap(),
            Request::Status { id: 7 }
        );
        assert_eq!(
            route("POST", "/v1/jobs/7/cancel", &[], String::new()).unwrap(),
            Request::Cancel { id: 7 }
        );
        assert!(route("POST", "/v1/jobs", &[], String::new()).is_err(), "missing end");
        assert!(route("GET", "/v1/jobs/x", &[], String::new()).is_err(), "bad id");
        let q = parse_query("tenant=t&end=bogus");
        assert!(route("POST", "/v1/jobs", &q, String::new()).is_err(), "non-numeric end");
    }
}
