//! The wire-shaped request/response vocabulary and the transport trait.
//!
//! Every front door — the in-process one the tests use and the HTTP
//! listener — speaks the same typed [`Request`]/[`Response`] pairs, with
//! only strings and integers inside so any byte transport can carry them
//! without a serialization dependency. [`InProcTransport`] is the
//! reference implementation: it resolves names against the parsed
//! netlist and calls straight into the [`Server`], so every lifecycle
//! test stays hermetic (no sockets, no ports).

use std::sync::Arc;

use parsim_logic::{Time, Value};
use parsim_netlist::Netlist;

use crate::job::{JobId, JobOutcome, JobSpec, SubmitError};
use crate::scheduler::Server;
use parsim_core::LaneStimulus;

/// A transport-level request. Node references are names; times and
/// values are plain integers (values are resolved against node widths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job: `netlist` is [`Netlist::from_text`] format,
    /// `overrides` replace named nodes' generator schedules for this
    /// tenant's lane as `(node, [(time, value)])`.
    Submit {
        tenant: String,
        netlist: String,
        watch: Vec<String>,
        end: u64,
        deadline_ms: Option<u64>,
        overrides: Vec<(String, Vec<(u64, u64)>)>,
    },
    /// Poll a job's status.
    Status { id: u64 },
    /// Request cancellation.
    Cancel { id: u64 },
    /// Fetch the result, long-polling up to `wait_ms` for completion.
    Result { id: u64, wait_ms: u64 },
    /// Service metrics in Prometheus text format.
    Metrics,
}

/// A transport-level response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Submitted {
        id: u64,
    },
    Status {
        status: &'static str,
    },
    Cancelled {
        ok: bool,
    },
    /// Terminal result. `vcd` is set for done jobs, `error` for failed
    /// ones; a still-pending job (long-poll timeout) reports its status
    /// with neither.
    Result {
        status: &'static str,
        vcd: Option<String>,
        lane: usize,
        lanes_in_batch: usize,
        cache_hit: bool,
        error: Option<String>,
    },
    Metrics {
        text: String,
    },
    /// HTTP-shaped failure: 400 bad request, 404 unknown job, 429 quota,
    /// 503 shutting down.
    Error {
        code: u16,
        message: String,
    },
}

/// Anything that can carry [`Request`]s to a server. Implementations
/// must be shareable across connection-handling threads.
pub trait Transport: Send + Sync {
    fn call(&self, req: Request) -> Response;
}

/// The hermetic transport: requests resolve directly against an owned
/// [`Server`], no bytes involved.
pub struct InProcTransport {
    server: Arc<Server>,
}

impl InProcTransport {
    pub fn new(server: Arc<Server>) -> InProcTransport {
        InProcTransport { server }
    }

    /// The wrapped server (tests reach through for metrics assertions).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    fn submit(
        &self,
        tenant: String,
        netlist_text: &str,
        watch: &[String],
        end: u64,
        deadline_ms: Option<u64>,
        overrides: &[(String, Vec<(u64, u64)>)],
    ) -> Response {
        let netlist = match Netlist::from_text(netlist_text) {
            Ok(n) => Arc::new(n),
            Err(e) => return bad_request(format!("netlist: {e}")),
        };
        let mut spec = JobSpec::new(tenant, netlist.clone(), Time(end));
        for name in watch {
            match netlist.node_by_name(name) {
                Some(id) => spec.watch.push(id),
                None => return bad_request(format!("unknown watch node '{name}'")),
            }
        }
        let mut stimulus = LaneStimulus::base();
        for (name, schedule) in overrides {
            let Some(node) = netlist.node_by_name(name) else {
                return bad_request(format!("unknown override node '{name}'"));
            };
            let width = netlist.node(node).width();
            let schedule: Vec<(Time, Value)> = schedule
                .iter()
                .map(|&(t, v)| (Time(t), Value::from_u64(v, width)))
                .collect();
            stimulus = stimulus.drive(node, schedule);
        }
        spec.stimulus = stimulus;
        if let Some(ms) = deadline_ms {
            spec.deadline = Some(std::time::Duration::from_millis(ms));
        }
        match self.server.submit(spec) {
            Ok(id) => Response::Submitted { id: id.0 },
            Err(SubmitError::QuotaExceeded { tenant, limit }) => Response::Error {
                code: 429,
                message: format!("tenant '{tenant}' is at its quota of {limit} active jobs"),
            },
            Err(SubmitError::Invalid { reason }) => bad_request(reason),
            Err(SubmitError::ShuttingDown) => Response::Error {
                code: 503,
                message: "server is shutting down".into(),
            },
        }
    }

    fn result(&self, id: u64, wait_ms: u64) -> Response {
        let job = JobId(id);
        let status = if wait_ms > 0 {
            self.server
                .wait(job, std::time::Duration::from_millis(wait_ms))
                .or_else(|| self.server.status(job))
        } else {
            self.server.status(job)
        };
        let Some(status) = status else {
            return Response::Error { code: 404, message: format!("unknown job {id}") };
        };
        match self.server.outcome(job) {
            Some(JobOutcome::Done(artifact)) => Response::Result {
                status: status.name(),
                vcd: Some(artifact.result.to_vcd()),
                lane: artifact.lane,
                lanes_in_batch: artifact.lanes_in_batch,
                cache_hit: artifact.cache_hit,
                error: None,
            },
            Some(JobOutcome::Failed(err)) => Response::Result {
                status: status.name(),
                vcd: None,
                lane: 0,
                lanes_in_batch: 0,
                cache_hit: false,
                error: Some(err.to_string()),
            },
            None => Response::Result {
                status: status.name(),
                vcd: None,
                lane: 0,
                lanes_in_batch: 0,
                cache_hit: false,
                error: None,
            },
        }
    }
}

fn bad_request(message: String) -> Response {
    Response::Error { code: 400, message }
}

impl Transport for InProcTransport {
    fn call(&self, req: Request) -> Response {
        match req {
            Request::Submit { tenant, netlist, watch, end, deadline_ms, overrides } => {
                self.submit(tenant, &netlist, &watch, end, deadline_ms, &overrides)
            }
            Request::Status { id } => match self.server.status(JobId(id)) {
                Some(status) => Response::Status { status: status.name() },
                None => Response::Error { code: 404, message: format!("unknown job {id}") },
            },
            Request::Cancel { id } => Response::Cancelled { ok: self.server.cancel(JobId(id)) },
            Request::Result { id, wait_ms } => self.result(id, wait_ms),
            Request::Metrics => Response::Metrics { text: self.server.metrics_text() },
        }
    }
}
