//! The compiled-program cache: compile once per netlist digest, reuse for
//! every batch pass that digest sees, evict least-recently-used beyond the
//! capacity bound.
//!
//! The key is [`parsim_checkpoint::netlist_digest`]'s FNV-1a structural
//! digest, the same one the checkpoint store uses to refuse restoring a
//! snapshot against the wrong circuit. Two netlists with equal digests are
//! structurally identical (same nodes in the same order, same elements),
//! so a program compiled from one drives a batch over the other — that is
//! precisely what lets different tenants' submissions share one lowering.

use std::sync::{Arc, Mutex};

use parsim_netlist::compile::CompiledProgram;
use parsim_netlist::Netlist;

/// LRU-bounded digest → [`CompiledProgram`] map. Internally locked; safe
/// to share between transport threads and the scheduler.
#[derive(Debug)]
pub struct ProgramCache {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    /// `(digest, program)` in LRU order: front is coldest, back hottest.
    entries: Vec<(u64, Arc<CompiledProgram>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// What [`ProgramCache::get_or_compile`] did to serve the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    Hit,
    Miss,
}

impl ProgramCache {
    /// A cache holding at most `capacity` compiled programs (at least 1).
    pub fn new(capacity: usize) -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                entries: Vec::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The program for `digest`, compiling `netlist` on a miss. Returns
    /// the program and whether it was a hit or a miss-with-compile.
    pub fn get_or_compile(
        &self,
        digest: u64,
        netlist: &Netlist,
    ) -> (Arc<CompiledProgram>, CacheLookup) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = inner.entries.iter().position(|(d, _)| *d == digest) {
            let entry = inner.entries.remove(pos);
            let prog = entry.1.clone();
            inner.entries.push(entry); // move to hottest
            inner.hits += 1;
            return (prog, CacheLookup::Hit);
        }
        // Compile under the lock: a second submitter of the same digest
        // should wait for the one compile, not duplicate it. Service
        // submission rates make the held-lock compile acceptable.
        let prog = Arc::new(CompiledProgram::compile(netlist));
        inner.misses += 1;
        if inner.entries.len() == inner.capacity {
            inner.entries.remove(0);
            inner.evictions += 1;
        }
        inner.entries.push((digest, prog.clone()));
        (prog, CacheLookup::Miss)
    }

    /// Resident program count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses, evictions)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.hits, inner.misses, inner.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_checkpoint::netlist_digest;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::Builder;

    fn chain(len: usize) -> Netlist {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock { half_period: 5, offset: 5 },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let mut prev = clk;
        for i in 0..len {
            let n = b.node(&format!("n{i}"), 1);
            b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
                .unwrap();
            prev = n;
        }
        b.finish().unwrap()
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_program() {
        let cache = ProgramCache::new(4);
        let n = chain(3);
        let d = netlist_digest(&n);
        let (p1, l1) = cache.get_or_compile(d, &n);
        let (p2, l2) = cache.get_or_compile(d, &n);
        assert_eq!(l1, CacheLookup::Miss);
        assert_eq!(l2, CacheLookup::Hit);
        assert!(Arc::ptr_eq(&p1, &p2), "hit must share the compiled program");
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_coldest_beyond_capacity() {
        let cache = ProgramCache::new(2);
        let (a, b, c) = (chain(1), chain(2), chain(3));
        let (da, db, dc) = (netlist_digest(&a), netlist_digest(&b), netlist_digest(&c));
        cache.get_or_compile(da, &a);
        cache.get_or_compile(db, &b);
        cache.get_or_compile(da, &a); // touch a: b becomes coldest
        cache.get_or_compile(dc, &c); // evicts b
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get_or_compile(da, &a).1, CacheLookup::Hit);
        assert_eq!(cache.get_or_compile(db, &b).1, CacheLookup::Miss, "b was evicted");
        let (_, _, evictions) = cache.stats();
        assert_eq!(evictions, 2, "c evicted b, then re-adding b evicted c or a");
    }

    #[test]
    fn structurally_identical_netlists_share_a_digest() {
        // Two independently built but identical netlists — the situation
        // two tenants submitting "the same" circuit produce.
        assert_eq!(netlist_digest(&chain(4)), netlist_digest(&chain(4)));
        assert_ne!(netlist_digest(&chain(4)), netlist_digest(&chain(5)));
    }
}
