//! The digest-binned scheduler: pending jobs queue per structural netlist
//! digest, and each dispatch drains one bin into a single word-parallel
//! [`CompiledMode::run_batch`] pass — one instruction-stream execution
//! serving up to `max_lanes_per_batch` tenants.
//!
//! Dispatch order is oldest-job-first across bins (job ids are monotonic),
//! so a hot digest cannot starve a cold one: the bin holding the oldest
//! queued job always dispatches next, and everything else waiting on the
//! same digest rides along in its lanes.
//!
//! Deadlines and cancellation piggyback on the checkpoint-segment API:
//! when `segment_ticks > 0` a pass runs as a chain of
//! [`CompiledMode::run_batch_segment_with_program`] calls, and between
//! cuts the scheduler evicts lanes whose tenant cancelled or whose
//! wall-clock budget expired (synthesizing
//! [`SimError::DeadlineExceeded`] with `engine: "server"`). With
//! `segment_ticks == 0` a pass is one uninterruptible kernel run and those
//! checks happen only at dispatch and completion.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use parsim_checkpoint::{netlist_digest, EngineSnapshot};
use parsim_core::{CompiledMode, LaneStimulus, SimConfig, SimError, SimResult, StallDiagnostic};
use parsim_logic::Time;
use parsim_telemetry::{ServerCounter, ServerGauge, ServerRegistry};

use crate::cache::{CacheLookup, ProgramCache};
use crate::job::{JobArtifact, JobId, JobOutcome, JobSpec, JobStatus, SubmitError};

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine worker threads per batch pass.
    pub threads: usize,
    /// Most jobs packed into one pass (the service-level lane bound; the
    /// kernel chunks beyond its SIMD word width internally, so this caps
    /// latency coupling, not correctness).
    pub max_lanes_per_batch: usize,
    /// Checkpoint-segment length in simulated ticks. `0` runs each pass
    /// as a single uninterruptible kernel execution; otherwise cancel and
    /// deadline eviction take effect at each cut.
    pub segment_ticks: u64,
    /// Compiled programs kept by the LRU cache.
    pub cache_capacity: usize,
    /// Most queued-or-running jobs one tenant may hold.
    pub tenant_quota: usize,
    /// Forced SIMD lane width (64/128/256/512), `None` = native.
    pub lane_width: Option<usize>,
    /// Start with dispatch paused (tests use this to pack a bin before
    /// the first pass). [`Server::resume`] unblocks.
    pub start_paused: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 2,
            max_lanes_per_batch: 64,
            segment_ticks: 0,
            cache_capacity: 8,
            tenant_quota: 4,
            lane_width: None,
            start_paused: false,
        }
    }
}

struct Job {
    spec: JobSpec,
    digest: u64,
    status: JobStatus,
    cancel_requested: bool,
    expires_at: Option<Instant>,
    outcome: Option<JobOutcome>,
}

#[derive(Default)]
struct State {
    next_id: u64,
    jobs: HashMap<JobId, Job>,
    /// Digest bins in first-seen order; ids within a bin are FIFO.
    bins: Vec<(u64, VecDeque<JobId>)>,
    active_per_tenant: HashMap<String, usize>,
    paused: bool,
    shutdown: bool,
}

struct Inner {
    config: ServerConfig,
    cache: ProgramCache,
    metrics: ServerRegistry,
    state: Mutex<State>,
    /// Wakes the scheduler thread (submit / resume / shutdown).
    sched_cv: Condvar,
    /// Wakes result waiters on any terminal transition.
    done_cv: Condvar,
}

/// The multi-tenant simulation server. Dropping it shuts the scheduler
/// down (the in-flight pass, if any, completes first).
pub struct Server {
    inner: Arc<Inner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server (and its scheduler thread) with `config`.
    pub fn start(config: ServerConfig) -> Server {
        let inner = Arc::new(Inner {
            cache: ProgramCache::new(config.cache_capacity),
            metrics: ServerRegistry::new(),
            state: Mutex::new(State {
                paused: config.start_paused,
                ..State::default()
            }),
            sched_cv: Condvar::new(),
            done_cv: Condvar::new(),
            config,
        });
        let worker_inner = inner.clone();
        let worker = std::thread::Builder::new()
            .name("parsim-server-sched".into())
            .spawn(move || scheduler_loop(&worker_inner))
            .expect("spawn scheduler thread");
        Server { inner, worker: Some(worker) }
    }

    /// Accepts a job into its digest bin. Fails fast on quota.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let digest = netlist_digest(&spec.netlist);
        let mut st = self.lock();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let active = st.active_per_tenant.get(&spec.tenant).copied().unwrap_or(0);
        if active >= self.inner.config.tenant_quota {
            self.inner.metrics.inc(ServerCounter::QuotaRejections);
            return Err(SubmitError::QuotaExceeded {
                tenant: spec.tenant.clone(),
                limit: self.inner.config.tenant_quota,
            });
        }
        let id = JobId(st.next_id);
        st.next_id += 1;
        let expires_at = spec.deadline.map(|d| Instant::now() + d);
        *st.active_per_tenant.entry(spec.tenant.clone()).or_insert(0) += 1;
        st.jobs.insert(
            id,
            Job {
                spec,
                digest,
                status: JobStatus::Queued,
                cancel_requested: false,
                expires_at,
                outcome: None,
            },
        );
        match st.bins.iter_mut().find(|(d, _)| *d == digest) {
            Some((_, bin)) => bin.push_back(id),
            None => st.bins.push((digest, VecDeque::from([id]))),
        }
        self.inner.metrics.inc(ServerCounter::JobsSubmitted);
        self.publish_queue_gauges(&st);
        self.inner.sched_cv.notify_one();
        Ok(id)
    }

    /// The job's current status (`None` for unknown ids). Lazily expires
    /// a queued job whose deadline has passed, so a paused or saturated
    /// server still reports expiry.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.lock();
        self.expire_if_due(&mut st, id);
        st.jobs.get(&id).map(|j| j.status)
    }

    /// Requests cancellation. Queued jobs cancel immediately; running
    /// jobs are evicted at the next segment cut (or on pass completion
    /// when segmenting is off). Returns `false` if the job is unknown or
    /// already terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.lock();
        let Some(job) = st.jobs.get_mut(&id) else { return false };
        match job.status {
            JobStatus::Queued => {
                job.cancel_requested = true;
                self.finish(&mut st, id, JobStatus::Cancelled, None);
                true
            }
            JobStatus::Running => {
                job.cancel_requested = true;
                true
            }
            _ => false,
        }
    }

    /// Blocks until the job reaches a terminal status, up to `timeout`.
    /// Returns the terminal status, or `None` on timeout / unknown id.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            self.expire_if_due(&mut st, id);
            match st.jobs.get(&id) {
                None => return None,
                Some(j) if j.status.is_terminal() => return Some(j.status),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .inner
                .done_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// A terminal job's outcome: the artifact or the error. `None` while
    /// the job is still pending, or for cancelled/unknown jobs.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        self.lock().jobs.get(&id).and_then(|j| j.outcome.clone())
    }

    /// Pauses dispatch (in-flight passes complete).
    pub fn pause(&self) {
        self.lock().paused = true;
    }

    /// Resumes dispatch.
    pub fn resume(&self) {
        self.lock().paused = false;
        self.inner.sched_cv.notify_one();
    }

    /// The service-level metrics registry.
    pub fn metrics(&self) -> &ServerRegistry {
        &self.inner.metrics
    }

    /// Prometheus text exposition of the service metrics.
    pub fn metrics_text(&self) -> String {
        self.inner.metrics.render()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn expire_if_due(&self, st: &mut State, id: JobId) {
        let due = st.jobs.get(&id).is_some_and(|j| {
            j.status == JobStatus::Queued
                && j.expires_at.is_some_and(|at| Instant::now() >= at)
        });
        if due {
            self.inner.metrics.inc(ServerCounter::DeadlineExpirations);
            let err = deadline_error(st.jobs[&id].spec.deadline.unwrap_or_default());
            self.finish(st, id, JobStatus::Failed, Some(JobOutcome::Failed(err)));
        }
    }

    fn finish(&self, st: &mut State, id: JobId, status: JobStatus, outcome: Option<JobOutcome>) {
        finish_job(&self.inner, st, id, status, outcome);
        self.publish_queue_gauges(st);
    }

    fn publish_queue_gauges(&self, st: &State) {
        publish_queue_gauges(&self.inner, st);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        {
            let mut st = self.lock();
            st.shutdown = true;
        }
        self.inner.sched_cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("Server")
            .field("jobs", &st.jobs.len())
            .field("bins", &st.bins.len())
            .field("paused", &st.paused)
            .finish()
    }
}

/// The synthesized error for a job whose wall-clock budget ran out while
/// it was the *server's* responsibility (queued or between segments) —
/// same variant the engine watchdog uses, so tenants handle one shape.
fn deadline_error(budget: Duration) -> SimError {
    SimError::DeadlineExceeded {
        engine: "server",
        deadline: budget,
        diagnostic: Box::new(StallDiagnostic::default()),
    }
}

fn finish_job(
    inner: &Inner,
    st: &mut State,
    id: JobId,
    status: JobStatus,
    outcome: Option<JobOutcome>,
) {
    let Some(job) = st.jobs.get_mut(&id) else { return };
    debug_assert!(!job.status.is_terminal(), "finishing an already-terminal job");
    job.status = status;
    job.outcome = outcome;
    let counter = match status {
        JobStatus::Done => ServerCounter::JobsCompleted,
        JobStatus::Failed => ServerCounter::JobsFailed,
        JobStatus::Cancelled => ServerCounter::JobsCancelled,
        JobStatus::Queued | JobStatus::Running => unreachable!("terminal statuses only"),
    };
    inner.metrics.inc(counter);
    let tenant = job.spec.tenant.clone();
    let digest = job.digest;
    if let Some(active) = st.active_per_tenant.get_mut(&tenant) {
        *active = active.saturating_sub(1);
    }
    // Drop the id from its bin if it was still queued there.
    if let Some((_, bin)) = st.bins.iter_mut().find(|(d, _)| *d == digest) {
        bin.retain(|&qid| qid != id);
    }
    inner.done_cv.notify_all();
}

fn publish_queue_gauges(inner: &Inner, st: &State) {
    let queued: usize = st.bins.iter().map(|(_, b)| b.len()).sum();
    let running = st
        .jobs
        .values()
        .filter(|j| j.status == JobStatus::Running)
        .count();
    inner.metrics.set_gauge(ServerGauge::QueueDepth, queued as u64);
    inner.metrics.set_gauge(ServerGauge::JobsRunning, running as u64);
    inner
        .metrics
        .set_gauge(ServerGauge::CachedPrograms, inner.cache.len() as u64);
}

/// One dispatched batch: the shared digest and the member jobs with
/// cloned specs (the state lock is not held while the kernel runs).
struct Batch {
    digest: u64,
    members: Vec<(JobId, JobSpec)>,
}

fn scheduler_loop(inner: &Arc<Inner>) {
    // Local mirror of the cache's lifetime eviction count, so the
    // single scheduler thread can publish deltas as counter increments.
    let mut seen_evictions = 0u64;
    loop {
        let batch = {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                if !st.paused {
                    if let Some(batch) = pick_batch(inner, &mut st) {
                        break batch;
                    }
                }
                st = inner
                    .sched_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        run_pass(inner, batch, &mut seen_evictions);
    }
}

/// Picks the bin holding the oldest queued job and drains up to
/// `max_lanes_per_batch` of its members, marking them running. Expired
/// queued jobs encountered on the way are failed in place.
fn pick_batch(inner: &Inner, st: &mut State) -> Option<Batch> {
    // Fail everything already past its deadline first, so expired work
    // never occupies a lane.
    let expired: Vec<JobId> = st
        .jobs
        .iter()
        .filter(|(_, j)| {
            j.status == JobStatus::Queued
                && j.expires_at.is_some_and(|at| Instant::now() >= at)
        })
        .map(|(&id, _)| id)
        .collect();
    for id in expired {
        inner.metrics.inc(ServerCounter::DeadlineExpirations);
        let err = deadline_error(st.jobs[&id].spec.deadline.unwrap_or_default());
        finish_job(inner, st, id, JobStatus::Failed, Some(JobOutcome::Failed(err)));
    }

    // Oldest queued job wins; its whole bin rides along.
    let digest = st
        .bins
        .iter()
        .filter_map(|(d, bin)| bin.front().map(|&head| (head, *d)))
        .min()
        .map(|(_, d)| d)?;
    let bin = &mut st
        .bins
        .iter_mut()
        .find(|(d, _)| *d == digest)
        .expect("bin exists")
        .1;
    let mut members = Vec::new();
    while members.len() < inner.config.max_lanes_per_batch {
        let Some(id) = bin.pop_front() else { break };
        members.push(id);
    }
    let members: Vec<(JobId, JobSpec)> = members
        .into_iter()
        .map(|id| {
            let job = st.jobs.get_mut(&id).expect("queued job exists");
            job.status = JobStatus::Running;
            (id, job.spec.clone())
        })
        .collect();
    publish_queue_gauges(inner, st);
    if members.is_empty() {
        None
    } else {
        Some(Batch { digest, members })
    }
}

/// Builds the pass-wide engine config: union watch set, furthest end
/// time, and (when every member carries a budget) an engine deadline of
/// the largest remaining budget — generous enough that no member is
/// killed early by a *peer's* tighter budget, which the segment cuts
/// enforce instead.
fn pass_config(inner: &Inner, members: &[(JobId, JobSpec)]) -> (SimConfig, Time) {
    let end = members.iter().map(|(_, s)| s.end).max().unwrap_or(Time::ZERO);
    let watch: BTreeSet<_> = members
        .iter()
        .flat_map(|(_, s)| s.watch.iter().copied())
        .collect();
    let mut cfg = SimConfig::new(end)
        .watch_all(watch)
        .threads(inner.config.threads.max(1));
    if let Some(w) = inner.config.lane_width {
        cfg = cfg.with_lane_width(w);
    }
    let budgets: Vec<Option<Duration>> = members.iter().map(|(_, s)| s.deadline).collect();
    if budgets.iter().all(|b| b.is_some()) {
        if let Some(widest) = budgets.into_iter().flatten().max() {
            cfg = cfg.with_deadline(widest.max(Duration::from_millis(1)));
        }
    }
    (cfg, end)
}

fn run_pass(inner: &Inner, batch: Batch, seen_evictions: &mut u64) {
    let netlist = batch.members[0].1.netlist.clone();
    let (program, lookup) = inner.cache.get_or_compile(batch.digest, &netlist);
    inner.metrics.inc(match lookup {
        CacheLookup::Hit => ServerCounter::CacheHits,
        CacheLookup::Miss => ServerCounter::CacheMisses,
    });
    let (_, _, evictions) = inner.cache.stats();
    if evictions > *seen_evictions {
        inner
            .metrics
            .add(ServerCounter::CacheEvictions, evictions - *seen_evictions);
        *seen_evictions = evictions;
    }

    let (cfg, end) = pass_config(inner, &batch.members);
    let lanes = batch.members.len();
    inner.metrics.inc(ServerCounter::BatchPasses);
    inner.metrics.add(ServerCounter::LanesPacked, lanes as u64);
    inner
        .metrics
        .set_gauge(ServerGauge::LastBatchLanes, lanes as u64);

    let cache_hit = lookup == CacheLookup::Hit;
    let seg = inner.config.segment_ticks;
    if seg == 0 || seg >= end.ticks() || end == Time::ZERO {
        run_single_pass(inner, &batch, &netlist, &cfg, &program, cache_hit);
    } else {
        run_segmented_pass(inner, &batch, &netlist, &cfg, &program, end, seg, cache_hit);
    }
    let st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
    publish_queue_gauges(inner, &st);
}

/// Delivers one member's artifact (or cancellation, if requested while
/// the pass ran).
#[allow(clippy::too_many_arguments)]
fn deliver(
    inner: &Inner,
    st: &mut State,
    id: JobId,
    spec: &JobSpec,
    lane: usize,
    lanes_in_batch: usize,
    cache_hit: bool,
    result: &SimResult,
    telemetry: &Option<Arc<parsim_telemetry::RunTelemetry>>,
) {
    if st.jobs.get(&id).is_some_and(|j| j.cancel_requested) {
        finish_job(inner, st, id, JobStatus::Cancelled, None);
        return;
    }
    let artifact = Box::new(JobArtifact {
        result: result.restricted(&spec.watch, spec.end),
        lane,
        lanes_in_batch,
        cache_hit,
        telemetry: telemetry.clone(),
    });
    finish_job(inner, st, id, JobStatus::Done, Some(JobOutcome::Done(artifact)));
}

fn fail_members(inner: &Inner, members: &[(JobId, JobSpec)], err: &SimError) {
    let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
    for (id, _) in members {
        finish_job(
            inner,
            &mut st,
            *id,
            JobStatus::Failed,
            Some(JobOutcome::Failed(err.clone())),
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_single_pass(
    inner: &Inner,
    batch: &Batch,
    netlist: &parsim_netlist::Netlist,
    cfg: &SimConfig,
    program: &parsim_netlist::compile::CompiledProgram,
    cache_hit: bool,
) {
    let stimuli: Vec<LaneStimulus> =
        batch.members.iter().map(|(_, s)| s.stimulus.clone()).collect();
    inner.metrics.inc(ServerCounter::Segments);
    match CompiledMode::run_batch_with_program(netlist, cfg, program, &stimuli) {
        Ok(result) => {
            let telemetry = result.telemetry.map(Arc::new);
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            for (lane, ((id, spec), lane_result)) in
                batch.members.iter().zip(&result.lanes).enumerate()
            {
                deliver(
                    inner,
                    &mut st,
                    *id,
                    spec,
                    lane,
                    batch.members.len(),
                    cache_hit,
                    lane_result,
                    &telemetry,
                );
            }
        }
        Err(err) => fail_members(inner, &batch.members, &err),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_segmented_pass(
    inner: &Inner,
    batch: &Batch,
    netlist: &parsim_netlist::Netlist,
    cfg: &SimConfig,
    program: &parsim_netlist::compile::CompiledProgram,
    end: Time,
    segment_ticks: u64,
    cache_hit: bool,
) {
    // Live members, their accumulated per-lane results, and the resume
    // snapshots — all three stay index-parallel across segments.
    let mut live: Vec<(JobId, JobSpec)> = batch.members.clone();
    let mut acc: Vec<Option<SimResult>> = vec![None; live.len()];
    let mut snaps: Option<Vec<EngineSnapshot>> = None;
    let mut from = 0u64;
    let lanes_in_batch = batch.members.len();

    while !live.is_empty() {
        let cut = Time(from.saturating_add(segment_ticks).min(end.ticks()));
        let stimuli: Vec<LaneStimulus> = live.iter().map(|(_, s)| s.stimulus.clone()).collect();
        inner.metrics.inc(ServerCounter::Segments);
        let (result, new_snaps) = match CompiledMode::run_batch_segment_with_program(
            netlist,
            cfg,
            program,
            &stimuli,
            snaps.as_deref(),
            cut,
        ) {
            Ok(out) => out,
            Err(err) => {
                fail_members(inner, &live, &err);
                return;
            }
        };
        for (slot, lane_result) in acc.iter_mut().zip(&result.lanes) {
            match slot {
                Some(whole) => whole.append_segment(lane_result),
                None => *slot = Some(lane_result.clone()),
            }
        }
        from = cut.ticks();
        let finished = from >= end.ticks();
        let telemetry = result.telemetry.map(Arc::new);

        // Between cuts: deliver members whose own end was reached, evict
        // cancelled/expired ones, and carry the rest into the next
        // segment with their snapshots.
        let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut keep_idx: Vec<usize> = Vec::with_capacity(live.len());
        for (i, (id, spec)) in live.iter().enumerate() {
            let cancelled = st.jobs.get(id).is_some_and(|j| j.cancel_requested);
            let expired = st
                .jobs
                .get(id)
                .and_then(|j| j.expires_at)
                .is_some_and(|at| Instant::now() >= at);
            let done = finished || spec.end.ticks() <= from;
            if cancelled {
                finish_job(inner, &mut st, *id, JobStatus::Cancelled, None);
            } else if done {
                let result = acc[i].take().expect("at least one segment accumulated");
                deliver(
                    inner,
                    &mut st,
                    *id,
                    spec,
                    i,
                    lanes_in_batch,
                    cache_hit,
                    &result,
                    &telemetry,
                );
            } else if expired {
                inner.metrics.inc(ServerCounter::DeadlineExpirations);
                let err = deadline_error(spec.deadline.unwrap_or_default());
                finish_job(
                    inner,
                    &mut st,
                    *id,
                    JobStatus::Failed,
                    Some(JobOutcome::Failed(err)),
                );
            } else {
                keep_idx.push(i);
            }
        }
        drop(st);
        if keep_idx.len() < live.len() {
            live = keep_idx.iter().map(|&i| live[i].clone()).collect();
            let mut old_acc = std::mem::take(&mut acc);
            acc = keep_idx.iter().map(|&i| old_acc[i].take()).collect();
            snaps = Some(
                new_snaps
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| keep_idx.contains(i))
                    .map(|(_, s)| s)
                    .collect(),
            );
        } else {
            snaps = Some(new_snaps);
        }
    }
}
