//! Job specifications, identities, statuses, and finished artifacts.

use std::sync::Arc;
use std::time::Duration;

use parsim_core::{LaneStimulus, SimError, SimResult};
use parsim_logic::Time;
use parsim_netlist::{Netlist, NodeId};

/// Opaque job handle, unique per server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One tenant's simulation request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Who is asking — quota accounting key.
    pub tenant: String,
    /// The circuit. Jobs whose netlists hash to the same structural
    /// digest ([`parsim_checkpoint::netlist_digest`]) are packed into the
    /// same word-parallel batch pass.
    pub netlist: Arc<Netlist>,
    /// This tenant's stimulus lane (schedule overrides on top of the
    /// netlist's base generators).
    pub stimulus: LaneStimulus,
    /// Simulate through this time (inclusive).
    pub end: Time,
    /// Nodes whose waveforms the tenant wants back.
    pub watch: Vec<NodeId>,
    /// Wall-clock budget measured from submission. Expiry fails the job
    /// with [`SimError::DeadlineExceeded`] (`engine: "server"`), checked
    /// at dispatch and at checkpoint-segment cuts. `None` never expires.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A job watching `watch` through `end` with no overrides, no
    /// deadline.
    pub fn new(tenant: impl Into<String>, netlist: Arc<Netlist>, end: Time) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            netlist,
            stimulus: LaneStimulus::base(),
            end,
            watch: Vec::new(),
            deadline: None,
        }
    }

    /// Sets the stimulus lane (builder style).
    #[must_use]
    pub fn stimulus(mut self, stimulus: LaneStimulus) -> JobSpec {
        self.stimulus = stimulus;
        self
    }

    /// Adds one watched node (builder style).
    #[must_use]
    pub fn watch(mut self, node: NodeId) -> JobSpec {
        self.watch.push(node);
        self
    }

    /// Sets the wall-clock budget (builder style).
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> JobSpec {
        self.deadline = Some(d);
        self
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in its digest bin.
    Queued,
    /// Inside a batch pass.
    Running,
    /// Finished with an artifact.
    Done,
    /// Finished with a [`SimError`].
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobStatus {
    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled)
    }

    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// A finished job's deliverable: the tenant's private view of the shared
/// batch pass.
#[derive(Debug, Clone)]
pub struct JobArtifact {
    /// Waveforms restricted to the job's watch list and end time —
    /// bit-identical to a standalone run of the same stimulus.
    pub result: SimResult,
    /// Which lane of the batch pass carried this job.
    pub lane: usize,
    /// How many tenants shared that pass.
    pub lanes_in_batch: usize,
    /// Whether the pass reused a cached compiled program.
    pub cache_hit: bool,
    /// The batch pass's run telemetry (shared across its tenants).
    pub telemetry: Option<Arc<parsim_telemetry::RunTelemetry>>,
}

/// How a job ended: artifact or error. Cancellation surfaces as
/// [`JobStatus::Cancelled`] with no outcome. The artifact is boxed —
/// it carries whole waveforms and would otherwise dwarf the error arm.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    Done(Box<JobArtifact>),
    Failed(SimError),
}

/// Why a submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant already has `limit` jobs queued or running.
    QuotaExceeded { tenant: String, limit: usize },
    /// The spec cannot be served (empty watch is allowed; a zero-lane
    /// batch is not, etc.).
    Invalid { reason: String },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant '{tenant}' is at its quota of {limit} active jobs")
            }
            SubmitError::Invalid { reason } => write!(f, "invalid job: {reason}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}
