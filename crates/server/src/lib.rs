//! Multi-tenant lane-packed simulation serving.
//!
//! The paper's word-parallel compiled mode evaluates **one** instruction
//! stream for many independent stimulus sets at once. This crate turns
//! that substrate into a service: tenants submit jobs, a scheduler bins
//! pending jobs by their netlist's FNV-1a structural digest
//! ([`parsim_checkpoint::netlist_digest`]), and each dispatch drains one
//! bin into a single [`CompiledMode::run_batch`] pass — up to
//! [`ServerConfig::max_lanes_per_batch`] tenants served by one
//! instruction-stream execution, each getting back waveforms
//! bit-identical to a standalone run of their stimulus.
//!
//! The compile-once/run-many economics ride a [`ProgramCache`]: the first
//! job of a digest pays the lowering pass, every later batch of that
//! digest reuses the cached [`CompiledProgram`] through
//! [`CompiledMode::run_batch_with_program`]. Per-tenant quotas bound
//! queue occupancy, wall-clock deadlines ride the engine's watchdog and
//! [`SimError`] containment (expiry while the job is the *server's*
//! responsibility synthesizes [`SimError::DeadlineExceeded`] with
//! `engine: "server"`), and cancellation/deadline eviction takes effect
//! at checkpoint-segment cuts when [`ServerConfig::segment_ticks`] is
//! set.
//!
//! Transports stack from the inside out: [`InProcTransport`] calls the
//! [`Server`] directly (hermetic tests), and [`HttpServer`] serves the
//! same [`Request`]/[`Response`] vocabulary over a hand-rolled HTTP/1.1
//! listener (`psim-server` in `parsim-harness` is the bin).
//!
//! Service-level observability lives in
//! [`parsim_telemetry::ServerRegistry`] under `parsim_server_*` metric
//! names: job lifecycle counts, cache hits/misses/evictions, batch
//! passes, and lane occupancy.
//!
//! [`CompiledMode::run_batch`]: parsim_core::CompiledMode::run_batch
//! [`CompiledMode::run_batch_with_program`]: parsim_core::CompiledMode::run_batch_with_program
//! [`CompiledProgram`]: parsim_netlist::compile::CompiledProgram
//! [`SimError`]: parsim_core::SimError
//! [`SimError::DeadlineExceeded`]: parsim_core::SimError::DeadlineExceeded

pub mod cache;
pub mod http;
pub mod job;
pub mod scheduler;
pub mod transport;

pub use cache::{CacheLookup, ProgramCache};
pub use http::HttpServer;
pub use job::{JobArtifact, JobId, JobOutcome, JobSpec, JobStatus, SubmitError};
pub use scheduler::{Server, ServerConfig};
pub use transport::{InProcTransport, Request, Response, Transport};
