//! Minimal, self-contained stand-in for the `proptest` 1.x API surface
//! the workspace uses, so builds never depend on registry resolution.
//!
//! Provided: the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`strategy::Strategy`] with `prop_map`, integer-range and tuple
//! strategies, [`arbitrary::any`], and `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`. Cases are generated from a seed derived
//! deterministically from the test's module path and name, so failures
//! reproduce exactly; there is no shrinking — the generated inputs are
//! already small by construction.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::UniformInt> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rand::Rng::gen_range(rng, self.start..self.end)
        }
    }

    impl<T: rand::UniformInt> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rand::Rng::gen_range(rng, *self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/0);
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
}

pub mod arbitrary {
    //! Default strategies per type, via [`any`].

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u32, u64, usize, bool);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and deterministic case seeding.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }

    /// A failed (or rejected) property case, usable with `?` in bodies.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold; the message explains why.
        Fail(String),
        /// The generated input was unsuitable for this property.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Derives the deterministic generator for one case of one property.
    pub fn case_rng(test_path: &str, case: u32) -> SmallRng {
        // FNV-1a over the fully qualified test name, mixed with the case
        // index: stable across runs and platforms, distinct per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

pub mod prelude {
    //! The glob-importable API: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { ... }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // The immediately-called closure gives `$body` a `?`-capable
                // scope without requiring the test fn to return a Result.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("case {} of {}: {}", __case, stringify!($name), e);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 1u64..=10).prop_map(|(a, b)| (a * b, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 1u64..=4, flip in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y), "y={} out of range", y);
            let _ = flip;
        }

        #[test]
        fn mapped_tuples_compose(p in pair()) {
            prop_assert_eq!(p.0 % p.1, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(mut v in 0u8..10) {
            v = v.saturating_add(1);
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a = crate::test_runner::case_rng("mod::t", 3).gen::<u64>();
        let b = crate::test_runner::case_rng("mod::t", 3).gen::<u64>();
        let c = crate::test_runner::case_rng("mod::t", 4).gen::<u64>();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
