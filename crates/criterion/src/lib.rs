//! Minimal, self-contained stand-in for the `criterion` 0.5 API surface
//! the workspace uses, so builds never depend on registry resolution.
//!
//! It measures and prints mean wall time per iteration for every
//! registered benchmark — no statistics, plots, or baselines. Sample
//! counts and measurement windows are honored loosely: each benchmark
//! runs for roughly `measurement_time`, capped at `sample_size`
//! batches.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the per-benchmark warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Runs one benchmark closure with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (reporting happens per benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            budget: self.warm_up_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher); // warm-up pass
        bencher.budget = self.measurement_time;
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if bencher.elapsed >= self.measurement_time {
                break;
            }
        }
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters.min(u32::MAX as u64) as u32
        };
        println!(
            "{}/{}: {:>12.3?} per iter ({} iters)",
            self.name, id.id, mean, bencher.iters
        );
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f` within the configured budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let per_call = self.budget.max(Duration::from_micros(1));
        let start = Instant::now();
        loop {
            black_box(f());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= per_call || self.iters >= 1_000_000 {
                self.elapsed += elapsed;
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut calls = 0u64;
        g.sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.bench_with_input(BenchmarkId::new("with", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
        assert!(calls > 0);
    }
}
