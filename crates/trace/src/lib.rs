//! Lock-free per-worker event tracing for the parsim engines.
//!
//! Each worker thread owns a [`WorkerTracer`]: a pre-allocated ring of
//! fixed-size [`TraceEvent`] records stamped with a monotonic tick derived
//! from a shared [`std::time::Instant`] epoch. Because every ring is owned
//! exclusively by its worker there are no locks and no atomics on the hot
//! path, and because the ring is sized up front there is no allocation
//! either — when it fills, the oldest records are overwritten and counted
//! as dropped. Buffers are drained only once, at run end, into a [`Trace`].
//!
//! Recording is gated behind the `trace` cargo feature. With the feature
//! disabled, [`WorkerTracer`] is a zero-sized type and every recording
//! method is an `#[inline]` empty body, so the hooks threaded through the
//! engines compile to nothing. The data model and the two consumers — the
//! Chrome/Perfetto exporter ([`Trace::write_chrome_json`]) and the
//! [`RunReport`] analyzer — are always compiled, so `Option<Trace>` fields
//! and report plumbing work identically in both builds (the option is just
//! always `None` without the feature).

pub mod chrome;
pub mod json;
pub mod report;

pub use report::{
    ArenaReport, CheckpointReport, RunReport, ThreadSummary, TimeSeriesPoint, TimeSeriesReport,
};

use std::time::Instant;

/// True when this build can actually record events (`trace` cargo feature).
///
/// Callers that require a trace (e.g. `psim --trace`) should check this and
/// fail loudly instead of silently producing an empty file.
pub const fn recording_compiled() -> bool {
    cfg!(feature = "trace")
}

/// Default ring capacity per worker, in events (16 bytes each → 1 MiB).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Run-time tracing configuration, passed via `SimConfig::with_trace`.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring capacity per worker, in events. When a worker records more than
    /// this, the oldest events are overwritten and counted as dropped.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: DEFAULT_CAPACITY }
    }
}

impl TraceConfig {
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig { capacity: capacity.max(16) }
    }
}

/// What happened. One byte; the meaning of `arg` depends on the kind.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Span: chaotic engine replaying pending input events into an element
    /// and evaluating it. `arg` = element id.
    ActivationReplay = 0,
    /// Span: one simulated time step (seq engine). `arg` = low 32 bits of
    /// the simulated time.
    TimeStep = 1,
    /// Span: compiled-mode apply phase (commit pending node values).
    PhaseApply = 2,
    /// Span: compiled-mode evaluate phase (run level blocks).
    PhaseEval = 3,
    /// Span: sync engine phase A (apply node updates, schedule elements).
    PhaseNodes = 4,
    /// Span: sync engine phase B (evaluate elements, emit node updates).
    PhaseElems = 5,
    /// Span: waiting at a barrier. `arg` = barrier index within the loop.
    BarrierWait = 6,
    /// Instant: an event was inserted into a queue/mailbox. `arg` = node id.
    EventInsert = 7,
    /// Instant: a batch was pushed to another worker's grid column.
    /// `arg` = destination worker.
    GridSend = 8,
    /// Instant: a batch was received from the grid. `arg` = source peer.
    GridRecv = 9,
    /// Instant: an activation was served from the worker-local deque.
    /// `arg` = element id.
    LocalHit = 10,
    /// Instant: a steal attempt. `arg` = element id (or 0).
    Steal = 11,
    /// Instant: the idle backoff escalated to an OS park. `arg` = park count.
    BackoffPark = 12,
    /// Instant: watchdog heartbeat from an idle worker.
    Heartbeat = 13,
    /// Instant: one element evaluation. `arg` = element id.
    Eval = 14,
    /// Counter: local queue occupancy sampled at an activation boundary.
    /// `arg` = depth.
    QueueDepth = 15,
    /// Instant: compiled-mode level block evaluated. `arg` = block id.
    BlockRun = 16,
    /// Instant: compiled-mode level block skipped by activity gating.
    /// `arg` = block id.
    BlockSkip = 17,
    /// Instant: sync engine mailbox pool miss (fresh allocation).
    PoolMiss = 18,
}

impl EventKind {
    /// Stable human-readable name, used by both consumers.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::ActivationReplay => "activation_replay",
            EventKind::TimeStep => "time_step",
            EventKind::PhaseApply => "phase_apply",
            EventKind::PhaseEval => "phase_eval",
            EventKind::PhaseNodes => "phase_nodes",
            EventKind::PhaseElems => "phase_elems",
            EventKind::BarrierWait => "barrier_wait",
            EventKind::EventInsert => "event_insert",
            EventKind::GridSend => "grid_send",
            EventKind::GridRecv => "grid_recv",
            EventKind::LocalHit => "local_hit",
            EventKind::Steal => "steal",
            EventKind::BackoffPark => "backoff_park",
            EventKind::Heartbeat => "heartbeat",
            EventKind::Eval => "eval",
            EventKind::QueueDepth => "queue_depth",
            EventKind::BlockRun => "block_run",
            EventKind::BlockSkip => "block_skip",
            EventKind::PoolMiss => "pool_miss",
        }
    }

    /// Kinds recorded as begin/end span pairs (everything else is an
    /// instant or a counter sample).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::ActivationReplay
                | EventKind::TimeStep
                | EventKind::PhaseApply
                | EventKind::PhaseEval
                | EventKind::PhaseNodes
                | EventKind::PhaseElems
                | EventKind::BarrierWait
        )
    }

    /// Span kinds that count as useful work (for utilization); barrier
    /// waits are accounted separately.
    pub fn is_work_span(self) -> bool {
        self.is_span() && self != EventKind::BarrierWait
    }
}

/// Whether a record opens a span, closes one, or stands alone.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    Begin = 0,
    End = 1,
    Instant = 2,
    Counter = 3,
}

/// One fixed-size (16-byte) trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the run's shared epoch.
    pub tick_ns: u64,
    /// Kind-dependent payload (element id, worker index, depth, ...).
    pub arg: u32,
    pub kind: EventKind,
    pub mark: Mark,
}

/// Per-run handle: creates one [`WorkerTracer`] per worker against a shared
/// epoch, and reassembles their drained rings into a [`Trace`].
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    // Both only reach recorders when the `trace` feature compiles them in.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    capacity: usize,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    epoch: Instant,
}

impl Tracer {
    /// `config = None` (or a build without the `trace` feature) yields a
    /// disabled tracer whose workers record nothing and whose
    /// [`Tracer::finish`] returns `None`.
    pub fn new(config: Option<&TraceConfig>) -> Tracer {
        let enabled = recording_compiled() && config.is_some();
        Tracer {
            enabled,
            capacity: config.map(|c| c.capacity.max(16)).unwrap_or(DEFAULT_CAPACITY),
            epoch: Instant::now(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Build the tracer for one worker. The returned value is moved into the
    /// worker thread and owned exclusively by it for the whole run.
    pub fn worker(&self, index: usize) -> WorkerTracer {
        let _ = index;
        #[cfg(feature = "trace")]
        {
            if self.enabled {
                return WorkerTracer {
                    rec: Some(Box::new(Recorder {
                        worker: index as u32,
                        epoch: self.epoch,
                        buf: Vec::with_capacity(self.capacity),
                        capacity: self.capacity,
                        total: 0,
                    })),
                };
            }
        }
        WorkerTracer::default()
    }

    /// Drain the workers' rings. Returns `None` when tracing was disabled.
    /// Workers lost to a panic may simply be absent from `workers`.
    pub fn finish<I>(self, workers: I) -> Option<Trace>
    where
        I: IntoIterator<Item = WorkerTracer>,
    {
        if !self.enabled {
            return None;
        }
        #[cfg(feature = "trace")]
        {
            let mut out: Vec<WorkerTrace> =
                workers.into_iter().filter_map(|w| w.rec.map(|r| r.into_trace())).collect();
            out.sort_by_key(|w| w.worker);
            Some(Trace { workers: out })
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = workers;
            None
        }
    }
}

#[cfg(feature = "trace")]
#[derive(Debug, Clone)]
struct Recorder {
    worker: u32,
    epoch: Instant,
    buf: Vec<TraceEvent>,
    capacity: usize,
    total: u64,
}

#[cfg(feature = "trace")]
impl Recorder {
    #[inline]
    fn push(&mut self, kind: EventKind, mark: Mark, arg: u32) {
        let ev = TraceEvent {
            tick_ns: self.epoch.elapsed().as_nanos() as u64,
            arg,
            kind,
            mark,
        };
        let idx = (self.total % self.capacity as u64) as usize;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[idx] = ev;
        }
        self.total += 1;
    }

    fn into_trace(self) -> WorkerTrace {
        let dropped = self.total.saturating_sub(self.buf.len() as u64);
        let mut events = self.buf;
        if dropped > 0 {
            // The ring wrapped: rotate so the oldest surviving event is first.
            let split = (self.total % self.capacity as u64) as usize;
            events.rotate_left(split);
        }
        WorkerTrace { worker: self.worker, events, dropped }
    }
}

/// A worker thread's exclusive recording handle.
///
/// With the `trace` feature disabled this is a zero-sized type and every
/// method body is empty; the compiler removes the calls entirely.
#[derive(Debug, Default, Clone)]
pub struct WorkerTracer {
    #[cfg(feature = "trace")]
    rec: Option<Box<Recorder>>,
}

impl WorkerTracer {
    /// A tracer that records nothing, for paths that need a placeholder.
    pub fn disabled() -> WorkerTracer {
        WorkerTracer::default()
    }

    /// True when this handle actually records. Lets hot paths skip computing
    /// an expensive `arg` (the record calls themselves are already cheap).
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.rec.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    #[inline]
    pub fn begin(&mut self, kind: EventKind, arg: u32) {
        let _ = (kind, arg);
        #[cfg(feature = "trace")]
        if let Some(r) = self.rec.as_deref_mut() {
            r.push(kind, Mark::Begin, arg);
        }
    }

    #[inline]
    pub fn end(&mut self, kind: EventKind) {
        let _ = kind;
        #[cfg(feature = "trace")]
        if let Some(r) = self.rec.as_deref_mut() {
            r.push(kind, Mark::End, 0);
        }
    }

    #[inline]
    pub fn instant(&mut self, kind: EventKind, arg: u32) {
        let _ = (kind, arg);
        #[cfg(feature = "trace")]
        if let Some(r) = self.rec.as_deref_mut() {
            r.push(kind, Mark::Instant, arg);
        }
    }

    /// Record a counter sample (e.g. queue depth at an activation boundary).
    #[inline]
    pub fn counter(&mut self, kind: EventKind, value: u32) {
        let _ = (kind, value);
        #[cfg(feature = "trace")]
        if let Some(r) = self.rec.as_deref_mut() {
            r.push(kind, Mark::Counter, value);
        }
    }
}

/// One worker's drained ring, oldest event first.
#[derive(Debug, Clone, Default)]
pub struct WorkerTrace {
    pub worker: u32,
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring filled up.
    pub dropped: u64,
}

impl WorkerTrace {
    /// Number of completed (begin + end both survived) spans.
    pub fn span_count(&self) -> usize {
        let mut open: std::collections::HashMap<EventKind, usize> = std::collections::HashMap::new();
        let mut done = 0usize;
        for ev in &self.events {
            match ev.mark {
                Mark::Begin => *open.entry(ev.kind).or_insert(0) += 1,
                Mark::End => {
                    if let Some(n) = open.get_mut(&ev.kind) {
                        if *n > 0 {
                            *n -= 1;
                            done += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        done
    }
}

/// The full drained trace of one run: one [`WorkerTrace`] per worker,
/// sorted by worker index.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub workers: Vec<WorkerTrace>,
}

impl Trace {
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    pub fn num_events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    pub fn dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Latest tick across all workers (the run's observed wall span in ns,
    /// since the epoch is taken at tracer creation).
    pub fn last_tick_ns(&self) -> u64 {
        self.workers
            .iter()
            .flat_map(|w| w.events.last())
            .map(|e| e.tick_ns)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "trace")]
    fn cfg_small(cap: usize) -> TraceConfig {
        TraceConfig::with_capacity(cap)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(None);
        assert!(!t.is_enabled());
        let mut w = t.worker(0);
        w.begin(EventKind::TimeStep, 1);
        w.end(EventKind::TimeStep);
        w.instant(EventKind::Eval, 2);
        assert!(t.finish(vec![w]).is_none());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn records_in_order_with_monotonic_ticks() {
        let t = Tracer::new(Some(&cfg_small(1024)));
        assert!(t.is_enabled());
        let mut w = t.worker(3);
        assert!(w.is_active());
        w.begin(EventKind::ActivationReplay, 7);
        w.instant(EventKind::EventInsert, 9);
        w.end(EventKind::ActivationReplay);
        let trace = t.finish(vec![w]).expect("enabled tracer yields a trace");
        assert_eq!(trace.num_workers(), 1);
        let wt = &trace.workers[0];
        assert_eq!(wt.worker, 3);
        assert_eq!(wt.dropped, 0);
        assert_eq!(wt.events.len(), 3);
        assert_eq!(wt.events[0].kind, EventKind::ActivationReplay);
        assert_eq!(wt.events[0].mark, Mark::Begin);
        assert_eq!(wt.events[0].arg, 7);
        assert_eq!(wt.events[1].kind, EventKind::EventInsert);
        assert_eq!(wt.events[2].mark, Mark::End);
        for pair in wt.events.windows(2) {
            assert!(pair[0].tick_ns <= pair[1].tick_ns);
        }
        assert_eq!(wt.span_count(), 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_wraps_and_counts_dropped() {
        let t = Tracer::new(Some(&cfg_small(16)));
        let mut w = t.worker(0);
        for i in 0..40u32 {
            w.instant(EventKind::Eval, i);
        }
        let trace = t.finish(vec![w]).unwrap();
        let wt = &trace.workers[0];
        assert_eq!(wt.events.len(), 16);
        assert_eq!(wt.dropped, 24);
        // Oldest surviving event first, newest last.
        let args: Vec<u32> = wt.events.iter().map(|e| e.arg).collect();
        let expect: Vec<u32> = (24..40).collect();
        assert_eq!(args, expect);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn workers_sorted_and_panicked_workers_tolerated() {
        let t = Tracer::new(Some(&cfg_small(64)));
        let mut a = t.worker(2);
        let mut b = t.worker(0);
        a.instant(EventKind::Heartbeat, 0);
        b.instant(EventKind::Heartbeat, 0);
        // Worker 1 "panicked": its tracer is never returned.
        let trace = t.finish(vec![a, b]).unwrap();
        let ids: Vec<u32> = trace.workers.iter().map(|w| w.worker).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn event_record_is_16_bytes() {
        assert_eq!(std::mem::size_of::<TraceEvent>(), 16);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn worker_tracer_is_zero_sized_without_feature() {
        assert_eq!(std::mem::size_of::<WorkerTracer>(), 0);
        let t = Tracer::new(Some(&TraceConfig::default()));
        assert!(!t.is_enabled(), "recording requires the trace feature");
        let mut w = t.worker(0);
        w.begin(EventKind::TimeStep, 0);
        w.end(EventKind::TimeStep);
        assert!(t.finish(vec![w]).is_none());
    }
}
