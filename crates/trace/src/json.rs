//! Minimal JSON helpers: string escaping, NaN-safe number formatting, and a
//! well-formedness lint.
//!
//! The workspace deliberately has no serde; trace exports and bench files are
//! rendered by hand. These helpers centralize the two classic failure modes
//! of hand-rendered JSON — unescaped strings and non-finite floats (which
//! have no JSON representation) — and give tests and CLI smoke paths a cheap
//! way to validate that an emitted document actually parses.

/// Escape a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a valid JSON number. NaN and infinities have no JSON
/// representation; they render as `0.0` so documents stay machine-parseable
/// (`null` would break numeric consumers, and bare `NaN` is invalid JSON).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints without a dot; keep numbers
        // unambiguously floating point for typed consumers.
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

/// Like [`fmt_f64`] but with fixed precision.
pub fn fmt_f64_prec(v: f64, prec: usize) -> String {
    if v.is_finite() {
        format!("{v:.prec$}")
    } else {
        format!("{:.prec$}", 0.0)
    }
}

/// Validate that `s` is a single well-formed JSON document.
///
/// This is a structural lint, not a full parser: it checks value grammar,
/// string escapes, and number syntax, and that the whole input is consumed.
/// Good enough to catch truncated output, trailing commas, bare `NaN`, and
/// unescaped quotes in hand-rendered documents.
pub fn lint(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn value(b: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(b, i);
    match b.get(i) {
        None => Err(format!("unexpected end of input at byte {i}")),
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        Some(c) => Err(format!("unexpected byte {:?} at {i}", *c as char)),
    }
}

fn literal(b: &[u8], i: usize, word: &str) -> Result<usize, String> {
    if b[i..].starts_with(word.as_bytes()) {
        Ok(i + word.len())
    } else {
        Err(format!("invalid literal at byte {i} (expected {word})"))
    }
}

fn object(b: &[u8], i: usize) -> Result<usize, String> {
    let mut i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        i = skip_ws(b, i);
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        i = string(b, i)?;
        i = skip_ws(b, i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        i = value(b, i + 1)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn array(b: &[u8], i: usize) -> Result<usize, String> {
    let mut i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b']') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn string(b: &[u8], i: usize) -> Result<usize, String> {
    // b[i] == '"'
    let mut i = i + 1;
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => {
                match b.get(i + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                    Some(b'u') => {
                        let hex = b.get(i + 2..i + 6).ok_or_else(|| {
                            format!("truncated \\u escape at byte {i}")
                        })?;
                        if !hex.iter().all(|c| c.is_ascii_hexdigit()) {
                            return Err(format!("invalid \\u escape at byte {i}"));
                        }
                        i += 6;
                    }
                    _ => return Err(format!("invalid escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control byte at {i}")),
            _ => i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], mut i: usize) -> Result<usize, String> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let int_digits = digits(b, &mut i);
    if int_digits == 0 {
        return Err(format!("invalid number at byte {start}"));
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        if digits(b, &mut i) == 0 {
            return Err(format!("invalid number fraction at byte {start}"));
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if digits(b, &mut i) == 0 {
            return Err(format!("invalid number exponent at byte {start}"));
        }
    }
    Ok(i)
}

fn digits(b: &[u8], i: &mut usize) -> usize {
    let start = *i;
    while matches!(b.get(*i), Some(c) if c.is_ascii_digit()) {
        *i += 1;
    }
    *i - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            r#"{"a": [1, 2.0, {"b": "x\ny"}], "c": null}"#,
            "  {\n \"k\" : [ ] } \n",
        ] {
            assert!(lint(ok).is_ok(), "should accept: {ok}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\": NaN}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "{'single': 1}",
            "[1 2]",
            "01e",
        ] {
            assert!(lint(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn fmt_f64_never_emits_non_finite() {
        assert_eq!(fmt_f64(f64::NAN), "0.0");
        assert_eq!(fmt_f64(f64::INFINITY), "0.0");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "0.0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.0), "0.0");
        assert_eq!(fmt_f64_prec(f64::NAN, 3), "0.000");
        assert_eq!(fmt_f64_prec(0.12345, 3), "0.123");
        // Everything fmt_f64 produces must itself lint as JSON.
        for v in [f64::NAN, f64::INFINITY, -0.0, 1e300, 1e-300, 42.0] {
            assert!(lint(&fmt_f64(v)).is_ok());
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let doc = format!("\"{}\"", escape("weird \"quoted\"\n\ttext\\"));
        assert!(lint(&doc).is_ok());
    }
}
