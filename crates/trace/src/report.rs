//! Post-run trace analysis: per-phase utilization, barrier-imbalance
//! histograms, queue-occupancy-over-time, and the hottest elements.
//!
//! A [`RunReport`] is computed purely from a drained [`Trace`] — it needs no
//! access to engine internals, so the same analyzer works for every engine
//! and for traces reconstructed in tests. Rendered two ways: `Display` for
//! the `psim --report` text path, [`RunReport::to_json`] for machine
//! consumption next to the BENCH files.

use crate::json::{escape, fmt_f64_prec};
use crate::{EventKind, Mark, Trace};
use std::collections::HashMap;
use std::fmt;

/// Work-span kinds tracked per worker, in report order. Barrier waits are
/// accounted separately (they are stall, not work).
pub const PHASES: [EventKind; 6] = [
    EventKind::ActivationReplay,
    EventKind::TimeStep,
    EventKind::PhaseApply,
    EventKind::PhaseEval,
    EventKind::PhaseNodes,
    EventKind::PhaseElems,
];

/// Log-bucketed duration histogram (nanosecond bounds, roughly powers of 4).
pub const DURATION_BOUNDS_NS: [u64; 9] =
    [250, 1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000, 4_000_000, 16_000_000];

#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurationStats {
    /// counts[i] counts durations <= DURATION_BOUNDS_NS[i]; the final slot
    /// is the overflow bucket.
    pub counts: [u64; DURATION_BOUNDS_NS.len() + 1],
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl DurationStats {
    pub fn record(&mut self, dur_ns: u64) {
        let slot = DURATION_BOUNDS_NS
            .iter()
            .position(|&b| dur_ns <= b)
            .unwrap_or(DURATION_BOUNDS_NS.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.total_ns += dur_ns;
        self.max_ns = self.max_ns.max(dur_ns);
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (ns) of the smallest bucket whose cumulative share
    /// reaches `p` (0.0..=1.0). The overflow bucket reports the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return if i < DURATION_BOUNDS_NS.len() {
                    DURATION_BOUNDS_NS[i]
                } else {
                    self.max_ns
                };
            }
        }
        self.max_ns
    }
}

/// One worker's summary.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    pub worker: u32,
    pub events: usize,
    pub dropped: u64,
    /// Time inside each [`PHASES`] span kind, in ns.
    pub phase_ns: [u64; PHASES.len()],
    /// Busy time reported directly by engine metrics rather than derived
    /// from trace spans — the path that works without the `trace` feature
    /// (see [`RunReport::from_thread_summaries`]).
    pub direct_busy_ns: u64,
    /// Measured idle time (backoff spins, barrier-free waits) from engine
    /// metrics; 0 when only trace spans are available.
    pub idle_ns: u64,
    pub barrier_ns: u64,
    pub barrier_waits: u64,
    pub spans: u64,
    pub inserts: u64,
    pub evals: u64,
    pub grid_sends: u64,
    pub grid_recvs: u64,
    pub local_hits: u64,
    pub steals: u64,
    pub parks: u64,
    pub heartbeats: u64,
    pub pool_misses: u64,
}

impl WorkerReport {
    pub fn busy_ns(&self) -> u64 {
        self.phase_ns.iter().sum::<u64>() + self.direct_busy_ns
    }

    /// Fraction of the run's wall span this worker spent in work spans.
    pub fn utilization(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            0.0
        } else {
            self.busy_ns() as f64 / wall_ns as f64
        }
    }
}

/// Queue occupancy aggregated over one slice of the run.
#[derive(Debug, Clone, Default)]
pub struct DepthBin {
    pub start_ns: u64,
    pub samples: u64,
    pub sum: u64,
    pub max: u32,
}

impl DepthBin {
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// An element ranked by aggregate activation time.
#[derive(Debug, Clone, Default)]
pub struct HotElement {
    pub element: u32,
    pub activations: u64,
    pub total_ns: u64,
}

const QUEUE_BINS: usize = 24;
const TOP_K: usize = 8;

/// Checkpoint-protocol activity for a run. The trace stream itself does
/// not carry this (the driver, not the workers, writes snapshots); the
/// harness fills it in from the engine's metrics via
/// [`RunReport::with_checkpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Snapshots committed to disk.
    pub writes: u64,
    /// Total bytes across committed snapshot files.
    pub bytes: u64,
    /// Wall nanoseconds spent serializing, fsyncing, and renaming.
    pub write_ns: u64,
    /// Wall nanoseconds spent scanning/validating/loading at resume.
    pub restore_ns: u64,
}

/// Arena-allocator activity for a run. Like [`CheckpointReport`], the
/// trace stream does not carry this; the harness fills it in from the
/// engine's metrics via [`RunReport::with_arena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaReport {
    /// Whether the per-worker slab arena was active for the run.
    pub enabled: bool,
    /// Behavior chunks allocated (arena or global, depending on
    /// `enabled`).
    pub chunk_allocs: u64,
    /// Behavior chunks freed/retired.
    pub chunk_frees: u64,
    /// Mailbox buffers reused from the recycling pool.
    pub mailbox_recycled: u64,
    /// Slab spans obtained from the global allocator.
    pub slab_allocs: u64,
    /// Bytes across those spans.
    pub slab_bytes: u64,
    /// Arena allocations served from a free list.
    pub recycled: u64,
    /// Arena allocations carved fresh from a span.
    pub fresh: u64,
    /// Blocks reclaimed after their grace period.
    pub reclaimed: u64,
    /// High-water mark of any worker's retire quarantine.
    pub quarantine_peak: u64,
}

/// One worker's scheduling/timing totals as reported by engine metrics —
/// the feature-free twin of the trace-derived counters. The harness
/// builds these from `parsim-core`'s `ThreadMetrics` (which this crate
/// cannot name without a dependency cycle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadSummary {
    pub busy_ns: u64,
    pub idle_ns: u64,
    pub evals: u64,
    pub local_hits: u64,
    pub grid_sends: u64,
    pub steals: u64,
    pub backoff_parks: u64,
}

/// One point of the in-run telemetry flight recorder, reduced to the
/// fields the report renders. The harness converts `parsim-telemetry`'s
/// samples into these (again: no dependency cycle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeSeriesPoint {
    /// Nanoseconds since the run's registry epoch.
    pub t_ns: u64,
    pub events: u64,
    pub evaluations: u64,
    pub sim_time: u64,
    pub queue_depth: u64,
    pub busy_ns: u64,
    pub idle_ns: u64,
}

/// The sampled time-series section of a run report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeSeriesReport {
    /// Sampling period, ns (0 when unknown).
    pub sample_every_ns: u64,
    /// Samples oldest-first; the last is the end-of-run total.
    pub points: Vec<TimeSeriesPoint>,
}

impl TimeSeriesReport {
    /// Event throughput between consecutive samples, in events/second.
    pub fn rates(&self) -> Vec<f64> {
        self.points
            .windows(2)
            .map(|w| {
                let dt = w[1].t_ns.saturating_sub(w[0].t_ns);
                if dt == 0 {
                    0.0
                } else {
                    (w[1].events.saturating_sub(w[0].events)) as f64 * 1e9 / dt as f64
                }
            })
            .collect()
    }
}

/// The analyzer output. See module docs.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    pub wall_ns: u64,
    pub total_events: usize,
    pub dropped: u64,
    pub workers: Vec<WorkerReport>,
    /// All barrier-wait durations across all workers.
    pub barrier: DurationStats,
    /// Queue-depth counter samples binned over the run's wall span.
    pub queue_depth: Vec<DepthBin>,
    /// Top elements by total activation-replay time (falls back to
    /// evaluation counts for engines that only emit `Eval` instants).
    pub hottest: Vec<HotElement>,
    /// Checkpoint write/restore latency, when the run checkpointed.
    pub checkpoint: Option<CheckpointReport>,
    /// SIMD lane-group width of a batch run (64/128/256/512), or 0 for
    /// scalar engines. From engine metrics, via [`RunReport::with_lane_width`].
    pub lane_width: u64,
    /// Arena-allocator activity, when the engine reported any.
    pub arena: Option<ArenaReport>,
    /// In-run telemetry samples, when sampling was on. From the
    /// always-on metrics registry via [`RunReport::with_timeseries`].
    pub timeseries: Option<TimeSeriesReport>,
}

impl RunReport {
    pub fn from_trace(trace: &Trace) -> RunReport {
        let wall_ns = trace.last_tick_ns();
        let mut report = RunReport {
            wall_ns,
            total_events: trace.num_events(),
            dropped: trace.dropped(),
            queue_depth: (0..QUEUE_BINS)
                .map(|i| DepthBin {
                    start_ns: wall_ns * i as u64 / QUEUE_BINS as u64,
                    ..DepthBin::default()
                })
                .collect(),
            ..RunReport::default()
        };
        let mut hot: HashMap<u32, HotElement> = HashMap::new();

        for wt in &trace.workers {
            let mut wr = WorkerReport {
                worker: wt.worker,
                events: wt.events.len(),
                dropped: wt.dropped,
                ..WorkerReport::default()
            };
            // Per-kind stack of (begin tick, arg); our spans of one kind
            // never nest but tolerate it anyway.
            let mut open: HashMap<EventKind, Vec<(u64, u32)>> = HashMap::new();
            let last_tick = wt.events.last().map(|e| e.tick_ns).unwrap_or(0);

            for ev in &wt.events {
                match ev.mark {
                    Mark::Begin => {
                        open.entry(ev.kind).or_default().push((ev.tick_ns, ev.arg));
                    }
                    Mark::End => {
                        if let Some((begin, arg)) =
                            open.get_mut(&ev.kind).and_then(|s| s.pop())
                        {
                            let dur = ev.tick_ns.saturating_sub(begin);
                            close_span(&mut wr, &mut report, &mut hot, ev.kind, arg, dur);
                        }
                    }
                    Mark::Instant => match ev.kind {
                        EventKind::EventInsert => wr.inserts += 1,
                        EventKind::Eval => {
                            wr.evals += 1;
                            let h = hot.entry(ev.arg).or_default();
                            h.element = ev.arg;
                            h.activations += 1;
                        }
                        EventKind::GridSend => wr.grid_sends += 1,
                        EventKind::GridRecv => wr.grid_recvs += 1,
                        EventKind::LocalHit => wr.local_hits += 1,
                        EventKind::Steal => wr.steals += 1,
                        EventKind::BackoffPark => wr.parks += 1,
                        EventKind::Heartbeat => wr.heartbeats += 1,
                        EventKind::PoolMiss => wr.pool_misses += 1,
                        _ => {}
                    },
                    Mark::Counter => {
                        if ev.kind == EventKind::QueueDepth {
                            let bin = (ev.tick_ns * QUEUE_BINS as u64)
                                .checked_div(wall_ns)
                                .map_or(0, |b| (b as usize).min(QUEUE_BINS - 1));
                            let b = &mut report.queue_depth[bin];
                            b.samples += 1;
                            b.sum += ev.arg as u64;
                            b.max = b.max.max(ev.arg);
                        }
                    }
                }
            }
            // Close spans still open at drain time at the worker's last tick.
            for (kind, stack) in open {
                for (begin, arg) in stack {
                    let dur = last_tick.saturating_sub(begin);
                    close_span(&mut wr, &mut report, &mut hot, kind, arg, dur);
                }
            }
            report.workers.push(wr);
        }

        let mut hottest: Vec<HotElement> = hot.into_values().collect();
        hottest.sort_by(|a, b| {
            b.total_ns.cmp(&a.total_ns).then(b.activations.cmp(&a.activations)).then(a.element.cmp(&b.element))
        });
        hottest.truncate(TOP_K);
        report.hottest = hottest;
        report
    }

    /// Builds a utilization-only report straight from engine metrics —
    /// no trace required, so `psim` can show per-worker imbalance on
    /// every parallel run, not just `--features trace` builds.
    pub fn from_thread_summaries(wall_ns: u64, threads: &[ThreadSummary]) -> RunReport {
        let mut report = RunReport { wall_ns, ..RunReport::default() };
        for (i, t) in threads.iter().enumerate() {
            report.workers.push(WorkerReport {
                worker: i as u32,
                direct_busy_ns: t.busy_ns,
                idle_ns: t.idle_ns,
                evals: t.evals,
                local_hits: t.local_hits,
                grid_sends: t.grid_sends,
                steals: t.steals,
                parks: t.backoff_parks,
                ..WorkerReport::default()
            });
        }
        report
    }

    /// Folds engine-metrics scheduling/idle totals into a trace-derived
    /// report. Metrics are authoritative for idle time and backoff parks
    /// (trace instants sample them only under the `trace` feature's
    /// recording paths); trace-derived span timings stay untouched.
    pub fn with_thread_summaries(mut self, threads: &[ThreadSummary]) -> RunReport {
        for (i, t) in threads.iter().enumerate() {
            match self.workers.iter_mut().find(|w| w.worker == i as u32) {
                Some(w) => {
                    w.idle_ns = t.idle_ns;
                    w.parks = w.parks.max(t.backoff_parks);
                    w.steals = w.steals.max(t.steals);
                    w.local_hits = w.local_hits.max(t.local_hits);
                    w.grid_sends = w.grid_sends.max(t.grid_sends);
                }
                None => {
                    self.workers.push(WorkerReport {
                        worker: i as u32,
                        direct_busy_ns: t.busy_ns,
                        idle_ns: t.idle_ns,
                        evals: t.evals,
                        local_hits: t.local_hits,
                        grid_sends: t.grid_sends,
                        steals: t.steals,
                        parks: t.backoff_parks,
                        ..WorkerReport::default()
                    });
                }
            }
        }
        self
    }

    /// Attaches the in-run telemetry sample series so `Display` and
    /// `to_json` include throughput-over-time.
    pub fn with_timeseries(mut self, timeseries: TimeSeriesReport) -> RunReport {
        self.timeseries = Some(timeseries);
        self
    }

    /// Attaches checkpoint activity (from engine metrics) so `Display`
    /// and `to_json` include write/restore latency.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointReport) -> RunReport {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Attaches the SIMD lane-group width (from engine metrics) so
    /// `Display` and `to_json` report it. 0 means a scalar engine.
    pub fn with_lane_width(mut self, lane_width: u64) -> RunReport {
        self.lane_width = lane_width;
        self
    }

    /// Attaches arena-allocator activity (from engine metrics) so
    /// `Display` and `to_json` include allocation/recycle counters.
    pub fn with_arena(mut self, arena: ArenaReport) -> RunReport {
        self.arena = Some(arena);
        self
    }

    /// Mean utilization over all workers.
    pub fn utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers.iter().map(|w| w.utilization(self.wall_ns)).sum::<f64>()
            / self.workers.len() as f64
    }

    /// Spread between the most- and least-stalled worker's total barrier
    /// wait, in ns. The paper's barrier-imbalance signal: a large spread
    /// means one worker's phase work dominates the step.
    pub fn barrier_imbalance_ns(&self) -> u64 {
        let totals: Vec<u64> = self.workers.iter().map(|w| w.barrier_ns).collect();
        match (totals.iter().max(), totals.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Total time in each phase kind, summed across workers.
    pub fn phase_totals(&self) -> [(EventKind, u64); PHASES.len()] {
        let mut out = [(EventKind::ActivationReplay, 0u64); PHASES.len()];
        for (i, &kind) in PHASES.iter().enumerate() {
            out[i] = (kind, self.workers.iter().map(|w| w.phase_ns[i]).sum());
        }
        out
    }

    /// Structured JSON rendering (machine-readable companion to `Display`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events));
        s.push_str(&format!("  \"dropped_events\": {},\n", self.dropped));
        s.push_str(&format!(
            "  \"mean_utilization\": {},\n",
            fmt_f64_prec(self.utilization(), 4)
        ));
        s.push_str(&format!(
            "  \"barrier_imbalance_ns\": {},\n",
            self.barrier_imbalance_ns()
        ));
        s.push_str(&format!("  \"lane_width\": {},\n", self.lane_width));
        s.push_str("  \"phase_totals_ns\": {");
        let mut first = true;
        for (kind, ns) in self.phase_totals() {
            if ns == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{}\": {ns}", escape(kind.name())));
        }
        s.push_str("},\n");
        s.push_str("  \"barrier\": {");
        s.push_str(&format!(
            "\"waits\": {}, \"total_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}",
            self.barrier.count,
            self.barrier.total_ns,
            self.barrier.max_ns,
            fmt_f64_prec(self.barrier.mean_ns(), 1),
            self.barrier.percentile(0.50),
            self.barrier.percentile(0.95),
            self.barrier.percentile(0.99),
        ));
        s.push_str("},\n");
        s.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"worker\": {}, \"events\": {}, \"dropped\": {}, \"busy_ns\": {}, \
                 \"idle_ns\": {}, \"barrier_ns\": {}, \"utilization\": {}, \"spans\": {}, \
                 \"inserts\": {}, \
                 \"evals\": {}, \"grid_sends\": {}, \"grid_recvs\": {}, \"local_hits\": {}, \
                 \"steals\": {}, \"parks\": {}, \"heartbeats\": {}, \"pool_misses\": {}}}{}\n",
                w.worker,
                w.events,
                w.dropped,
                w.busy_ns(),
                w.idle_ns,
                w.barrier_ns,
                fmt_f64_prec(w.utilization(self.wall_ns), 4),
                w.spans,
                w.inserts,
                w.evals,
                w.grid_sends,
                w.grid_recvs,
                w.local_hits,
                w.steals,
                w.parks,
                w.heartbeats,
                w.pool_misses,
                if i + 1 == self.workers.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"queue_depth\": [\n");
        let bins: Vec<&DepthBin> = self.queue_depth.iter().filter(|b| b.samples > 0).collect();
        for (i, b) in bins.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"start_ns\": {}, \"samples\": {}, \"mean\": {}, \"max\": {}}}{}\n",
                b.start_ns,
                b.samples,
                fmt_f64_prec(b.mean(), 2),
                b.max,
                if i + 1 == bins.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"hottest_elements\": [\n");
        for (i, h) in self.hottest.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"element\": {}, \"activations\": {}, \"total_ns\": {}}}{}\n",
                h.element,
                h.activations,
                h.total_ns,
                if i + 1 == self.hottest.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]");
        if let Some(c) = &self.checkpoint {
            s.push_str(&format!(
                ",\n  \"checkpoint\": {{\"writes\": {}, \"bytes\": {}, \"write_ns\": {}, \
                 \"restore_ns\": {}}}",
                c.writes, c.bytes, c.write_ns, c.restore_ns
            ));
        }
        if let Some(a) = &self.arena {
            s.push_str(&format!(
                ",\n  \"arena\": {{\"enabled\": {}, \"chunk_allocs\": {}, \
                 \"chunk_frees\": {}, \"mailbox_recycled\": {}, \"slab_allocs\": {}, \
                 \"slab_bytes\": {}, \"recycled\": {}, \"fresh\": {}, \"reclaimed\": {}, \
                 \"quarantine_peak\": {}}}",
                a.enabled,
                a.chunk_allocs,
                a.chunk_frees,
                a.mailbox_recycled,
                a.slab_allocs,
                a.slab_bytes,
                a.recycled,
                a.fresh,
                a.reclaimed,
                a.quarantine_peak
            ));
        }
        if let Some(ts) = &self.timeseries {
            s.push_str(&format!(
                ",\n  \"timeseries\": {{\"sample_every_ns\": {}, \"points\": [\n",
                ts.sample_every_ns
            ));
            for (i, p) in ts.points.iter().enumerate() {
                s.push_str(&format!(
                    "    {{\"t_ns\": {}, \"events\": {}, \"evaluations\": {}, \
                     \"sim_time\": {}, \"queue_depth\": {}, \"busy_ns\": {}, \
                     \"idle_ns\": {}}}{}\n",
                    p.t_ns,
                    p.events,
                    p.evaluations,
                    p.sim_time,
                    p.queue_depth,
                    p.busy_ns,
                    p.idle_ns,
                    if i + 1 == ts.points.len() { "" } else { "," }
                ));
            }
            s.push_str("  ]}");
        }
        s.push_str("\n}\n");
        s
    }
}

fn close_span(
    wr: &mut WorkerReport,
    report: &mut RunReport,
    hot: &mut HashMap<u32, HotElement>,
    kind: EventKind,
    arg: u32,
    dur_ns: u64,
) {
    wr.spans += 1;
    if kind == EventKind::BarrierWait {
        wr.barrier_ns += dur_ns;
        wr.barrier_waits += 1;
        report.barrier.record(dur_ns);
        return;
    }
    if let Some(i) = PHASES.iter().position(|&k| k == kind) {
        wr.phase_ns[i] += dur_ns;
    }
    if kind == EventKind::ActivationReplay {
        let h = hot.entry(arg).or_default();
        h.element = arg;
        h.activations += 1;
        h.total_ns += dur_ns;
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run report: wall {:.3} ms, {} workers, {} events ({} dropped){}",
            ms(self.wall_ns),
            self.workers.len(),
            self.total_events,
            self.dropped,
            if self.lane_width > 0 {
                format!(", {}-bit lanes", self.lane_width)
            } else {
                String::new()
            }
        )?;
        writeln!(f, "\nper-phase utilization:")?;
        writeln!(
            f,
            "  {:<8} {:>7} {:>10} {:>10} {:>11} {:>7} {:>8} {:>8} {:>7}",
            "worker", "util%", "busy(ms)", "idle(ms)", "barrier(ms)", "spans", "inserts",
            "evals", "parks"
        )?;
        for w in &self.workers {
            writeln!(
                f,
                "  {:<8} {:>7.1} {:>10.3} {:>10.3} {:>11.3} {:>7} {:>8} {:>8} {:>7}",
                w.worker,
                100.0 * w.utilization(self.wall_ns),
                ms(w.busy_ns()),
                ms(w.idle_ns),
                ms(w.barrier_ns),
                w.spans,
                w.inserts,
                w.evals,
                w.parks
            )?;
        }
        let totals = self.phase_totals();
        if totals.iter().any(|&(_, ns)| ns > 0) {
            write!(f, "  phases:")?;
            for (kind, ns) in totals {
                if ns > 0 {
                    write!(f, " {}={:.3}ms", kind.name(), ms(ns))?;
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "  mean utilization {:.1}%",
            100.0 * self.utilization()
        )?;
        if self.barrier.count > 0 {
            writeln!(
                f,
                "\nbarrier waits: {} waits, mean {:.1} us, p50 {:.1} us, p95 {:.1} us, \
                 p99 {:.1} us, max {:.1} us",
                self.barrier.count,
                self.barrier.mean_ns() / 1e3,
                self.barrier.percentile(0.50) as f64 / 1e3,
                self.barrier.percentile(0.95) as f64 / 1e3,
                self.barrier.percentile(0.99) as f64 / 1e3,
                self.barrier.max_ns as f64 / 1e3,
            )?;
            writeln!(
                f,
                "  per-worker imbalance (max-min total wait): {:.3} ms ({:.1}% of wall)",
                ms(self.barrier_imbalance_ns()),
                if self.wall_ns == 0 {
                    0.0
                } else {
                    100.0 * self.barrier_imbalance_ns() as f64 / self.wall_ns as f64
                }
            )?;
        }
        let sched: (u64, u64, u64, u64, u64) = self.workers.iter().fold(
            (0, 0, 0, 0, 0),
            |acc, w| {
                (
                    acc.0 + w.local_hits,
                    acc.1 + w.grid_sends,
                    acc.2 + w.grid_recvs,
                    acc.3 + w.steals,
                    acc.4 + w.parks,
                )
            },
        );
        if sched != (0, 0, 0, 0, 0) {
            writeln!(
                f,
                "\nscheduling: {} local hits, {} grid sends, {} grid recvs, {} steals, {} parks",
                sched.0, sched.1, sched.2, sched.3, sched.4
            )?;
        }
        let bins: Vec<&DepthBin> = self.queue_depth.iter().filter(|b| b.samples > 0).collect();
        if !bins.is_empty() {
            writeln!(f, "\nqueue occupancy over time (mean depth per slice):")?;
            write!(f, "  ")?;
            for b in &bins {
                write!(f, "{:.0} ", b.mean())?;
            }
            writeln!(f)?;
            let max = bins.iter().map(|b| b.max).max().unwrap_or(0);
            writeln!(f, "  peak depth {max}")?;
        }
        if !self.hottest.is_empty() {
            writeln!(f, "\nhottest elements:")?;
            for h in &self.hottest {
                writeln!(
                    f,
                    "  element {:>6}: {:>8} activations, {:.3} ms",
                    h.element,
                    h.activations,
                    ms(h.total_ns)
                )?;
            }
        }
        if let Some(c) = &self.checkpoint {
            writeln!(
                f,
                "\ncheckpoints: {} written ({} bytes), write {:.3} ms \
                 ({:.3} ms/snapshot), restore {:.3} ms",
                c.writes,
                c.bytes,
                ms(c.write_ns),
                if c.writes == 0 { 0.0 } else { ms(c.write_ns) / c.writes as f64 },
                ms(c.restore_ns)
            )?;
        }
        if let Some(a) = &self.arena {
            if a.enabled {
                writeln!(
                    f,
                    "\narena: {} chunk allocs / {} frees, {} slab spans ({} KiB), \
                     {} recycled / {} fresh, {} reclaimed, quarantine peak {}, \
                     {} mailboxes recycled",
                    a.chunk_allocs,
                    a.chunk_frees,
                    a.slab_allocs,
                    a.slab_bytes / 1024,
                    a.recycled,
                    a.fresh,
                    a.reclaimed,
                    a.quarantine_peak,
                    a.mailbox_recycled
                )?;
            } else {
                writeln!(
                    f,
                    "\narena: off ({} chunk mallocs, {} mailboxes recycled)",
                    a.chunk_allocs, a.mailbox_recycled
                )?;
            }
        }
        if let Some(ts) = &self.timeseries {
            if !ts.points.is_empty() {
                writeln!(
                    f,
                    "\ntelemetry time series: {} samples every {:.1} ms",
                    ts.points.len(),
                    ms(ts.sample_every_ns)
                )?;
                let rates = ts.rates();
                if !rates.is_empty() {
                    write!(f, "  events/s:")?;
                    for r in &rates {
                        write!(f, " {:.0}", r)?;
                    }
                    writeln!(f)?;
                }
                if let Some(last) = ts.points.last() {
                    writeln!(
                        f,
                        "  final: {} events, {} evaluations, sim time {}",
                        last.events, last.evaluations, last.sim_time
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::lint;
    use crate::{TraceEvent, WorkerTrace};

    fn ev(tick_ns: u64, kind: EventKind, mark: Mark, arg: u32) -> TraceEvent {
        TraceEvent { tick_ns, arg, kind, mark }
    }

    fn synthetic_trace() -> Trace {
        Trace {
            workers: vec![
                WorkerTrace {
                    worker: 0,
                    events: vec![
                        ev(0, EventKind::ActivationReplay, Mark::Begin, 5),
                        ev(100, EventKind::EventInsert, Mark::Instant, 1),
                        ev(1_000, EventKind::ActivationReplay, Mark::End, 0),
                        ev(1_100, EventKind::QueueDepth, Mark::Counter, 4),
                        ev(1_200, EventKind::BarrierWait, Mark::Begin, 0),
                        ev(2_200, EventKind::BarrierWait, Mark::End, 0),
                        ev(2_300, EventKind::LocalHit, Mark::Instant, 5),
                        ev(2_400, EventKind::ActivationReplay, Mark::Begin, 5),
                        ev(4_000, EventKind::ActivationReplay, Mark::End, 0),
                    ],
                    dropped: 0,
                },
                WorkerTrace {
                    worker: 1,
                    events: vec![
                        ev(0, EventKind::BarrierWait, Mark::Begin, 0),
                        ev(3_000, EventKind::BarrierWait, Mark::End, 0),
                        ev(3_100, EventKind::ActivationReplay, Mark::Begin, 9),
                        ev(4_000, EventKind::ActivationReplay, Mark::End, 0),
                    ],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn report_computes_utilization_and_barriers() {
        let r = RunReport::from_trace(&synthetic_trace());
        assert_eq!(r.wall_ns, 4_000);
        assert_eq!(r.workers.len(), 2);
        // Worker 0: two activation spans of 1000 + 1600 ns.
        assert_eq!(r.workers[0].busy_ns(), 2_600);
        assert_eq!(r.workers[0].barrier_ns, 1_000);
        assert_eq!(r.workers[0].inserts, 1);
        assert_eq!(r.workers[0].local_hits, 1);
        // Worker 1: one 900 ns span, 3000 ns barrier.
        assert_eq!(r.workers[1].busy_ns(), 900);
        assert_eq!(r.workers[1].barrier_ns, 3_000);
        assert!((r.workers[0].utilization(r.wall_ns) - 0.65).abs() < 1e-9);
        assert_eq!(r.barrier.count, 2);
        assert_eq!(r.barrier_imbalance_ns(), 2_000);
        // Hottest: element 5 (2600 ns over 2 activations) above element 9.
        assert_eq!(r.hottest[0].element, 5);
        assert_eq!(r.hottest[0].activations, 2);
        assert_eq!(r.hottest[0].total_ns, 2_600);
        assert_eq!(r.hottest[1].element, 9);
        // Queue depth: one sample of 4.
        let sampled: Vec<&DepthBin> =
            r.queue_depth.iter().filter(|b| b.samples > 0).collect();
        assert_eq!(sampled.len(), 1);
        assert_eq!(sampled[0].max, 4);
    }

    #[test]
    fn report_json_and_text_render() {
        let r = RunReport::from_trace(&synthetic_trace());
        let j = r.to_json();
        lint(&j).expect("report JSON must be well-formed");
        assert!(j.contains("\"mean_utilization\""));
        assert!(j.contains("\"barrier_imbalance_ns\": 2000"));
        assert!(!j.contains("NaN"));
        let text = r.to_string();
        assert!(text.contains("per-phase utilization"));
        assert!(text.contains("barrier waits"));
        assert!(text.contains("hottest elements"));
    }

    #[test]
    fn arena_block_renders_in_json_and_text() {
        let r = RunReport::from_trace(&synthetic_trace()).with_arena(ArenaReport {
            enabled: true,
            chunk_allocs: 120,
            chunk_frees: 80,
            mailbox_recycled: 7,
            slab_allocs: 3,
            slab_bytes: 196_608,
            recycled: 60,
            fresh: 60,
            reclaimed: 55,
            quarantine_peak: 9,
        });
        let j = r.to_json();
        lint(&j).expect("arena JSON must be well-formed");
        assert!(j.contains("\"arena\": {\"enabled\": true, \"chunk_allocs\": 120"));
        assert!(j.contains("\"quarantine_peak\": 9"));
        let text = r.to_string();
        assert!(text.contains("arena: 120 chunk allocs"));
        // Disabled runs report the global-allocator chunk traffic.
        let off = RunReport::from_trace(&synthetic_trace()).with_arena(ArenaReport {
            enabled: false,
            chunk_allocs: 44,
            ..ArenaReport::default()
        });
        assert!(off.to_string().contains("arena: off (44 chunk mallocs"));
        lint(&off.to_json()).unwrap();
    }

    #[test]
    fn empty_trace_yields_sane_report() {
        let r = RunReport::from_trace(&Trace::default());
        assert_eq!(r.wall_ns, 0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.barrier_imbalance_ns(), 0);
        lint(&r.to_json()).unwrap();
        let _ = r.to_string();
    }

    #[test]
    fn unclosed_span_closed_at_last_tick() {
        let t = Trace {
            workers: vec![WorkerTrace {
                worker: 0,
                events: vec![
                    ev(0, EventKind::PhaseEval, Mark::Begin, 0),
                    ev(500, EventKind::Eval, Mark::Instant, 3),
                ],
                dropped: 0,
            }],
        };
        let r = RunReport::from_trace(&t);
        assert_eq!(r.workers[0].busy_ns(), 500);
        assert_eq!(r.workers[0].evals, 1);
        // Eval instants feed the hottest table when no replay spans exist.
        assert_eq!(r.hottest[0].element, 3);
    }

    #[test]
    fn duration_stats_percentiles() {
        let mut d = DurationStats::default();
        assert_eq!(d.percentile(0.5), 0);
        for _ in 0..90 {
            d.record(200); // <=250 bucket
        }
        for _ in 0..9 {
            d.record(3_000); // <=4000 bucket
        }
        d.record(50_000_000); // overflow
        assert_eq!(d.percentile(0.50), 250);
        assert_eq!(d.percentile(0.95), 4_000);
        assert_eq!(d.percentile(1.0), 50_000_000);
        assert_eq!(d.max_ns, 50_000_000);
    }
}
