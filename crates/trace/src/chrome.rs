//! Chrome `trace_events` JSON exporter.
//!
//! Produces the [Trace Event Format] consumed by `chrome://tracing` and
//! `ui.perfetto.dev`: one process, one track (`tid`) per worker, span
//! begin/end pairs (`ph: "B"/"E"`), thread-scoped instants (`ph: "i"`),
//! and counter tracks (`ph: "C"`). Timestamps are microseconds relative to
//! the run epoch.
//!
//! Ring overwrite can orphan span halves (an `E` whose `B` was dropped, or
//! a `B` whose `E` never made it before drain). Orphaned ends are skipped
//! and unclosed begins are closed at the worker's last tick, so the emitted
//! stream is always properly nested and loads cleanly.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::escape;
use crate::{EventKind, Mark, Trace, TraceEvent, WorkerTrace};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

impl Trace {
    /// Render the whole trace as a Chrome `trace_events` JSON document.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.num_events() * 96);
        out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        let mut first = true;
        for wt in &self.workers {
            emit_worker(&mut out, wt, &mut first);
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Write [`Trace::to_chrome_json`] to `path`.
    pub fn write_chrome_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_chrome_json().as_bytes())?;
        f.flush()
    }
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(body);
}

fn ts_us(tick_ns: u64) -> String {
    // Microseconds with nanosecond precision preserved.
    format!("{}.{:03}", tick_ns / 1_000, tick_ns % 1_000)
}

fn emit_worker(out: &mut String, wt: &WorkerTrace, first: &mut bool) {
    let tid = wt.worker;
    push_event(
        out,
        first,
        &format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&format!("worker-{tid}"))
        ),
    );

    // Pre-scan: per-kind balance so orphaned ends are skipped below. An end
    // is orphaned when, at that point in the stream, no begin of the same
    // kind is open.
    let mut open: HashMap<EventKind, u32> = HashMap::new();
    let last_tick = wt.events.last().map(|e| e.tick_ns).unwrap_or(0);

    for ev in &wt.events {
        match ev.mark {
            Mark::Begin => {
                *open.entry(ev.kind).or_insert(0) += 1;
                push_event(out, first, &span(ev, "B", tid, true));
            }
            Mark::End => {
                let n = open.entry(ev.kind).or_insert(0);
                if *n == 0 {
                    continue; // matching begin was overwritten by the ring
                }
                *n -= 1;
                push_event(out, first, &span(ev, "E", tid, false));
            }
            Mark::Instant => {
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"name\":\"{}\",\"cat\":\"parsim\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                        ev.kind.name(),
                        ts_us(ev.tick_ns),
                        ev.arg
                    ),
                );
            }
            Mark::Counter => {
                push_event(
                    out,
                    first,
                    &format!(
                        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
                         \"args\":{{\"value\":{}}}}}",
                        ev.kind.name(),
                        ts_us(ev.tick_ns),
                        ev.arg
                    ),
                );
            }
        }
    }

    // Close any spans still open at drain time so B/E stay balanced.
    // Deepest-first order doesn't matter for correctness here because the
    // closer is emitted at a single tick; emit in arbitrary kind order.
    for (kind, n) in open {
        for _ in 0..n {
            push_event(
                out,
                first,
                &format!(
                    "{{\"name\":\"{}\",\"cat\":\"parsim\",\"ph\":\"E\",\"ts\":{},\
                     \"pid\":1,\"tid\":{tid}}}",
                    kind.name(),
                    ts_us(last_tick)
                ),
            );
        }
    }
}

fn span(ev: &TraceEvent, ph: &str, tid: u32, with_args: bool) -> String {
    if with_args {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"parsim\",\"ph\":\"{ph}\",\"ts\":{},\
             \"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
            ev.kind.name(),
            ts_us(ev.tick_ns),
            ev.arg
        )
    } else {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"parsim\",\"ph\":\"{ph}\",\"ts\":{},\
             \"pid\":1,\"tid\":{tid}}}",
            ev.kind.name(),
            ts_us(ev.tick_ns)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::lint;

    fn ev(tick_ns: u64, kind: EventKind, mark: Mark, arg: u32) -> TraceEvent {
        TraceEvent { tick_ns, arg, kind, mark }
    }

    fn sample_trace() -> Trace {
        Trace {
            workers: vec![
                WorkerTrace {
                    worker: 0,
                    events: vec![
                        ev(100, EventKind::ActivationReplay, Mark::Begin, 4),
                        ev(150, EventKind::EventInsert, Mark::Instant, 9),
                        ev(300, EventKind::ActivationReplay, Mark::End, 0),
                        ev(320, EventKind::QueueDepth, Mark::Counter, 3),
                    ],
                    dropped: 0,
                },
                WorkerTrace {
                    worker: 1,
                    events: vec![
                        ev(90, EventKind::BarrierWait, Mark::Begin, 0),
                        ev(400, EventKind::BarrierWait, Mark::End, 0),
                    ],
                    dropped: 2,
                },
            ],
        }
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let doc = sample_trace().to_chrome_json();
        lint(&doc).expect("chrome export must be valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("thread_name"));
        assert!(doc.contains("worker-0"));
        assert!(doc.contains("worker-1"));
        assert!(doc.contains("activation_replay"));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"ts\":0.100")); // 100ns = 0.1us
    }

    #[test]
    fn orphaned_ends_skipped_and_open_begins_closed() {
        let t = Trace {
            workers: vec![WorkerTrace {
                worker: 0,
                events: vec![
                    // End whose begin was overwritten by the ring.
                    ev(10, EventKind::TimeStep, Mark::End, 0),
                    // Begin that never closed before drain.
                    ev(20, EventKind::PhaseEval, Mark::Begin, 0),
                    ev(30, EventKind::Eval, Mark::Instant, 1),
                ],
                dropped: 5,
            }],
        };
        let doc = t.to_chrome_json();
        lint(&doc).unwrap();
        let begins = doc.matches("\"ph\":\"B\"").count();
        let ends = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1, "orphan end dropped, open begin auto-closed");
        assert!(!doc.contains("time_step"), "orphaned end must not be emitted");
    }

    #[test]
    fn empty_trace_still_valid() {
        let doc = Trace::default().to_chrome_json();
        lint(&doc).unwrap();
    }

    #[test]
    fn write_chrome_json_roundtrips_to_disk() {
        let path = std::env::temp_dir().join("parsim_trace_chrome_test.json");
        sample_trace().write_chrome_json(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        lint(&body).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
