//! Property: concurrent single-writer shard increments are never lost or
//! double-counted, no matter how a sampler interleaves snapshots.
//!
//! The registry's shards use relaxed load+store pairs instead of
//! lock-prefixed RMW — sound only under the single-writer-per-slot
//! discipline the engines follow. This test is the discipline's witness:
//! each worker thread hammers *its own* shard while a reader thread
//! snapshots the whole registry as fast as it can. At join, the
//! aggregate must equal the exact intended totals (nothing lost to a
//! racing read), and the stream of snapshots must be monotone per
//! counter (a snapshot can tear *across* shards, but each counter can
//! only ever move forward).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parsim_telemetry::{Counter, Gauge, Registry};
use proptest::prelude::*;

/// splitmix64 stream for deriving per-thread increment schedules.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The counters each writer exercises — a mix of `inc`, `add`, and
/// histogram records, like a real engine publish cadence.
const WRITTEN: [Counter; 4] = [
    Counter::EventsProcessed,
    Counter::Evaluations,
    Counter::LocalHits,
    Counter::BusyNs,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_increment_lost_under_concurrent_snapshots(
        seed in any::<u64>(),
        workers in 1usize..5,
        rounds in 1u64..400,
    ) {
        let registry = Arc::new(Registry::new(workers));
        let stop = Arc::new(AtomicBool::new(false));

        // Reader: snapshot as fast as possible, recording every result.
        let reader = {
            let registry = registry.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut snaps = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    snaps.push(registry.snapshot());
                }
                snaps.push(registry.snapshot());
                snaps
            })
        };

        // Writers: each owns one shard; totals are computed up front so
        // the assertion is against intent, not against re-derived state.
        let mut want = [0u64; WRITTEN.len()];
        let mut want_hist_count = 0u64;
        let mut want_hist_sum = 0u64;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mut s = seed ^ (w as u64).wrapping_mul(0xa076_1d64_78bd_642f);
                let mut plan = Vec::with_capacity(rounds as usize);
                for _ in 0..rounds {
                    let amounts: Vec<u64> =
                        WRITTEN.iter().map(|_| mix(&mut s) % 50).collect();
                    for (i, a) in amounts.iter().enumerate() {
                        want[i] += a;
                    }
                    let step_events = mix(&mut s) % 300;
                    want_hist_count += 1;
                    want_hist_sum += step_events;
                    plan.push((amounts, step_events));
                }
                let shard = registry.worker(w);
                std::thread::spawn(move || {
                    for (amounts, step_events) in plan {
                        for (c, a) in WRITTEN.iter().zip(&amounts) {
                            shard.add(*c, *a);
                        }
                        shard.inc(Counter::TimeSteps);
                        shard.record_step_events(step_events);
                        shard.set_gauge(Gauge::QueueDepth, step_events);
                    }
                })
            })
            .collect();

        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let snaps = reader.join().unwrap();

        // Exactness: the final snapshot equals the intended totals.
        let finals = snaps.last().unwrap();
        for (c, w) in WRITTEN.iter().zip(&want) {
            prop_assert_eq!(finals.counter(*c), *w, "lost/duplicated {:?}", c);
        }
        prop_assert_eq!(finals.counter(Counter::TimeSteps), workers as u64 * rounds);
        prop_assert_eq!(finals.hist.count, want_hist_count);
        prop_assert_eq!(finals.hist.sum, want_hist_sum);
        let bucket_total: u64 = finals.hist.buckets.iter().sum();
        prop_assert_eq!(bucket_total, want_hist_count, "hist buckets vs count");

        // Monotonicity: counters and the histogram only move forward
        // between consecutive snapshots, however reads interleave.
        for pair in snaps.windows(2) {
            for c in Counter::ALL {
                prop_assert!(
                    pair[0].counter(c) <= pair[1].counter(c),
                    "{:?} regressed between snapshots", c
                );
            }
            prop_assert!(pair[0].hist.count <= pair[1].hist.count);
            prop_assert!(pair[0].hist.sum <= pair[1].hist.sum);
        }
    }
}
