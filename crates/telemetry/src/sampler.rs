//! The in-run sampler: a flight recorder of timestamped registry
//! snapshots, driven by the watchdog monitor thread.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::registry::{Counter, Registry, Snapshot};

/// Default bounded-ring capacity: at the default 250 ms cadence this holds
/// the most recent ~17 minutes of run history in ~1 MiB.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One timestamped registry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Nanoseconds since the registry's run epoch.
    pub t_ns: u64,
    pub snap: Snapshot,
}

/// Bounded drop-oldest ring of [`Sample`]s. The monitor thread pushes;
/// any thread may read (live consumers peek, the run driver drains once
/// at the end).
#[derive(Debug)]
pub struct SampleRing {
    capacity: usize,
    inner: Mutex<VecDeque<Sample>>,
}

impl SampleRing {
    pub fn new(capacity: usize) -> SampleRing {
        let capacity = capacity.max(2);
        SampleRing {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a sample, dropping the oldest when full.
    pub fn push(&self, sample: Sample) {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(sample);
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent sample, if any (for live consumers).
    pub fn latest(&self) -> Option<Sample> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .back()
            .cloned()
    }

    /// Removes and returns every sample, oldest first.
    pub fn drain(&self) -> Vec<Sample> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect()
    }
}

/// Periodic snapshot driver. Owned by the monitor (watchdog) thread,
/// which calls [`Sampler::tick`] on every wakeup; the sampler decides
/// whether the period has elapsed.
#[derive(Debug)]
pub struct Sampler {
    registry: Arc<Registry>,
    ring: Arc<SampleRing>,
    every: Duration,
    last: Option<Instant>,
}

impl Sampler {
    pub fn new(registry: Arc<Registry>, ring: Arc<SampleRing>, every: Duration) -> Sampler {
        Sampler {
            registry,
            ring,
            every: every.max(Duration::from_micros(100)),
            last: None,
        }
    }

    /// The configured sampling period (lower-bounded at 100 µs).
    pub fn period(&self) -> Duration {
        self.every
    }

    /// Takes a sample if at least one period elapsed since the last one.
    /// Returns true when a sample was recorded. The first call always
    /// samples, anchoring the series near the start of the run. Every
    /// call counts as one monitor wakeup (the monitor thread is this
    /// sampler's single caller, and `MonitorWakeups` lives on the driver
    /// shard in a slot nothing else writes).
    pub fn tick(&mut self) -> bool {
        self.registry.driver().inc(Counter::MonitorWakeups);
        let now = Instant::now();
        if let Some(last) = self.last {
            if now.duration_since(last) < self.every {
                return false;
            }
        }
        self.last = Some(now);
        self.ring.push(Sample {
            t_ns: self.registry.uptime_ns(),
            snap: self.registry.snapshot(),
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Counter;

    #[test]
    fn ring_drops_oldest_when_full() {
        let ring = SampleRing::new(3);
        for i in 0..5u64 {
            ring.push(Sample { t_ns: i, snap: Snapshot::default() });
        }
        assert_eq!(ring.len(), 3);
        let drained = ring.drain();
        let ts: Vec<u64> = drained.iter().map(|s| s.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest samples dropped first");
        assert!(ring.is_empty());
    }

    #[test]
    fn latest_peeks_without_draining() {
        let ring = SampleRing::new(4);
        ring.push(Sample { t_ns: 1, snap: Snapshot::default() });
        ring.push(Sample { t_ns: 2, snap: Snapshot::default() });
        assert_eq!(ring.latest().map(|s| s.t_ns), Some(2));
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn sampler_first_tick_always_samples_then_respects_period() {
        let reg = Arc::new(Registry::new(1));
        let ring = Arc::new(SampleRing::new(8));
        let mut s = Sampler::new(reg.clone(), ring.clone(), Duration::from_secs(3600));
        reg.worker(0).add(Counter::EventsProcessed, 5);
        assert!(s.tick(), "first tick samples immediately");
        assert!(!s.tick(), "period has not elapsed");
        assert_eq!(ring.len(), 1);
        assert_eq!(
            ring.latest().unwrap().snap.counter(Counter::EventsProcessed),
            5
        );
    }

    #[test]
    fn sampler_samples_again_after_period() {
        let reg = Arc::new(Registry::new(1));
        let ring = Arc::new(SampleRing::new(8));
        let mut s = Sampler::new(reg, ring.clone(), Duration::from_micros(100));
        assert!(s.tick());
        std::thread::sleep(Duration::from_millis(2));
        assert!(s.tick());
        assert_eq!(ring.len(), 2);
        let drained = ring.drain();
        assert!(drained[0].t_ns <= drained[1].t_ns, "timestamps monotone");
    }
}
