//! The sharded metrics registry: fixed counter/gauge/histogram sets,
//! one cache-padded single-writer shard per worker, snapshot-on-read
//! aggregation.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic counters. One slot per variant in every [`Shard`]; the
/// numbering is the array index, so keep `ALL` in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Node-change events applied.
    EventsProcessed,
    /// Element evaluations performed.
    Evaluations,
    /// Element activations (schedulings).
    Activations,
    /// Active time steps (event-driven) or executed steps (compiled).
    TimeSteps,
    /// Activations served from a worker's own local deque.
    LocalHits,
    /// Element ids sent across the SPSC grid.
    GridSends,
    /// Grid slots used to carry those ids.
    GridBatches,
    /// Activations executed by a non-owner worker.
    Steals,
    /// Idle snoozes that reached the bounded-park backoff stage.
    BackoffParks,
    /// Synchronous-engine mailbox buffers freshly allocated (pool empty).
    PoolMisses,
    /// Synchronous-engine mailbox buffers served from the recycling pool.
    MailboxRecycled,
    /// Event-list chunks reclaimed by the chaotic engine's concurrent GC.
    GcChunksFreed,
    /// Compiled-mode level blocks skipped by activity gating.
    BlocksSkipped,
    /// Element evaluations eliminated by activity gating.
    EvalsSkipped,
    /// Behavior-list chunks allocated.
    ArenaChunkAllocs,
    /// Behavior-list chunks retired/freed.
    ArenaChunkFrees,
    /// Slab spans obtained from the global allocator.
    ArenaSlabAllocs,
    /// Bytes in those slab spans.
    ArenaSlabBytes,
    /// Arena allocations served by recycling a retired block.
    ArenaRecycled,
    /// Arena allocations carved fresh from a slab span.
    ArenaFresh,
    /// Retired arena blocks that cleared their grace period.
    ArenaReclaimed,
    /// Snapshots committed to disk by the checkpoint store.
    CheckpointWrites,
    /// Total bytes across committed snapshot files.
    CheckpointBytes,
    /// Wall nanoseconds spent serializing/fsyncing/renaming snapshots.
    CheckpointWriteNs,
    /// Wall nanoseconds spent doing useful work (per-thread busy time).
    BusyNs,
    /// Wall nanoseconds spent waiting: barriers, empty queues.
    IdleNs,
    /// Watchdog monitor wakeups observed (the sampler's own heartbeat).
    MonitorWakeups,
}

impl Counter {
    pub const ALL: [Counter; 27] = [
        Counter::EventsProcessed,
        Counter::Evaluations,
        Counter::Activations,
        Counter::TimeSteps,
        Counter::LocalHits,
        Counter::GridSends,
        Counter::GridBatches,
        Counter::Steals,
        Counter::BackoffParks,
        Counter::PoolMisses,
        Counter::MailboxRecycled,
        Counter::GcChunksFreed,
        Counter::BlocksSkipped,
        Counter::EvalsSkipped,
        Counter::ArenaChunkAllocs,
        Counter::ArenaChunkFrees,
        Counter::ArenaSlabAllocs,
        Counter::ArenaSlabBytes,
        Counter::ArenaRecycled,
        Counter::ArenaFresh,
        Counter::ArenaReclaimed,
        Counter::CheckpointWrites,
        Counter::CheckpointBytes,
        Counter::CheckpointWriteNs,
        Counter::BusyNs,
        Counter::IdleNs,
        Counter::MonitorWakeups,
    ];
    pub const COUNT: usize = Counter::ALL.len();

    /// Prometheus metric name (`_total` suffix per the counter convention;
    /// everything lives under the `parsim_` namespace).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsProcessed => "parsim_events_total",
            Counter::Evaluations => "parsim_evaluations_total",
            Counter::Activations => "parsim_activations_total",
            Counter::TimeSteps => "parsim_time_steps_total",
            Counter::LocalHits => "parsim_sched_local_hits_total",
            Counter::GridSends => "parsim_sched_grid_sends_total",
            Counter::GridBatches => "parsim_sched_grid_batches_total",
            Counter::Steals => "parsim_sched_steals_total",
            Counter::BackoffParks => "parsim_sched_backoff_parks_total",
            Counter::PoolMisses => "parsim_mailbox_pool_misses_total",
            Counter::MailboxRecycled => "parsim_mailbox_recycled_total",
            Counter::GcChunksFreed => "parsim_gc_chunks_freed_total",
            Counter::BlocksSkipped => "parsim_gate_blocks_skipped_total",
            Counter::EvalsSkipped => "parsim_gate_evals_skipped_total",
            Counter::ArenaChunkAllocs => "parsim_arena_chunk_allocs_total",
            Counter::ArenaChunkFrees => "parsim_arena_chunk_frees_total",
            Counter::ArenaSlabAllocs => "parsim_arena_slab_allocs_total",
            Counter::ArenaSlabBytes => "parsim_arena_slab_bytes_total",
            Counter::ArenaRecycled => "parsim_arena_recycled_total",
            Counter::ArenaFresh => "parsim_arena_fresh_total",
            Counter::ArenaReclaimed => "parsim_arena_reclaimed_total",
            Counter::CheckpointWrites => "parsim_checkpoint_writes_total",
            Counter::CheckpointBytes => "parsim_checkpoint_bytes_total",
            Counter::CheckpointWriteNs => "parsim_checkpoint_write_ns_total",
            Counter::BusyNs => "parsim_busy_ns_total",
            Counter::IdleNs => "parsim_idle_ns_total",
            Counter::MonitorWakeups => "parsim_monitor_wakeups_total",
        }
    }

    /// One-line HELP text for the Prometheus exposition.
    pub fn help(self) -> &'static str {
        match self {
            Counter::EventsProcessed => "Node-change events applied",
            Counter::Evaluations => "Element evaluations performed",
            Counter::Activations => "Element activations (schedulings)",
            Counter::TimeSteps => "Active (event-driven) or executed (compiled) time steps",
            Counter::LocalHits => "Activations served from the worker-local deque",
            Counter::GridSends => "Element ids sent across the SPSC grid",
            Counter::GridBatches => "Grid slots used to carry sent ids",
            Counter::Steals => "Activations executed by a non-owner worker",
            Counter::BackoffParks => "Idle snoozes that reached the bounded-park backoff stage",
            Counter::PoolMisses => "Mailbox buffers freshly allocated because the pool was empty",
            Counter::MailboxRecycled => "Mailbox buffers served from the recycling pool",
            Counter::GcChunksFreed => "Event-list chunks reclaimed by the concurrent GC",
            Counter::BlocksSkipped => "Compiled-mode level blocks skipped by activity gating",
            Counter::EvalsSkipped => "Evaluations eliminated by activity gating",
            Counter::ArenaChunkAllocs => "Behavior-list chunks allocated",
            Counter::ArenaChunkFrees => "Behavior-list chunks retired or freed",
            Counter::ArenaSlabAllocs => "Slab spans obtained from the global allocator",
            Counter::ArenaSlabBytes => "Bytes in global-allocator slab spans",
            Counter::ArenaRecycled => "Arena allocations served by recycling a retired block",
            Counter::ArenaFresh => "Arena allocations carved fresh from a slab span",
            Counter::ArenaReclaimed => "Retired arena blocks that cleared their grace period",
            Counter::CheckpointWrites => "Snapshots committed to disk",
            Counter::CheckpointBytes => "Bytes across committed snapshot files",
            Counter::CheckpointWriteNs => "Nanoseconds spent committing snapshots",
            Counter::BusyNs => "Nanoseconds of useful per-thread work",
            Counter::IdleNs => "Nanoseconds waiting at barriers or on empty queues",
            Counter::MonitorWakeups => "Watchdog monitor-thread wakeups",
        }
    }
}

/// Last-value metrics. Each shard stores its own value; aggregation
/// across shards follows [`Gauge::agg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Current simulated time (ticks) reached by the publisher.
    SimTime,
    /// Scheduling-queue depth (local deque / pending activations).
    QueueDepth,
    /// Live slab spans held by the arena (global process gauge).
    ArenaLiveBlocks,
    /// Quarantine high-water mark (retired-but-unreclaimable blocks).
    ArenaQuarantinePeak,
    /// Simulated time of the most recent committed checkpoint.
    LastCheckpointTime,
    /// SIMD stimulus-lane width of the compiled batch kernel.
    LaneWidth,
    /// Worker threads participating in the run.
    Workers,
}

/// How a gauge aggregates across shards in a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeAgg {
    /// Depths and occupancies: the total is the sum of the parts.
    Sum,
    /// Watermarks and frontiers: the total is the furthest part.
    Max,
}

impl Gauge {
    pub const ALL: [Gauge; 7] = [
        Gauge::SimTime,
        Gauge::QueueDepth,
        Gauge::ArenaLiveBlocks,
        Gauge::ArenaQuarantinePeak,
        Gauge::LastCheckpointTime,
        Gauge::LaneWidth,
        Gauge::Workers,
    ];
    pub const COUNT: usize = Gauge::ALL.len();

    pub fn name(self) -> &'static str {
        match self {
            Gauge::SimTime => "parsim_sim_time",
            Gauge::QueueDepth => "parsim_queue_depth",
            Gauge::ArenaLiveBlocks => "parsim_arena_live_slab_blocks",
            Gauge::ArenaQuarantinePeak => "parsim_arena_quarantine_peak",
            Gauge::LastCheckpointTime => "parsim_last_checkpoint_time",
            Gauge::LaneWidth => "parsim_lane_width",
            Gauge::Workers => "parsim_workers",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            Gauge::SimTime => "Current simulated time in ticks",
            Gauge::QueueDepth => "Scheduling-queue depth (pending activations)",
            Gauge::ArenaLiveBlocks => "Live slab spans held by the arena",
            Gauge::ArenaQuarantinePeak => "Retired-but-unreclaimable block high-water mark",
            Gauge::LastCheckpointTime => "Simulated time of the last committed checkpoint",
            Gauge::LaneWidth => "SIMD stimulus-lane width of the batch kernel",
            Gauge::Workers => "Worker threads participating in the run",
        }
    }

    pub fn agg(self) -> GaugeAgg {
        match self {
            Gauge::QueueDepth | Gauge::ArenaLiveBlocks => GaugeAgg::Sum,
            Gauge::SimTime
            | Gauge::ArenaQuarantinePeak
            | Gauge::LastCheckpointTime
            | Gauge::LaneWidth
            | Gauge::Workers => GaugeAgg::Max,
        }
    }
}

/// Inclusive upper bounds of the events-per-step histogram buckets —
/// identical to `parsim-core`'s `EventsPerStepHistogram` so the two stay
/// bucket-for-bucket comparable. The final implicit bucket is unbounded.
pub const HIST_BOUNDS: [u64; 10] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];

const HIST_SLOTS: usize = HIST_BOUNDS.len() + 1;

/// One worker's (or the driver's) private slice of the registry.
///
/// Exactly one thread writes a shard; everyone else only reads. Writes
/// are relaxed load/store pairs — no read-modify-write, no `lock` prefix,
/// no false sharing (the struct is padded to its own cache lines).
/// Readers see each counter's value eventually (on x86 immediately); the
/// cross-counter view is only approximate until the writer quiesces,
/// which is exactly the contract a monitoring snapshot needs.
#[repr(align(128))]
pub struct Shard {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hist_buckets: [AtomicU64; HIST_SLOTS],
    hist_count: AtomicU64,
    hist_sum: AtomicU64,
    hist_max: AtomicU64,
}

impl Default for Shard {
    fn default() -> Shard {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_count: AtomicU64::new(0),
            hist_sum: AtomicU64::new(0),
            hist_max: AtomicU64::new(0),
        }
    }
}

impl Shard {
    /// Single-writer increment: relaxed load + store, not `fetch_add`.
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        let slot = &self.counters[c as usize];
        slot.store(slot.load(Relaxed).wrapping_add(v), Relaxed);
    }

    #[inline]
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Relaxed)
    }

    #[inline]
    pub fn set_gauge(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].store(v, Relaxed);
    }

    /// Ratchet a watermark gauge upward (single-writer, so load+store).
    #[inline]
    pub fn gauge_max(&self, g: Gauge, v: u64) {
        let slot = &self.gauges[g as usize];
        if v > slot.load(Relaxed) {
            slot.store(v, Relaxed);
        }
    }

    #[inline]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Relaxed)
    }

    /// Records one active time step carrying `events` node changes into
    /// the events-per-step histogram.
    #[inline]
    pub fn record_step_events(&self, events: u64) {
        let idx = HIST_BOUNDS
            .iter()
            .position(|&b| events <= b)
            .unwrap_or(HIST_BOUNDS.len());
        let b = &self.hist_buckets[idx];
        b.store(b.load(Relaxed) + 1, Relaxed);
        self.hist_count.store(self.hist_count.load(Relaxed) + 1, Relaxed);
        self.hist_sum.store(self.hist_sum.load(Relaxed) + events, Relaxed);
        if events > self.hist_max.load(Relaxed) {
            self.hist_max.store(events, Relaxed);
        }
    }
}

/// Aggregated events-per-step histogram state at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket (non-cumulative) step counts; `buckets[HIST_BOUNDS.len()]`
    /// is the unbounded overflow bucket.
    pub buckets: Vec<u64>,
    /// Steps recorded.
    pub count: u64,
    /// Total events across all recorded steps.
    pub sum: u64,
    /// Largest single-step event count.
    pub max: u64,
}

impl HistSnapshot {
    fn empty() -> HistSnapshot {
        HistSnapshot { buckets: vec![0; HIST_SLOTS], ..Default::default() }
    }

    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A point-in-time aggregate of every shard, indexable by [`Counter`] and
/// [`Gauge`]. Plain data: safe to hold, ship, and diff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: Vec<u64>,
    gauges: Vec<u64>,
    pub hist: HistSnapshot,
}

impl Snapshot {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Merge a later run segment's totals into this one: counters add,
    /// watermark gauges max, and current-value gauges take the later
    /// segment's reading.
    pub fn absorb(&mut self, later: &Snapshot) {
        for (a, b) in self.counters.iter_mut().zip(&later.counters) {
            *a += b;
        }
        for (g, (a, b)) in Gauge::ALL.iter().zip(self.gauges.iter_mut().zip(&later.gauges)) {
            *a = match g.agg() {
                GaugeAgg::Max => (*a).max(*b),
                GaugeAgg::Sum => *b,
            };
        }
        self.hist.merge(&later.hist);
    }
}

/// The per-run registry: one [`Shard`] per worker plus a driver shard for
/// the coordinating thread (checkpoint commits, end-of-run folds, the
/// watchdog).
pub struct Registry {
    shards: Vec<Arc<Shard>>,
    start: Instant,
}

impl Registry {
    /// A registry for `workers` worker threads (plus the driver shard).
    pub fn new(workers: usize) -> Registry {
        let shards = (0..workers.max(1) + 1).map(|_| Arc::new(Shard::default())).collect();
        Registry { shards, start: Instant::now() }
    }

    pub fn num_workers(&self) -> usize {
        self.shards.len() - 1
    }

    /// Worker `i`'s shard. Out-of-range indexes fall back to the driver
    /// shard rather than panicking (a run resumed with a different thread
    /// count still publishes somewhere).
    pub fn worker(&self, i: usize) -> Arc<Shard> {
        self.shards.get(i).unwrap_or_else(|| self.driver_ref()).clone()
    }

    /// The coordinating thread's shard.
    pub fn driver(&self) -> Arc<Shard> {
        self.driver_ref().clone()
    }

    fn driver_ref(&self) -> &Arc<Shard> {
        self.shards.last().expect("registry always has a driver shard")
    }

    /// All shards, workers first, driver last (for labeled exposition).
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Label for shard `i` in the exposition (`"0"`, `"1"`, …, `"driver"`).
    pub fn shard_label(&self, i: usize) -> String {
        if i + 1 == self.shards.len() {
            "driver".to_string()
        } else {
            i.to_string()
        }
    }

    /// Nanoseconds since the registry was created (the run epoch).
    pub fn uptime_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Aggregate every shard with relaxed loads. Counters sum; gauges
    /// follow [`Gauge::agg`]; histograms merge bucket-wise.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters = vec![0u64; Counter::COUNT];
        let mut gauges = vec![0u64; Gauge::COUNT];
        let mut hist = HistSnapshot::empty();
        for shard in &self.shards {
            for (i, slot) in counters.iter_mut().enumerate() {
                *slot += shard.counters[i].load(Relaxed);
            }
            for (g, slot) in Gauge::ALL.iter().zip(gauges.iter_mut()) {
                let v = shard.gauges[*g as usize].load(Relaxed);
                *slot = match g.agg() {
                    GaugeAgg::Sum => *slot + v,
                    GaugeAgg::Max => (*slot).max(v),
                };
            }
            for (i, b) in hist.buckets.iter_mut().enumerate() {
                *b += shard.hist_buckets[i].load(Relaxed);
            }
            hist.count += shard.hist_count.load(Relaxed);
            hist.sum += shard.hist_sum.load(Relaxed);
            hist.max = hist.max.max(shard.hist_max.load(Relaxed));
        }
        Snapshot { counters, gauges, hist }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("workers", &self.num_workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_indexes_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of order in Counter::ALL");
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "{g:?} out of order in Gauge::ALL");
        }
    }

    #[test]
    fn metric_names_are_unique_and_namespaced() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        for n in &names {
            assert!(n.starts_with("parsim_"), "{n} must live under parsim_");
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate metric name");
        for c in Counter::ALL {
            assert!(c.name().ends_with("_total"), "{} must end in _total", c.name());
        }
    }

    #[test]
    fn shard_counters_sum_across_workers() {
        let reg = Registry::new(2);
        reg.worker(0).add(Counter::EventsProcessed, 10);
        reg.worker(1).add(Counter::EventsProcessed, 5);
        reg.driver().add(Counter::EventsProcessed, 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::EventsProcessed), 16);
        assert_eq!(snap.counter(Counter::Evaluations), 0);
    }

    #[test]
    fn gauge_aggregation_by_kind() {
        let reg = Registry::new(2);
        reg.worker(0).set_gauge(Gauge::QueueDepth, 3);
        reg.worker(1).set_gauge(Gauge::QueueDepth, 4);
        reg.worker(0).set_gauge(Gauge::SimTime, 100);
        reg.worker(1).set_gauge(Gauge::SimTime, 90);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge(Gauge::QueueDepth), 7, "depths sum");
        assert_eq!(snap.gauge(Gauge::SimTime), 100, "frontiers max");
    }

    #[test]
    fn gauge_max_ratchets() {
        let reg = Registry::new(1);
        let s = reg.worker(0);
        s.gauge_max(Gauge::ArenaQuarantinePeak, 5);
        s.gauge_max(Gauge::ArenaQuarantinePeak, 3);
        assert_eq!(s.gauge(Gauge::ArenaQuarantinePeak), 5);
    }

    #[test]
    fn histogram_buckets_match_core_bounds() {
        let reg = Registry::new(1);
        let s = reg.worker(0);
        s.record_step_events(1);
        s.record_step_events(3);
        s.record_step_events(5000);
        let h = reg.snapshot().hist;
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 5004);
        assert_eq!(h.max, 5000);
        assert_eq!(h.buckets[0], 1, "1 lands in <=1");
        assert_eq!(h.buckets[2], 1, "3 lands in <=5");
        assert_eq!(h.buckets[HIST_BOUNDS.len()], 1, "5000 overflows");
    }

    #[test]
    fn out_of_range_worker_falls_back_to_driver() {
        let reg = Registry::new(1);
        reg.worker(99).add(Counter::Evaluations, 2);
        assert_eq!(reg.driver().counter(Counter::Evaluations), 2);
    }

    #[test]
    fn snapshot_absorb_counters_add_gauges_by_kind() {
        let reg = Registry::new(1);
        reg.worker(0).add(Counter::EventsProcessed, 10);
        reg.worker(0).set_gauge(Gauge::SimTime, 50);
        reg.worker(0).set_gauge(Gauge::QueueDepth, 9);
        let mut a = reg.snapshot();
        let reg2 = Registry::new(1);
        reg2.worker(0).add(Counter::EventsProcessed, 7);
        reg2.worker(0).set_gauge(Gauge::SimTime, 30);
        reg2.worker(0).set_gauge(Gauge::QueueDepth, 0);
        a.absorb(&reg2.snapshot());
        assert_eq!(a.counter(Counter::EventsProcessed), 17);
        assert_eq!(a.gauge(Gauge::SimTime), 50, "watermark keeps the max");
        assert_eq!(a.gauge(Gauge::QueueDepth), 0, "current value takes the later reading");
    }
}
