//! The per-run telemetry artifact: the drained sample series plus the
//! final authoritative snapshot, and its endpoint-shaped JSON rendering.

use crate::registry::{Counter, Gauge, Snapshot, HIST_BOUNDS};
use crate::sampler::Sample;

use parsim_trace::json;

/// Everything telemetry observed over one run: the flight-recorder
/// series (empty unless sampling was configured) and the final registry
/// snapshot, which equals the run's `Metrics` totals exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTelemetry {
    /// Worker threads the registry was sharded for.
    pub workers: usize,
    /// Wall nanoseconds from registry creation to the final snapshot.
    pub uptime_ns: u64,
    /// Sampling period, when in-run sampling was on.
    pub sampled_every_ns: Option<u64>,
    /// Timestamped samples, oldest first; when sampling was on the last
    /// entry is always the final snapshot.
    pub samples: Vec<Sample>,
    /// The end-of-run aggregate.
    pub finals: Snapshot,
}

impl RunTelemetry {
    /// Folds a later run segment (checkpoint resume) into this one:
    /// counters add, sample timestamps shift onto one continuous axis,
    /// and the final snapshot becomes the combined totals.
    pub fn absorb(&mut self, later: &RunTelemetry) {
        let offset = self.uptime_ns;
        for s in &later.samples {
            // Re-base the later segment's samples after this segment's
            // span, with the earlier totals folded in so every counter
            // series stays monotone across the seam.
            let mut snap = self.finals.clone();
            snap.absorb(&s.snap);
            self.samples.push(Sample { t_ns: offset + s.t_ns, snap });
        }
        self.finals.absorb(&later.finals);
        self.uptime_ns += later.uptime_ns;
        self.workers = self.workers.max(later.workers);
        self.sampled_every_ns = self.sampled_every_ns.or(later.sampled_every_ns);
    }
}

fn snapshot_json(out: &mut String, indent: &str, snap: &Snapshot) {
    out.push_str(&format!("{indent}\"counters\": ["));
    for (i, c) in Counter::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&snap.counter(*c).to_string());
    }
    out.push_str("],\n");
    out.push_str(&format!("{indent}\"gauges\": ["));
    for (i, g) in Gauge::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&snap.gauge(*g).to_string());
    }
    out.push_str("],\n");
    let h = &snap.hist;
    out.push_str(&format!(
        "{indent}\"events_per_step\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [{}]}}\n",
        h.count,
        h.sum,
        h.max,
        h.buckets.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(", ")
    ));
}

/// Renders the run's telemetry as an endpoint-shaped JSON document:
/// metric name tables once, then compact per-sample value arrays aligned
/// with them. All values are integers; derived rates are left to the
/// consumer so the document never carries a NaN (and the string fields go
/// through [`parsim_trace::json::escape`]).
pub fn render_json(run: &RunTelemetry) -> String {
    let mut out = String::with_capacity(4096 + 512 * run.samples.len());
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        json::escape("parsim-telemetry-series-v1")
    ));
    out.push_str(&format!("  \"workers\": {},\n", run.workers));
    out.push_str(&format!("  \"uptime_ns\": {},\n", run.uptime_ns));
    out.push_str(&format!(
        "  \"sample_every_ns\": {},\n",
        run.sampled_every_ns.unwrap_or(0)
    ));
    out.push_str(&format!(
        "  \"counter_names\": [{}],\n",
        Counter::ALL
            .iter()
            .map(|c| format!("\"{}\"", json::escape(c.name())))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"gauge_names\": [{}],\n",
        Gauge::ALL
            .iter()
            .map(|g| format!("\"{}\"", json::escape(g.name())))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"hist_bounds\": [{}],\n",
        HIST_BOUNDS.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(", ")
    ));
    out.push_str("  \"samples\": [\n");
    for (i, s) in run.samples.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"t_ns\": {},\n", s.t_ns));
        snapshot_json(&mut out, "      ", &s.snap);
        out.push_str(if i + 1 == run.samples.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"final\": {\n");
    snapshot_json(&mut out, "    ", &run.finals);
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn telemetry_with(events: u64, sampled: bool) -> RunTelemetry {
        let reg = Registry::new(1);
        reg.worker(0).add(Counter::EventsProcessed, events);
        reg.worker(0).set_gauge(Gauge::SimTime, events * 2);
        reg.worker(0).record_step_events(events.max(1));
        let finals = reg.snapshot();
        RunTelemetry {
            workers: 1,
            uptime_ns: 1000,
            sampled_every_ns: sampled.then_some(100),
            samples: if sampled {
                vec![Sample { t_ns: 1000, snap: finals.clone() }]
            } else {
                Vec::new()
            },
            finals,
        }
    }

    #[test]
    fn rendered_series_lints_as_json() {
        let run = telemetry_with(42, true);
        let doc = render_json(&run);
        json::lint(&doc).expect("series document must parse as JSON");
        assert!(doc.contains("\"parsim_events_total\""));
        assert!(doc.contains("\"t_ns\": 1000"));
        assert!(!doc.contains("NaN"));
        assert!(!doc.contains("null"));
    }

    #[test]
    fn empty_series_still_renders_final() {
        let run = telemetry_with(7, false);
        let doc = render_json(&run);
        json::lint(&doc).expect("must parse");
        assert!(doc.contains("\"samples\": [\n  ],"));
        assert!(doc.contains("\"final\""));
    }

    #[test]
    fn absorb_concatenates_on_one_time_axis_with_monotone_counters() {
        let mut a = telemetry_with(10, true);
        let b = telemetry_with(5, true);
        a.absorb(&b);
        assert_eq!(a.finals.counter(Counter::EventsProcessed), 15);
        assert_eq!(a.uptime_ns, 2000);
        assert_eq!(a.samples.len(), 2);
        assert_eq!(a.samples[1].t_ns, 2000, "later segment re-based");
        assert!(
            a.samples[1].snap.counter(Counter::EventsProcessed)
                >= a.samples[0].snap.counter(Counter::EventsProcessed),
            "counter series stays monotone across the segment seam"
        );
        assert_eq!(a.samples[1].snap.counter(Counter::EventsProcessed), 15);
        assert_eq!(a.finals.hist.count, 2);
    }
}
