//! Prometheus text-format 0.0.4 exposition and a vendored, registry-free
//! format lint.
//!
//! Naming conventions (documented in DESIGN.md §13): every metric lives
//! under the `parsim_` namespace, counters carry the `_total` suffix,
//! per-shard values are labeled `worker="0"`..`worker="driver"`, and the
//! events-per-step histogram is exposed aggregated (cumulative `le`
//! buckets ending in `+Inf`, plus `_sum` and `_count`).

use crate::registry::{Counter, Gauge, HistSnapshot, Registry, HIST_BOUNDS};

/// Renders the registry as Prometheus text-format 0.0.4.
pub fn render(reg: &Registry) -> String {
    let mut out = String::with_capacity(16 * 1024);
    for c in Counter::ALL {
        out.push_str(&format!("# HELP {} {}\n", c.name(), c.help()));
        out.push_str(&format!("# TYPE {} counter\n", c.name()));
        for (i, shard) in reg.shards().iter().enumerate() {
            out.push_str(&format!(
                "{}{{worker=\"{}\"}} {}\n",
                c.name(),
                reg.shard_label(i),
                shard.counter(c)
            ));
        }
    }
    for g in Gauge::ALL {
        out.push_str(&format!("# HELP {} {}\n", g.name(), g.help()));
        out.push_str(&format!("# TYPE {} gauge\n", g.name()));
        for (i, shard) in reg.shards().iter().enumerate() {
            out.push_str(&format!(
                "{}{{worker=\"{}\"}} {}\n",
                g.name(),
                reg.shard_label(i),
                shard.gauge(g)
            ));
        }
    }
    let hist = reg.snapshot().hist;
    let name = "parsim_events_per_step";
    out.push_str(&format!(
        "# HELP {name} Node-change events per active time step\n# TYPE {name} histogram\n"
    ));
    render_histogram(&mut out, name, &hist);
    out
}

/// Emits one histogram's `_bucket`/`_sum`/`_count` samples.
///
/// The `+Inf` bucket and `_count` are derived from the bucket sum rather
/// than the snapshot's `count` field: shards store the bucket slot before
/// the count, so a snapshot taken mid-record can carry `count` one behind
/// (or ahead of) the buckets — emitting the stored count verbatim would
/// intermittently violate the `+Inf == _count >= last bucket` invariant
/// the lint enforces. Bucket-derived totals are consistent by construction.
pub(crate) fn render_histogram(out: &mut String, name: &str, hist: &HistSnapshot) {
    let mut cum = 0u64;
    for (i, bound) in HIST_BOUNDS.iter().enumerate() {
        cum += hist.buckets.get(i).copied().unwrap_or(0);
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cum}\n"));
    }
    let total = cum + hist.buckets.get(HIST_BOUNDS.len()).copied().unwrap_or(0);
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{name}_sum {}\n", hist.sum));
    out.push_str(&format!("{name}_count {total}\n"));
}

/// Validates Prometheus text-format 0.0.4 structure without any metrics
/// registry: line syntax (`# HELP`/`# TYPE` comments, `name{labels} value`
/// samples), metric-name and label grammar, numeric sample values, TYPE
/// declarations preceding their samples, and histogram invariants
/// (cumulative non-decreasing buckets whose `+Inf` bucket equals
/// `_count`). Returns the first violation with its line number.
pub fn lint(text: &str) -> Result<(), String> {
    let mut typed: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut seen_samples: Vec<String> = Vec::new();
    // Histogram bookkeeping per metric: bucket values in order, +Inf, count.
    let mut hist_buckets: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut hist_inf: Vec<(String, f64)> = Vec::new();
    let mut hist_count: Vec<(String, f64)> = Vec::new();

    for (ln, raw) in text.lines().enumerate() {
        let n = ln + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE without metric name"))?;
                let ty = parts
                    .next()
                    .ok_or_else(|| format!("line {n}: TYPE {name} without a type"))?;
                if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {n}: unknown TYPE '{ty}' for {name}"));
                }
                check_name(name, n)?;
                if typed.iter().any(|(m, _)| m == name) {
                    return Err(format!("line {n}: duplicate TYPE for {name}"));
                }
                if seen_samples.iter().any(|s| metric_family(s) == name) {
                    return Err(format!("line {n}: TYPE for {name} after its samples"));
                }
                typed.push((name.to_string(), ty.to_string()));
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| format!("line {n}: HELP without metric name"))?;
                check_name(name, n)?;
            }
            // Other comments are legal free text.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(['{', ' ', '\t']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {n}: sample without a value: '{line}'")),
        };
        check_name(name_part, n)?;
        let (labels, value_part) = if let Some(stripped) = rest.strip_prefix('{') {
            let close = stripped
                .find('}')
                .ok_or_else(|| format!("line {n}: unterminated label set"))?;
            (&stripped[..close], &stripped[close + 1..])
        } else {
            ("", rest)
        };
        let mut le_value: Option<f64> = None;
        if !labels.is_empty() {
            for pair in split_labels(labels, n)? {
                let (k, v) = pair;
                if k == "le" && name_part.ends_with("_bucket") {
                    le_value = Some(parse_le(&v, n)?);
                }
            }
        }
        let mut tail = value_part.split_whitespace();
        let value = tail
            .next()
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let value: f64 = parse_value(value, n)?;
        if let Some(ts) = tail.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {n}: bad timestamp '{ts}'"))?;
        }
        if tail.next().is_some() {
            return Err(format!("line {n}: trailing tokens after timestamp"));
        }

        let family = metric_family(name_part);
        if let Some((_, ty)) = typed.iter().find(|(m, _)| *m == family) {
            if ty == "counter" && value < 0.0 {
                return Err(format!("line {n}: negative counter {name_part}"));
            }
            if ty == "histogram" {
                if name_part.ends_with("_bucket") {
                    match le_value {
                        Some(le) if le.is_infinite() => hist_inf.push((family, value)),
                        Some(le) => match hist_buckets.iter_mut().find(|(m, _)| *m == family) {
                            Some((_, v)) => v.push((le, value)),
                            None => hist_buckets.push((family, vec![(le, value)])),
                        },
                        None => {
                            return Err(format!("line {n}: histogram bucket without le label"))
                        }
                    }
                } else if name_part.ends_with("_count") {
                    hist_count.push((family, value));
                }
            }
        }
        seen_samples.push(name_part.to_string());
    }

    for (family, buckets) in &hist_buckets {
        let mut prev = (f64::NEG_INFINITY, 0.0);
        for &(le, v) in buckets {
            if le < prev.0 {
                return Err(format!("histogram {family}: le bounds out of order"));
            }
            if v < prev.1 {
                return Err(format!("histogram {family}: bucket counts not cumulative"));
            }
            prev = (le, v);
        }
        let inf = hist_inf
            .iter()
            .find(|(m, _)| m == family)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("histogram {family}: missing le=\"+Inf\" bucket"))?;
        if inf < prev.1 {
            return Err(format!("histogram {family}: +Inf bucket below last bound"));
        }
        if let Some((_, count)) = hist_count.iter().find(|(m, _)| m == family) {
            if (inf - count).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}: +Inf bucket {inf} != _count {count}"
                ));
            }
        } else {
            return Err(format!("histogram {family}: missing _count"));
        }
    }
    Ok(())
}

/// Strips histogram/summary child suffixes to the declared family name.
fn metric_family(name: &str) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base.to_string();
        }
    }
    name.to_string()
}

fn check_name(name: &str, line: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("line {line}: invalid metric name '{name}'"));
    }
    Ok(())
}

fn parse_value(v: &str, line: usize) -> Result<f64, String> {
    match v {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => v
            .parse::<f64>()
            .map_err(|_| format!("line {line}: bad sample value '{v}'")),
    }
}

fn parse_le(v: &str, line: usize) -> Result<f64, String> {
    parse_value(v, line).map_err(|_| format!("line {line}: bad le bound '{v}'"))
}

/// Splits `k="v",k2="v2"` label pairs, validating label-name grammar and
/// quote/escape structure.
fn split_labels(s: &str, line: usize) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = s;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line}: label without '='"))?;
        let key = rest[..eq].trim();
        if key.is_empty()
            || !key
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
        {
            return Err(format!("line {line}: invalid label name '{key}'"));
        }
        let after = &rest[eq + 1..];
        let body = after
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line}: label value must be quoted"))?;
        // Find the closing quote, honoring backslash escapes.
        let mut escaped = false;
        let mut close = None;
        for (i, c) in body.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("line {line}: bad escape '\\{c}' in label value"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or_else(|| format!("line {line}: unterminated label value"))?;
        out.push((key.to_string(), body[..close].to_string()));
        let tail = body[close + 1..].trim_start();
        if tail.is_empty() {
            return Ok(out);
        }
        rest = tail
            .strip_prefix(',')
            .ok_or_else(|| format!("line {line}: expected ',' between labels"))?
            .trim_start();
        if rest.is_empty() {
            return Ok(out); // trailing comma is tolerated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Counter, Gauge};

    #[test]
    fn rendered_registry_passes_lint() {
        let reg = Registry::new(2);
        reg.worker(0).add(Counter::EventsProcessed, 100);
        reg.worker(1).add(Counter::EventsProcessed, 50);
        reg.worker(0).set_gauge(Gauge::SimTime, 400);
        reg.worker(0).record_step_events(3);
        reg.worker(1).record_step_events(1200);
        let text = render(&reg);
        lint(&text).expect("rendered exposition must lint clean");
        assert!(text.contains("parsim_events_total{worker=\"0\"} 100"));
        assert!(text.contains("parsim_events_total{worker=\"driver\"} 0"));
        assert!(text.contains("# TYPE parsim_events_total counter"));
        assert!(text.contains("parsim_events_per_step_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("parsim_events_per_step_count 2"));
        assert!(text.contains("parsim_events_per_step_sum 1203"));
    }

    #[test]
    fn buckets_render_cumulative() {
        let reg = Registry::new(1);
        let s = reg.worker(0);
        s.record_step_events(1); // <=1
        s.record_step_events(2); // <=2
        s.record_step_events(2);
        let text = render(&reg);
        assert!(text.contains("parsim_events_per_step_bucket{le=\"1\"} 1"));
        assert!(text.contains("parsim_events_per_step_bucket{le=\"2\"} 3"));
        assert!(text.contains("parsim_events_per_step_bucket{le=\"5\"} 3"));
        lint(&text).unwrap();
    }

    /// Regression: shards store the histogram bucket slot before the
    /// count, so an in-flight `record_step_events` can be snapshotted
    /// with the bucket incremented but the count not (or vice versa).
    /// The exposition must stay lint-clean either way.
    #[test]
    fn torn_histogram_snapshot_renders_lint_clean() {
        for torn_count in [0u64, 1, 2, 7] {
            let hist = HistSnapshot {
                buckets: {
                    let mut b = vec![0u64; HIST_BOUNDS.len() + 1];
                    b[0] = 2; // two steps landed in <=1 ...
                    b[HIST_BOUNDS.len()] = 1; // ... one overflowed
                    b
                },
                count: torn_count, // disagrees with the buckets
                sum: 1003,
                max: 1001,
            };
            let mut text = String::from("# TYPE parsim_events_per_step histogram\n");
            render_histogram(&mut text, "parsim_events_per_step", &hist);
            lint(&text).unwrap_or_else(|e| {
                panic!("torn snapshot (count={torn_count}) must lint clean: {e}\n{text}")
            });
            // +Inf and _count both come from the bucket sum, never the
            // torn count field.
            assert!(text.contains("parsim_events_per_step_bucket{le=\"+Inf\"} 3"));
            assert!(text.contains("parsim_events_per_step_count 3"));
        }
    }

    #[test]
    fn empty_registry_renders_lint_clean() {
        let reg = Registry::new(3);
        let text = render(&reg);
        lint(&text).expect("pre-publish snapshot must lint clean");
        assert!(text.contains("parsim_events_per_step_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("parsim_events_per_step_count 0"));
    }

    #[test]
    fn lint_accepts_well_formed_hand_written_text() {
        let ok = "# HELP x_total things\n# TYPE x_total counter\nx_total{a=\"b\",c=\"d\\\"e\"} 1 1234567\nplain_metric 2.5\n";
        lint(ok).expect("well-formed text");
    }

    #[test]
    fn lint_rejects_malformed_lines() {
        assert!(lint("9bad_name 1\n").is_err(), "bad metric name");
        assert!(lint("x{le=\"1\" 1\n").is_err(), "unterminated labels");
        assert!(lint("x 1 2 3\n").is_err(), "trailing tokens");
        assert!(lint("x notanumber\n").is_err(), "bad value");
        assert!(lint("# TYPE x widget\nx 1\n").is_err(), "unknown type");
        assert!(
            lint("x_total 1\n# TYPE x_total counter\n").is_err(),
            "TYPE after samples"
        );
        assert!(
            lint("# TYPE x counter\nx -1\n").is_err(),
            "negative counter"
        );
        assert!(lint("x{=\"v\"} 1\n").is_err(), "empty label name");
    }

    #[test]
    fn lint_enforces_histogram_invariants() {
        let decreasing = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(lint(decreasing).is_err(), "non-cumulative buckets");
        let mismatch = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 5\n";
        assert!(lint(mismatch).is_err(), "+Inf != _count");
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(lint(no_inf).is_err(), "missing +Inf bucket");
        let good = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n";
        lint(good).expect("valid histogram");
    }
}
