//! Always-on live telemetry for the parsim engines.
//!
//! PR 4's tracer is post-mortem: per-worker rings drain only at run end,
//! so a long simulation is a black box while it runs (and recording costs
//! ~2.3x, which is why it hides behind the `trace` feature). This crate is
//! the complementary substrate: an **always-compiled, always-on** metrics
//! registry cheap enough to leave enabled on every run.
//!
//! - [`Registry`]: one cache-padded [`Shard`] per worker thread plus one
//!   driver shard. Every shard is single-writer: the owning thread bumps
//!   its counters with relaxed load/store pairs (no `lock` prefix, no
//!   sharing), and readers aggregate across shards with relaxed loads at
//!   snapshot time. Counters and gauges are fixed enums ([`Counter`],
//!   [`Gauge`]) so a publish is an array index away — no hashing, no
//!   allocation, no branches beyond the bounds check the optimizer drops.
//! - [`Sampler`]: rides the watchdog/heartbeat monitor thread
//!   (`parsim-core`'s `watchdog` module), snapshotting the registry on a
//!   configurable period into a bounded drop-oldest [`SampleRing`] — a
//!   flight recorder whose contents export as a time-series section of
//!   `RunReport` and as an endpoint-shaped JSON document.
//! - Exposition: [`prometheus::render`] emits text-format 0.0.4 with
//!   per-worker labels, [`prometheus::lint`] is a vendored, registry-free
//!   format check for CI, and [`series::render_json`] writes the sample
//!   ring through `parsim_trace::json`'s NaN-safe helpers.
//!
//! The registry is the *live mirror* of `parsim-core`'s end-of-run
//! [`Metrics`] aggregate, not a replacement: engines publish into their
//! shard at the same sites they fold the local counters `Metrics` is built
//! from, so the final registry snapshot equals the final `Metrics` totals
//! exactly (an oracle-equivalence test in `parsim-core` pins this for all
//! four engines).
//!
//! [`Metrics`]: https://docs.rs/parsim-core

pub mod prometheus;
pub mod registry;
pub mod sampler;
pub mod series;
pub mod server;

pub use registry::{Counter, Gauge, HistSnapshot, Registry, Shard, Snapshot, HIST_BOUNDS};
pub use sampler::{Sample, SampleRing, Sampler, DEFAULT_RING_CAPACITY};
pub use series::RunTelemetry;
pub use server::{ServerCounter, ServerGauge, ServerRegistry};

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Everything one run's publishers share: the shard registry and, when
/// sampling is configured, the bounded sample ring.
///
/// Created once per run by the engine entry point (or by the checkpoint
/// driver, which threads the same context through every segment so
/// counters stay cumulative across restarts) and handed to workers, the
/// watchdog, and the checkpoint store.
#[derive(Clone)]
pub struct TelemetryCtx {
    pub registry: Arc<Registry>,
    pub ring: Option<Arc<SampleRing>>,
    /// Sampling period, when in-run sampling is on.
    pub every: Option<Duration>,
}

impl TelemetryCtx {
    /// Context for a run with `workers` worker threads. `sample_every`
    /// arms the in-run sampler with a ring of `capacity` samples.
    pub fn for_run(
        workers: usize,
        sample_every: Option<Duration>,
        capacity: usize,
    ) -> TelemetryCtx {
        TelemetryCtx {
            registry: Arc::new(Registry::new(workers)),
            ring: sample_every.map(|_| Arc::new(SampleRing::new(capacity))),
            every: sample_every,
        }
    }

    /// The sampler for the monitor thread, when sampling is configured.
    pub fn sampler(&self) -> Option<Sampler> {
        match (&self.ring, self.every) {
            (Some(ring), Some(every)) => {
                Some(Sampler::new(self.registry.clone(), ring.clone(), every))
            }
            _ => None,
        }
    }

    /// Drains the flight recorder and takes the final authoritative
    /// snapshot (appended as the last sample when sampling was on, so the
    /// series always ends on the exact end-of-run totals).
    pub fn finish(&self) -> RunTelemetry {
        let finals = self.registry.snapshot();
        let mut samples = match &self.ring {
            Some(ring) => ring.drain(),
            None => Vec::new(),
        };
        if self.ring.is_some() {
            samples.push(Sample {
                t_ns: self.registry.uptime_ns(),
                snap: finals.clone(),
            });
        }
        RunTelemetry {
            workers: self.registry.num_workers(),
            uptime_ns: self.registry.uptime_ns(),
            sampled_every_ns: self.every.map(|d| d.as_nanos() as u64),
            samples,
            finals,
        }
    }
}

impl fmt::Debug for TelemetryCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryCtx")
            .field("workers", &self.registry.num_workers())
            .field("sampling", &self.every)
            .finish()
    }
}

/// A shared slot a running engine installs its [`TelemetryCtx`] into, so
/// an outside observer (e.g. `psim --live-stats`) can watch the registry
/// mid-run. Create one, clone it into `SimConfig`, and poll [`Hub::get`]
/// from any thread.
#[derive(Default)]
pub struct Hub {
    slot: Mutex<Option<TelemetryCtx>>,
}

impl Hub {
    pub fn new() -> Arc<Hub> {
        Arc::new(Hub::default())
    }

    /// Called by the engine at run start (and by each checkpoint segment;
    /// re-installing the same context is idempotent).
    pub fn install(&self, ctx: TelemetryCtx) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(ctx);
    }

    /// The currently-running (or most recent) run's telemetry context.
    pub fn get(&self) -> Option<TelemetryCtx> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl fmt::Debug for Hub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hub({})", if self.get().is_some() { "installed" } else { "empty" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_without_sampling_has_no_ring() {
        let ctx = TelemetryCtx::for_run(2, None, 16);
        assert!(ctx.ring.is_none());
        assert!(ctx.sampler().is_none());
        let run = ctx.finish();
        assert!(run.samples.is_empty());
        assert_eq!(run.workers, 2);
    }

    #[test]
    fn finish_appends_final_sample_when_sampling() {
        let ctx = TelemetryCtx::for_run(1, Some(Duration::from_millis(5)), 16);
        ctx.registry.worker(0).add(Counter::EventsProcessed, 42);
        let run = ctx.finish();
        assert_eq!(run.samples.len(), 1, "final sample always appended");
        assert_eq!(run.samples[0].snap.counter(Counter::EventsProcessed), 42);
        assert_eq!(run.finals.counter(Counter::EventsProcessed), 42);
    }

    #[test]
    fn hub_install_and_get() {
        let hub = Hub::new();
        assert!(hub.get().is_none());
        let ctx = TelemetryCtx::for_run(1, None, 16);
        ctx.registry.worker(0).add(Counter::Evaluations, 7);
        hub.install(ctx);
        let live = hub.get().expect("installed");
        assert_eq!(live.registry.snapshot().counter(Counter::Evaluations), 7);
    }
}
