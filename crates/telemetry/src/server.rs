//! Service-level metrics for the multi-tenant simulation server.
//!
//! The engine [`Registry`](crate::Registry) is deliberately closed: its
//! [`Counter`](crate::Counter) set is pinned one-to-one to `parsim-core`'s
//! `Metrics` aggregate by an oracle-equivalence test, so job-queue and
//! cache traffic cannot ride there. This module is the open half: a small
//! **multi-writer** registry (`fetch_add`, not the engine shards'
//! single-writer load/store pairs — submissions arrive on arbitrary
//! transport threads while the scheduler drains on its own) covering the
//! server's job lifecycle, compiled-program cache, and lane packing.
//!
//! Everything lives under the `parsim_server_` namespace and renders
//! through the same text-format 0.0.4 conventions [`prometheus::render`]
//! uses, so [`prometheus::lint`] accepts the combined exposition.
//!
//! [`prometheus::render`]: crate::prometheus::render
//! [`prometheus::lint`]: crate::prometheus::lint

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Monotonic server counters. Array index == discriminant; keep `ALL` in
/// declaration order (same convention as the engine registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ServerCounter {
    /// Jobs accepted into the queue.
    JobsSubmitted,
    /// Jobs that finished with a usable result.
    JobsCompleted,
    /// Jobs that finished with a `SimError`.
    JobsFailed,
    /// Jobs cancelled by their tenant before completion.
    JobsCancelled,
    /// Submissions refused because the tenant was at its quota.
    QuotaRejections,
    /// Jobs failed because their deadline expired (queued or running).
    DeadlineExpirations,
    /// Batch dispatches that found the compiled program in the cache.
    CacheHits,
    /// Batch dispatches that had to compile the netlist first.
    CacheMisses,
    /// Compiled programs evicted by the cache's LRU bound.
    CacheEvictions,
    /// `run_batch` passes executed (each serves up to lane-width jobs).
    BatchPasses,
    /// Jobs packed into those passes (sum of per-pass occupancy).
    LanesPacked,
    /// Checkpoint segments executed across all batch passes.
    Segments,
}

impl ServerCounter {
    pub const ALL: [ServerCounter; 12] = [
        ServerCounter::JobsSubmitted,
        ServerCounter::JobsCompleted,
        ServerCounter::JobsFailed,
        ServerCounter::JobsCancelled,
        ServerCounter::QuotaRejections,
        ServerCounter::DeadlineExpirations,
        ServerCounter::CacheHits,
        ServerCounter::CacheMisses,
        ServerCounter::CacheEvictions,
        ServerCounter::BatchPasses,
        ServerCounter::LanesPacked,
        ServerCounter::Segments,
    ];
    pub const COUNT: usize = ServerCounter::ALL.len();

    pub fn name(self) -> &'static str {
        match self {
            ServerCounter::JobsSubmitted => "parsim_server_jobs_submitted_total",
            ServerCounter::JobsCompleted => "parsim_server_jobs_completed_total",
            ServerCounter::JobsFailed => "parsim_server_jobs_failed_total",
            ServerCounter::JobsCancelled => "parsim_server_jobs_cancelled_total",
            ServerCounter::QuotaRejections => "parsim_server_quota_rejections_total",
            ServerCounter::DeadlineExpirations => "parsim_server_deadline_expirations_total",
            ServerCounter::CacheHits => "parsim_server_cache_hits_total",
            ServerCounter::CacheMisses => "parsim_server_cache_misses_total",
            ServerCounter::CacheEvictions => "parsim_server_cache_evictions_total",
            ServerCounter::BatchPasses => "parsim_server_batch_passes_total",
            ServerCounter::LanesPacked => "parsim_server_lanes_packed_total",
            ServerCounter::Segments => "parsim_server_segments_total",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            ServerCounter::JobsSubmitted => "Jobs accepted into the queue",
            ServerCounter::JobsCompleted => "Jobs finished with a usable result",
            ServerCounter::JobsFailed => "Jobs finished with a SimError",
            ServerCounter::JobsCancelled => "Jobs cancelled by their tenant",
            ServerCounter::QuotaRejections => "Submissions refused at the tenant quota",
            ServerCounter::DeadlineExpirations => "Jobs failed by deadline expiry",
            ServerCounter::CacheHits => "Batch dispatches served from the program cache",
            ServerCounter::CacheMisses => "Batch dispatches that compiled the netlist",
            ServerCounter::CacheEvictions => "Compiled programs evicted by the LRU bound",
            ServerCounter::BatchPasses => "Word-parallel run_batch passes executed",
            ServerCounter::LanesPacked => "Jobs packed into batch passes",
            ServerCounter::Segments => "Checkpoint segments executed in batch passes",
        }
    }
}

/// Last-value server gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ServerGauge {
    /// Jobs waiting in digest bins.
    QueueDepth,
    /// Jobs currently inside a batch pass.
    JobsRunning,
    /// Compiled programs resident in the cache.
    CachedPrograms,
    /// Occupancy (jobs) of the most recent batch pass.
    LastBatchLanes,
}

impl ServerGauge {
    pub const ALL: [ServerGauge; 4] = [
        ServerGauge::QueueDepth,
        ServerGauge::JobsRunning,
        ServerGauge::CachedPrograms,
        ServerGauge::LastBatchLanes,
    ];
    pub const COUNT: usize = ServerGauge::ALL.len();

    pub fn name(self) -> &'static str {
        match self {
            ServerGauge::QueueDepth => "parsim_server_queue_depth",
            ServerGauge::JobsRunning => "parsim_server_jobs_running",
            ServerGauge::CachedPrograms => "parsim_server_cached_programs",
            ServerGauge::LastBatchLanes => "parsim_server_last_batch_lanes",
        }
    }

    pub fn help(self) -> &'static str {
        match self {
            ServerGauge::QueueDepth => "Jobs waiting in digest bins",
            ServerGauge::JobsRunning => "Jobs currently inside a batch pass",
            ServerGauge::CachedPrograms => "Compiled programs resident in the cache",
            ServerGauge::LastBatchLanes => "Job occupancy of the most recent batch pass",
        }
    }
}

/// The server's process-lifetime metrics registry.
///
/// Unlike the engine's sharded single-writer registry, this one is tiny
/// and contended by design: any thread may bump any counter, so slots use
/// `fetch_add`/`store` read-modify-writes. Server traffic is measured in
/// jobs per second, not events per nanosecond — contention is irrelevant.
#[derive(Debug, Default)]
pub struct ServerRegistry {
    counters: [AtomicU64; ServerCounter::COUNT],
    gauges: [AtomicU64; ServerGauge::COUNT],
}

impl ServerRegistry {
    pub fn new() -> ServerRegistry {
        ServerRegistry::default()
    }

    #[inline]
    pub fn add(&self, c: ServerCounter, v: u64) {
        self.counters[c as usize].fetch_add(v, Relaxed);
    }

    #[inline]
    pub fn inc(&self, c: ServerCounter) {
        self.add(c, 1);
    }

    #[inline]
    pub fn counter(&self, c: ServerCounter) -> u64 {
        self.counters[c as usize].load(Relaxed)
    }

    #[inline]
    pub fn set_gauge(&self, g: ServerGauge, v: u64) {
        self.gauges[g as usize].store(v, Relaxed);
    }

    #[inline]
    pub fn gauge(&self, g: ServerGauge) -> u64 {
        self.gauges[g as usize].load(Relaxed)
    }

    /// Renders the registry as Prometheus text-format 0.0.4 (no labels —
    /// the server is one process, not a shard set). The output passes
    /// [`crate::prometheus::lint`].
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4 * 1024);
        for c in ServerCounter::ALL {
            out.push_str(&format!("# HELP {} {}\n", c.name(), c.help()));
            out.push_str(&format!("# TYPE {} counter\n", c.name()));
            out.push_str(&format!("{} {}\n", c.name(), self.counter(c)));
        }
        for g in ServerGauge::ALL {
            out.push_str(&format!("# HELP {} {}\n", g.name(), g.help()));
            out.push_str(&format!("# TYPE {} gauge\n", g.name()));
            out.push_str(&format!("{} {}\n", g.name(), self.gauge(g)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prometheus::lint;

    #[test]
    fn enum_indexes_match_all_order() {
        for (i, c) in ServerCounter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of order in ServerCounter::ALL");
        }
        for (i, g) in ServerGauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i, "{g:?} out of order in ServerGauge::ALL");
        }
    }

    #[test]
    fn names_are_unique_namespaced_and_conventional() {
        let mut names: Vec<&str> = ServerCounter::ALL.iter().map(|c| c.name()).collect();
        names.extend(ServerGauge::ALL.iter().map(|g| g.name()));
        for n in &names {
            assert!(n.starts_with("parsim_server_"), "{n} must live under parsim_server_");
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate metric name");
        for c in ServerCounter::ALL {
            assert!(c.name().ends_with("_total"), "{} must end in _total", c.name());
        }
    }

    #[test]
    fn multi_writer_counters_accumulate() {
        let reg = std::sync::Arc::new(ServerRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.inc(ServerCounter::JobsSubmitted);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter(ServerCounter::JobsSubmitted), 4000);
    }

    #[test]
    fn render_passes_lint_fresh_and_populated() {
        let reg = ServerRegistry::new();
        lint(&reg.render()).expect("fresh registry lints clean");
        reg.add(ServerCounter::BatchPasses, 1);
        reg.add(ServerCounter::LanesPacked, 2);
        reg.set_gauge(ServerGauge::LastBatchLanes, 2);
        let text = reg.render();
        lint(&text).expect("populated registry lints clean");
        assert!(text.contains("parsim_server_batch_passes_total 1"));
        assert!(text.contains("parsim_server_last_batch_lanes 2"));
    }
}
