//! Property: gate-level random circuits survive the ISCAS `.bench`
//! writer/reader round trip structurally.

use parsim_circuits::{random_circuit, RandomCircuitParams};
use parsim_netlist::bench_fmt::{from_bench, to_bench, BenchOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bench_round_trip_preserves_structure(
        elements in 1usize..80,
        seq_quarters in 0u64..3,
        seed in any::<u64>(),
    ) {
        let c = random_circuit(&RandomCircuitParams {
            elements,
            inputs: 4,
            seq_fraction: seq_quarters as f64 * 0.25,
            max_delay: 1,
            seed,
        })
        .unwrap();
        let text = to_bench(&c.netlist)
            .map_err(|e| TestCaseError::fail(format!("to_bench: {e}")))?;
        let opts = BenchOptions {
            input_period: None,
            ..Default::default()
        };
        let parsed = from_bench(&text, &opts)
            .map_err(|e| TestCaseError::fail(format!("from_bench: {e}")))?;

        // Gate population is preserved exactly (generators become inputs;
        // a clock node may be added for DFFs).
        let count = |n: &parsim_netlist::Netlist, mn: &str| {
            n.elements().iter().filter(|e| e.kind().mnemonic() == mn).count()
        };
        for mnemonic in ["and", "nand", "or", "nor", "xor", "xnor", "not", "buf", "dff"] {
            prop_assert_eq!(
                count(&c.netlist, mnemonic),
                count(&parsed.netlist, mnemonic),
                "{} count differs (seed {})",
                mnemonic,
                seed
            );
        }
        // Every original element output node exists with the same fan-in
        // name multiset.
        for (_, e) in c.netlist.iter_elements() {
            if e.kind().is_generator() {
                continue;
            }
            let out_name = c.netlist.node(e.outputs()[0]).name();
            let parsed_id = parsed
                .netlist
                .node_by_name(out_name)
                .ok_or_else(|| TestCaseError::fail(format!("node {out_name} lost")))?;
            let (drv, _) = parsed.netlist.node(parsed_id).driver().expect("driven");
            let parsed_elem = parsed.netlist.element(drv);
            let orig_inputs: Vec<&str> = e
                .inputs()
                .iter()
                .map(|&n| c.netlist.node(n).name())
                .filter(|n| *n != "clk")
                .collect();
            let parsed_inputs: Vec<&str> = parsed_elem
                .inputs()
                .iter()
                .map(|&n| parsed.netlist.node(n).name())
                .filter(|n| !n.starts_with("__bench_clk"))
                .collect();
            prop_assert_eq!(orig_inputs, parsed_inputs, "fan-in of {} (seed {})", out_name, seed);
        }
    }
}
