//! Property: every randomly generated circuit survives the text netlist
//! format round trip byte-for-byte.

use parsim_circuits::{random_circuit, RandomCircuitParams};
use parsim_netlist::Netlist;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_circuits_round_trip(
        elements in 1usize..120,
        inputs in 1usize..8,
        seq_quarters in 0u64..4,
        max_delay in 1u64..5,
        seed in any::<u64>(),
    ) {
        let params = RandomCircuitParams {
            elements,
            inputs,
            seq_fraction: seq_quarters as f64 * 0.25,
            max_delay,
            seed,
        };
        let c = random_circuit(&params).unwrap();
        let text = c.netlist.to_text();
        let reparsed = Netlist::from_text(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse: {e}")))?;
        prop_assert_eq!(text, reparsed.to_text());
        prop_assert_eq!(c.netlist.num_nodes(), reparsed.num_nodes());
        prop_assert_eq!(c.netlist.num_elements(), reparsed.num_elements());
        // Structure is preserved exactly: same drivers, same fan-out.
        for (id, node) in c.netlist.iter_nodes() {
            let other = reparsed.node(id);
            prop_assert_eq!(node.name(), other.name());
            prop_assert_eq!(node.width(), other.width());
            prop_assert_eq!(node.driver(), other.driver());
            prop_assert_eq!(node.fanout(), other.fanout());
        }
    }

    #[test]
    fn generated_circuits_have_valid_structure(
        elements in 1usize..100,
        seed in any::<u64>(),
    ) {
        let c = random_circuit(&RandomCircuitParams {
            elements,
            seed,
            ..Default::default()
        })
        .unwrap();
        // Every element's ports reference real nodes with matching widths
        // (the builder guarantees it; this guards the generator).
        for (_, e) in c.netlist.iter_elements() {
            for &n in e.inputs().iter().chain(e.outputs()) {
                prop_assert!(n.index() < c.netlist.num_nodes());
            }
            prop_assert_eq!(e.outputs().len(), e.kind().num_outputs());
        }
        // Exactly one driver per driven node.
        let mut driven = vec![0usize; c.netlist.num_nodes()];
        for (_, e) in c.netlist.iter_elements() {
            for &o in e.outputs() {
                driven[o.index()] += 1;
            }
        }
        prop_assert!(driven.iter().all(|&d| d <= 1));
    }
}
