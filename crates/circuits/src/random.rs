//! Random well-formed circuits for cross-engine property testing.
//!
//! The generated circuits are always valid netlists: combinational
//! elements only consume nodes created before them (no combinational
//! cycles), while flip-flop data inputs may reach forward, creating
//! sequential feedback loops — the circuit family the paper's §4 calls out
//! as the asynchronous algorithm's worst case. A third of the
//! combinational elements get asymmetric rise/fall delays, stressing the
//! monotone-transport rule in every engine.

use parsim_logic::{Delay, ElementKind};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_circuit`].
#[derive(Debug, Clone)]
pub struct RandomCircuitParams {
    /// Number of logic/sequential elements (excluding input generators).
    pub elements: usize,
    /// Number of generator-driven primary inputs.
    pub inputs: usize,
    /// Fraction of elements that are flip-flops, in `0.0..=1.0`.
    pub seq_fraction: f64,
    /// Maximum delay assigned to any element (delays are uniform in
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// RNG seed; equal seeds produce identical circuits.
    pub seed: u64,
}

impl Default for RandomCircuitParams {
    fn default() -> Self {
        RandomCircuitParams {
            elements: 100,
            inputs: 8,
            seq_fraction: 0.15,
            max_delay: 3,
            seed: 1,
        }
    }
}

/// A generated random circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct RandomCircuit {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Nodes worth watching (all element outputs).
    pub watch: Vec<NodeId>,
}

/// Generates a random, always-valid circuit.
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency.
///
/// # Panics
///
/// Panics if `elements` or `inputs` is zero, or `max_delay` is zero.
///
/// # Examples
///
/// ```
/// use parsim_circuits::{random_circuit, RandomCircuitParams};
///
/// let params = RandomCircuitParams { elements: 50, seed: 7, ..Default::default() };
/// let a = random_circuit(&params)?;
/// let b = random_circuit(&params)?;
/// assert_eq!(a.netlist.to_text(), b.netlist.to_text()); // deterministic
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn random_circuit(params: &RandomCircuitParams) -> Result<RandomCircuit, BuildError> {
    assert!(params.elements > 0, "need at least one element");
    assert!(params.inputs > 0, "need at least one input");
    assert!(params.max_delay > 0, "max delay must be nonzero");
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut b = Builder::new();

    // A clock for the flip-flops plus generator-driven inputs.
    let clk = b.node("clk", 1);
    b.element(
        "clkgen",
        ElementKind::Clock {
            half_period: 4,
            offset: 4,
        },
        Delay(1),
        &[],
        &[clk],
    )?;
    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..params.inputs {
        let n = b.node(&format!("in{i}"), 1);
        let kind = match rng.gen_range(0..3u8) {
            0 => ElementKind::Clock {
                half_period: rng.gen_range(1..=6),
                offset: rng.gen_range(0..6),
            },
            1 => ElementKind::Lfsr {
                width: 1,
                period: rng.gen_range(1..=5),
                seed: rng.gen(),
            },
            _ => ElementKind::Pulse {
                at: rng.gen_range(0..40),
                width: rng.gen_range(1..20),
            },
        };
        b.element(&format!("gen{i}"), kind, Delay(1), &[], &[n])?;
        pool.push(n);
    }

    // Pre-create all element output nodes so flip-flops can reach forward.
    let outs: Vec<NodeId> = (0..params.elements)
        .map(|i| b.node(&format!("n{i}"), 1))
        .collect();

    for (i, &out) in outs.iter().enumerate() {
        let delay = Delay(rng.gen_range(1..=params.max_delay));
        let is_ff = rng.gen_bool(params.seq_fraction);
        if is_ff {
            // d may come from anywhere, including later outputs (feedback).
            let all: usize = pool.len() + outs.len();
            let pick = rng.gen_range(0..all);
            let d = if pick < pool.len() {
                pool[pick]
            } else {
                outs[pick - pool.len()]
            };
            b.element(
                &format!("e{i}"),
                ElementKind::Dff { width: 1 },
                delay,
                &[clk, d],
                &[out],
            )?;
        } else {
            // Combinational: inputs strictly from earlier nodes.
            let avail = pool.len() + i;
            let pick = |rng: &mut SmallRng| {
                let k = rng.gen_range(0..avail);
                if k < pool.len() {
                    pool[k]
                } else {
                    outs[k - pool.len()]
                }
            };
            let kind = match rng.gen_range(0..8u8) {
                0 => ElementKind::And,
                1 => ElementKind::Or,
                2 => ElementKind::Nand,
                3 => ElementKind::Nor,
                4 => ElementKind::Xor,
                5 => ElementKind::Xnor,
                6 => ElementKind::Not,
                _ => ElementKind::Buf,
            };
            let arity = match kind {
                ElementKind::Not | ElementKind::Buf => 1,
                _ => rng.gen_range(2..=3usize),
            };
            let inputs: Vec<NodeId> = (0..arity).map(|_| pick(&mut rng)).collect();
            if rng.gen_bool(0.3) {
                // Asymmetric rise/fall pair, exercising the monotone
                // transport rule across every engine.
                let fall = Delay(rng.gen_range(1..=params.max_delay));
                b.element_with_delays(&format!("e{i}"), kind, delay, fall, &inputs, &[out])?;
            } else {
                b.element(&format!("e{i}"), kind, delay, &inputs, &[out])?;
            }
        }
    }

    Ok(RandomCircuit {
        netlist: b.finish()?,
        watch: outs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::analyze::levelize;

    #[test]
    fn deterministic_for_equal_seeds() {
        let p = RandomCircuitParams {
            elements: 80,
            seed: 42,
            ..Default::default()
        };
        let a = random_circuit(&p).unwrap();
        let b = random_circuit(&p).unwrap();
        assert_eq!(a.netlist.to_text(), b.netlist.to_text());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(&RandomCircuitParams {
            seed: 1,
            ..Default::default()
        })
        .unwrap();
        let b = random_circuit(&RandomCircuitParams {
            seed: 2,
            ..Default::default()
        })
        .unwrap();
        assert_ne!(a.netlist.to_text(), b.netlist.to_text());
    }

    #[test]
    fn never_creates_combinational_cycles() {
        for seed in 0..20 {
            let c = random_circuit(&RandomCircuitParams {
                elements: 120,
                seq_fraction: 0.3,
                seed,
                ..Default::default()
            })
            .unwrap();
            assert!(
                levelize(&c.netlist).cyclic.is_empty(),
                "combinational cycle at seed {seed}"
            );
        }
    }

    #[test]
    fn pure_combinational_variant() {
        let c = random_circuit(&RandomCircuitParams {
            elements: 60,
            seq_fraction: 0.0,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let stats = parsim_netlist::NetlistStats::compute(&c.netlist);
        assert_eq!(stats.num_sequential, 0);
    }
}
