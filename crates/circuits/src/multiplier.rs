//! The gate-level n-bit multiplier (the paper's ~5000-element 16-bit
//! multiplier).
//!
//! A schoolbook partial-product array compressed with full/half adders
//! (Wallace-style column compression) and resolved by a final ripple
//! adder, built exclusively from primitive gates: AND for partial
//! products, 9-NAND full adders, and 4-NAND XORs. At `n = 16` this
//! produces roughly 2.5k gates — the same workload class as the paper's
//! gate-level multiplier (their exact cell library is lost; see
//! DESIGN.md).
//!
//! Operands are driven by per-bit [`Pattern`](parsim_logic::ElementKind::Pattern)
//! generators cycling through a caller-provided vector schedule, one new
//! operand pair every `period` ticks.

use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};

use crate::gates::{const_bit, full_adder, ripple_adder};

/// A gate-level multiplier circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct GateMultiplier {
    /// The generated netlist.
    pub netlist: Netlist,
    /// Operand A input bits, LSB first.
    pub a_inputs: Vec<NodeId>,
    /// Operand B input bits, LSB first.
    pub b_inputs: Vec<NodeId>,
    /// Product bits, LSB first (`2n` bits).
    pub product: Vec<NodeId>,
    /// The operand schedule driving the inputs.
    pub operands: Vec<(u64, u64)>,
    /// Ticks between successive operand pairs.
    pub period: u64,
}

impl GateMultiplier {
    /// The expected product for each scheduled operand pair.
    pub fn expected_products(&self) -> Vec<u64> {
        self.operands.iter().map(|&(a, b)| a.wrapping_mul(b)).collect()
    }

    /// The time at which the `k`-th product is guaranteed settled (just
    /// before the next operand pair is applied).
    pub fn sample_time(&self, k: usize) -> Time {
        Time((k as u64 + 1) * self.period - 1)
    }

    /// An end time covering the whole schedule once.
    pub fn schedule_end(&self) -> Time {
        Time(self.operands.len() as u64 * self.period)
    }
}

/// Builds an `n`-bit gate-level array multiplier fed by the given operand
/// schedule, one pair every `period` ticks.
///
/// `period` must comfortably exceed the settling time of the array
/// (roughly `16n` gate delays); the function enforces a conservative lower
/// bound.
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 32, if the schedule is empty, if any
/// operand does not fit in `n` bits, or if `period < 16 * n`.
///
/// # Examples
///
/// ```
/// let m = parsim_circuits::gate_multiplier(4, &[(3, 5), (15, 15)], 64)?;
/// assert_eq!(m.product.len(), 8);
/// assert_eq!(m.expected_products(), vec![15, 225]);
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn gate_multiplier(
    n: usize,
    operands: &[(u64, u64)],
    period: u64,
) -> Result<GateMultiplier, BuildError> {
    assert!((1..=32).contains(&n), "multiplier width must be 1..=32");
    assert!(!operands.is_empty(), "operand schedule must be nonempty");
    assert!(period >= 16 * n as u64, "period too short for settling");
    let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    assert!(
        operands.iter().all(|&(a, b)| a <= limit && b <= limit),
        "operands must fit in {n} bits"
    );

    let mut b = Builder::new();
    let a_inputs = pattern_bus(&mut b, "a", n, operands.iter().map(|&(a, _)| a), period)?;
    let b_inputs = pattern_bus(&mut b, "b", n, operands.iter().map(|&(_, bb)| bb), period)?;

    // Partial products, bucketed by output bit weight.
    let width = 2 * n;
    let mut columns: Vec<Vec<NodeId>> = vec![Vec::new(); width + 1];
    for (i, &bi) in b_inputs.iter().enumerate() {
        for (j, &aj) in a_inputs.iter().enumerate() {
            let pp = b.fresh(1);
            b.element(
                &format!("pp{i}_{j}"),
                ElementKind::And,
                Delay(1),
                &[aj, bi],
                &[pp],
            )?;
            columns[i + j].push(pp);
        }
    }

    // Column compression: reduce every column to at most two bits using
    // full/half adders, carries flowing into the next column.
    let mut pass = 0usize;
    loop {
        let mut busy = false;
        for w in 0..width {
            while columns[w].len() > 2 {
                busy = true;
                if columns[w].len() >= 3 {
                    let x = columns[w].remove(0);
                    let y = columns[w].remove(0);
                    let z = columns[w].remove(0);
                    let (s, c) =
                        full_adder(&mut b, &format!("csa{pass}_{w}_{}", columns[w].len()), x, y, z)?;
                    columns[w].push(s);
                    columns[w + 1].push(c);
                }
            }
        }
        pass += 1;
        if !busy {
            break;
        }
    }

    // Columns now hold one or two bits; pair leftover singles with a
    // half-adder-free path by feeding the final ripple adder.
    let zero = const_bit(&mut b, "zero", false)?;
    let row_a: Vec<NodeId> = (0..width)
        .map(|w| columns[w].first().copied().unwrap_or(zero))
        .collect();
    let row_b: Vec<NodeId> = (0..width)
        .map(|w| columns[w].get(1).copied().unwrap_or(zero))
        .collect();
    let (product, _cout) = ripple_adder(&mut b, "final", &row_a, &row_b, zero)?;

    Ok(GateMultiplier {
        netlist: b.finish()?,
        a_inputs,
        b_inputs,
        product,
        operands: operands.to_vec(),
        period,
    })
}

/// Builds `width` 1-bit pattern-generator-driven input nodes from a
/// schedule of `width`-bit operands.
fn pattern_bus(
    b: &mut Builder,
    prefix: &str,
    width: usize,
    schedule: impl Iterator<Item = u64> + Clone,
    period: u64,
) -> Result<Vec<NodeId>, BuildError> {
    (0..width)
        .map(|bit| {
            let node = b.node(&format!("{prefix}{bit}"), 1);
            let values: Vec<Value> = schedule
                .clone()
                .map(|v| Value::bit((v >> bit) & 1 == 1))
                .collect();
            b.element(
                &format!("{prefix}gen{bit}"),
                ElementKind::Pattern {
                    period,
                    values: values.into(),
                },
                Delay(1),
                &[],
                &[node],
            )?;
            Ok(node)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::analyze::{feedback_elements, levelize};
    use parsim_netlist::NetlistStats;

    #[test]
    fn sixteen_bit_is_thousands_of_gates() {
        let m = gate_multiplier(16, &[(1234, 5678)], 256).unwrap();
        let stats = NetlistStats::compute(&m.netlist);
        assert!(
            stats.num_elements > 2000,
            "expected a large gate-level circuit, got {}",
            stats.num_elements
        );
        assert_eq!(m.product.len(), 32);
        // Gate-level only: every non-generator element is a primitive gate.
        for (_, e) in m.netlist.iter_elements() {
            let mn = e.kind().mnemonic();
            assert!(
                matches!(mn, "and" | "nand" | "or" | "not" | "pattern" | "const"),
                "non-gate element {mn}"
            );
        }
    }

    #[test]
    fn is_combinational_and_bounded_depth() {
        let m = gate_multiplier(8, &[(200, 100)], 128).unwrap();
        let lv = levelize(&m.netlist);
        assert!(lv.cyclic.is_empty());
        assert!(feedback_elements(&m.netlist).is_empty());
        // Settling bound used by `gate_multiplier`'s period assertion.
        assert!(
            (lv.max_level as u64) < 16 * 8,
            "depth {} exceeds settle budget",
            lv.max_level
        );
    }

    #[test]
    fn schedule_accessors() {
        let m = gate_multiplier(4, &[(3, 5), (2, 7)], 64).unwrap();
        assert_eq!(m.expected_products(), vec![15, 14]);
        assert_eq!(m.sample_time(0), Time(63));
        assert_eq!(m.sample_time(1), Time(127));
        assert_eq!(m.schedule_end(), Time(128));
    }

    #[test]
    #[should_panic(expected = "period too short")]
    fn rejects_short_period() {
        let _ = gate_multiplier(16, &[(1, 1)], 10);
    }

    #[test]
    #[should_panic(expected = "operands must fit")]
    fn rejects_oversized_operands() {
        let _ = gate_multiplier(4, &[(16, 1)], 64);
    }
}
