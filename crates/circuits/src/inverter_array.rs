//! The paper's control circuit: a rectangular array of inverter chains.
//!
//! §2.1: "a 32x16 array of inverters as a control circuit ... The number
//! of events can be easily controlled by how often the inputs to the array
//! are toggled." Each of `cols` columns is a chain of `depth` unit-delay
//! inverters whose head is driven by a clock toggling every
//! `toggle_period` ticks. Once the pipeline of chains fills, every tick
//! carries `cols * depth / toggle_period` events — the knob behind the
//! paper's Fig. 2 sweep (512/256/128/64 events per tick come from toggle
//! periods 1/2/4/8 on the 32×16 array).

use parsim_logic::{Delay, ElementKind};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};

use crate::gates::GATE_DELAY;

/// An inverter-array circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct InverterArray {
    /// The generated netlist.
    pub netlist: Netlist,
    /// The column input nodes (driven by clocks).
    pub inputs: Vec<NodeId>,
    /// The final inverter output of each column.
    pub taps: Vec<NodeId>,
    /// The toggle period the inputs were built with.
    pub toggle_period: u64,
    /// Chain depth per column.
    pub depth: usize,
}

impl InverterArray {
    /// Expected steady-state events per tick:
    /// `cols * depth / toggle_period` — the paper's Fig. 2 event-density
    /// knob.
    pub fn events_per_tick(&self) -> f64 {
        (self.inputs.len() * self.depth) as f64 / self.toggle_period as f64
    }
}

/// Builds a `cols` × `depth` inverter array with inputs toggling every
/// `toggle_period` ticks.
///
/// Column inputs are staggered by one tick each so events spread across
/// time steps the way independent stimulus would.
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency (the generator
/// always produces valid circuits for valid parameters).
///
/// # Panics
///
/// Panics if `cols`, `depth`, or `toggle_period` is zero.
///
/// # Examples
///
/// ```
/// let arr = parsim_circuits::inverter_array(32, 16, 1)?;
/// assert_eq!(arr.netlist.num_elements(), 32 * 16 + 32); // inverters + clocks
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn inverter_array(
    cols: usize,
    depth: usize,
    toggle_period: u64,
) -> Result<InverterArray, BuildError> {
    assert!(cols > 0 && depth > 0, "array dimensions must be nonzero");
    assert!(toggle_period > 0, "toggle period must be nonzero");
    let mut b = Builder::new();
    let mut inputs = Vec::with_capacity(cols);
    let mut taps = Vec::with_capacity(cols);
    for col in 0..cols {
        let head = b.node(&format!("in{col}"), 1);
        b.element(
            &format!("clk{col}"),
            ElementKind::Clock {
                half_period: toggle_period,
                // Stagger column phases so activity is spread over ticks.
                offset: 1 + (col as u64 % toggle_period),
            },
            Delay(1),
            &[],
            &[head],
        )?;
        inputs.push(head);
        let mut prev = head;
        for row in 0..depth {
            let out = b.node(&format!("c{col}r{row}"), 1);
            b.element(
                &format!("inv{col}_{row}"),
                ElementKind::Not,
                GATE_DELAY,
                &[prev],
                &[out],
            )?;
            prev = out;
        }
        taps.push(prev);
    }
    Ok(InverterArray {
        netlist: b.finish()?,
        inputs,
        taps,
        toggle_period,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::analyze::{feedback_elements, levelize};
    use parsim_netlist::NetlistStats;

    #[test]
    fn paper_dimensions() {
        let arr = inverter_array(32, 16, 1).unwrap();
        let stats = NetlistStats::compute(&arr.netlist);
        assert_eq!(stats.kind_counts["not"], 512);
        assert_eq!(stats.kind_counts["clock"], 32);
        assert_eq!(arr.inputs.len(), 32);
        assert_eq!(arr.taps.len(), 32);
    }

    #[test]
    fn chains_have_expected_depth() {
        let arr = inverter_array(4, 16, 2).unwrap();
        let lv = levelize(&arr.netlist);
        assert_eq!(lv.max_level, 16);
        assert!(lv.cyclic.is_empty());
        assert!(feedback_elements(&arr.netlist).is_empty());
    }

    #[test]
    fn inputs_are_clock_driven() {
        let arr = inverter_array(3, 2, 4).unwrap();
        for &input in &arr.inputs {
            let (drv, _) = arr.netlist.node(input).driver().unwrap();
            assert!(arr.netlist.element(drv).kind().is_generator());
        }
    }
}
