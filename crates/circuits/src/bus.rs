//! A shared tristate bus — the paper's "large busses" future-work
//! circuit.
//!
//! `drivers` sources take turns driving one `width`-bit bus through
//! tristate buffers; a resolver models the wired bus, and a register
//! latches it. The bus node is a high-fan-in serialization point: every
//! driver's activity funnels through one resolver element, which is the
//! structure §6 of the paper flags as a concern for the asynchronous
//! algorithm ("the effects of circuits with ... large busses on the
//! algorithm's performance").

use parsim_logic::{Delay, ElementKind, Value};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};

/// A shared-bus circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct SharedBus {
    /// The generated netlist.
    pub netlist: Netlist,
    /// The resolved bus node.
    pub bus: NodeId,
    /// The registered copy of the bus.
    pub captured: NodeId,
    /// Ticks each driver holds the bus.
    pub slot: u64,
    /// Number of drivers.
    pub drivers: usize,
}

/// Builds a `drivers`-way shared bus of the given `width`, with each
/// driver owning the bus for `slot` ticks in rotation.
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency.
///
/// # Panics
///
/// Panics if `drivers < 2`, `width` is 0 or above 64, or `slot < 4`.
///
/// # Examples
///
/// ```
/// let bus = parsim_circuits::shared_bus(4, 8, 16)?;
/// assert_eq!(bus.drivers, 4);
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn shared_bus(drivers: usize, width: u8, slot: u64) -> Result<SharedBus, BuildError> {
    assert!(drivers >= 2, "a shared bus needs at least two drivers");
    assert!((1..=64).contains(&width), "width must be 1..=64");
    assert!(slot >= 4, "slot must leave settling time");
    let mut b = Builder::new();

    // Rotating one-hot enables: driver d owns slots where
    // (t / slot) % drivers == d.
    let mut taps: Vec<NodeId> = Vec::with_capacity(drivers);
    for d in 0..drivers {
        let en = b.node(&format!("en{d}"), 1);
        let pattern: Vec<Value> = (0..drivers)
            .map(|k| Value::bit(k == d))
            .collect();
        b.element(
            &format!("engen{d}"),
            ElementKind::Pattern {
                period: slot,
                values: pattern.into(),
            },
            Delay(1),
            &[],
            &[en],
        )?;

        let data = b.node(&format!("data{d}"), width);
        b.element(
            &format!("datagen{d}"),
            ElementKind::Lfsr {
                width,
                period: slot,
                seed: 0x9e37 + d as u64,
            },
            Delay(1),
            &[],
            &[data],
        )?;

        let tap = b.node(&format!("tap{d}"), width);
        b.element(
            &format!("tri{d}"),
            ElementKind::TriBuf { width },
            Delay(1),
            &[en, data],
            &[tap],
        )?;
        taps.push(tap);
    }

    let bus = b.node("bus", width);
    b.element(
        "resolver",
        ElementKind::Resolver { width },
        Delay(1),
        &taps,
        &[bus],
    )?;

    // A clocked consumer on the bus.
    let clk = b.node("clk", 1);
    b.element(
        "clkgen",
        ElementKind::Clock {
            half_period: slot / 2,
            offset: slot / 2,
        },
        Delay(1),
        &[],
        &[clk],
    )?;
    let captured = b.node("captured", width);
    b.element(
        "capture",
        ElementKind::Dff { width },
        Delay(1),
        &[clk, bus],
        &[captured],
    )?;

    Ok(SharedBus {
        netlist: b.finish()?,
        bus,
        captured,
        slot,
        drivers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::NetlistStats;

    #[test]
    fn structure_is_as_specified() {
        let bus = shared_bus(6, 16, 8).unwrap();
        let stats = NetlistStats::compute(&bus.netlist);
        assert_eq!(stats.kind_counts["tribuf"], 6);
        assert_eq!(stats.kind_counts["res"], 1);
        assert_eq!(stats.kind_counts["dff"], 1);
        // The resolver is the high-fan-in hub.
        let resolver = bus.netlist.element_by_name("resolver").unwrap();
        assert_eq!(bus.netlist.element(resolver).inputs().len(), 6);
    }

    #[test]
    fn exactly_one_driver_owns_each_slot() {
        // Simulated behavior is checked in the core integration tests;
        // here verify the enable patterns are disjoint one-hot rotations.
        let bus = shared_bus(3, 4, 8).unwrap();
        for d in 0..3 {
            let en = bus.netlist.node_by_name(&format!("en{d}")).unwrap();
            let (drv, _) = bus.netlist.node(en).driver().unwrap();
            match bus.netlist.element(drv).kind() {
                ElementKind::Pattern { period, values } => {
                    assert_eq!(*period, 8);
                    let ones: usize = values
                        .iter()
                        .filter(|v| v.to_u64() == Some(1))
                        .count();
                    assert_eq!(ones, 1, "one-hot per rotation");
                }
                other => panic!("unexpected enable driver {other:?}"),
            }
        }
    }
}
