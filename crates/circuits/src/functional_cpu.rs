//! A functional-level (RTL) microprocessor built from coarse elements.
//!
//! The paper's functional level models "entire complex microprocessors"
//! as single elements with data-dependent execution times (§4). This
//! generator builds a small accumulator machine out of ~20 functional
//! elements — registers, an adder, comparators, muxes, and a true
//! [`Memory`](parsim_logic::ElementKind::Memory) for load/store — the
//! coarse-grained counterpart of the gate-level
//! [`pipelined_cpu`](crate::pipelined_cpu).
//!
//! Instruction stream (an LFSR-fed pseudo-ROM, as in the gate-level CPU):
//! the low two bits select the operation applied to the accumulator:
//!
//! | op | effect |
//! |----|--------|
//! | 00 | `acc += imm` |
//! | 01 | `acc ^= mem[addr]` |
//! | 10 | `mem[addr] = acc` |
//! | 11 | `acc = imm` |

use parsim_logic::{Delay, ElementKind, Value};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};

/// A functional-level CPU circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct FunctionalCpu {
    /// The generated netlist.
    pub netlist: Netlist,
    /// The 16-bit accumulator node.
    pub acc: NodeId,
    /// The memory read port.
    pub mem_out: NodeId,
    /// Clock half-period in ticks.
    pub half_period: u64,
}

/// Builds the functional-level CPU.
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency.
///
/// # Panics
///
/// Panics if `half_period < 16` (the functional elements need a few ticks
/// to settle between edges).
///
/// # Examples
///
/// ```
/// let cpu = parsim_circuits::functional_cpu(32)?;
/// assert!(cpu.netlist.num_elements() < 40); // coarse functional elements
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn functional_cpu(half_period: u64) -> Result<FunctionalCpu, BuildError> {
    assert!(half_period >= 16, "half_period too short for settling");
    const W: u8 = 16;
    let mut b = Builder::new();

    let clk = b.node("clk", 1);
    b.element(
        "clkgen",
        ElementKind::Clock {
            half_period,
            offset: half_period,
        },
        Delay(1),
        &[],
        &[clk],
    )?;
    let rst = b.node("rst", 1);
    b.element(
        "porst",
        ElementKind::Pulse {
            at: 0,
            width: half_period / 2,
        },
        Delay(1),
        &[],
        &[rst],
    )?;

    // Pseudo instruction stream, one word per clock cycle.
    let instr = b.node("instr", W);
    b.element(
        "rom",
        ElementKind::Lfsr {
            width: W,
            period: 2 * half_period,
            seed: 0xbeef,
        },
        Delay(1),
        &[],
        &[instr],
    )?;
    // Decode via wiring elements.
    let op = slice(&mut b, "op", instr, 0, 2)?;
    let addr = slice(&mut b, "addr", instr, 2, 4)?;
    let imm_raw = slice(&mut b, "imm", instr, 6, 8)?;
    let imm = b.node("imm_ext", W);
    b.element(
        "imm_zx",
        ElementKind::ZeroExt {
            in_width: 8,
            out_width: W,
        },
        Delay(1),
        &[imm_raw],
        &[imm],
    )?;

    // Operation strobes via comparators against constants.
    let consts: Vec<NodeId> = (0..4u64)
        .map(|k| {
            let n = b.node(&format!("k{k}"), 2);
            b.element(
                &format!("kgen{k}"),
                ElementKind::Const {
                    value: Value::from_u64(k, 2),
                },
                Delay(1),
                &[],
                &[n],
            )
            .map(|_| n)
        })
        .collect::<Result<_, _>>()?;
    let mut is_op = Vec::with_capacity(4);
    for (k, &c) in consts.iter().enumerate() {
        let eq = b.node(&format!("is_op{k}"), 1);
        let lt = b.fresh(1);
        b.element(
            &format!("cmp{k}"),
            ElementKind::Comparator { width: 2 },
            Delay(1),
            &[op, c],
            &[eq, lt],
        )?;
        is_op.push(eq);
    }

    // Accumulator register and datapath. The acc node is allocated first
    // so the feedback loop can be wired.
    let acc = b.node("acc", W);
    let mem_out = b.node("mem_out", W);

    // acc + imm.
    let zero1 = b.node("gnd", 1);
    b.element(
        "gnd_drv",
        ElementKind::Const {
            value: Value::bit(false),
        },
        Delay(1),
        &[],
        &[zero1],
    )?;
    let sum = b.node("sum", W);
    let cout = b.fresh(1);
    b.element(
        "alu_add",
        ElementKind::Adder { width: W },
        Delay(2),
        &[acc, imm, zero1],
        &[sum, cout],
    )?;
    // acc ^ mem[addr].
    let xored = b.node("xored", W);
    b.element("alu_xor", ElementKind::Xor, Delay(1), &[acc, mem_out], &[xored])?;

    // Next-accumulator mux tree selected by op bits.
    let op0 = slice(&mut b, "op0", instr, 0, 1)?;
    let op1 = slice(&mut b, "op1", instr, 1, 1)?;
    // op: 00 -> sum, 01 -> xored, 10 -> acc (hold during store), 11 -> imm.
    let lo_pair = b.node("lo_pair", W);
    b.element(
        "mux_lo",
        ElementKind::Mux { width: W },
        Delay(1),
        &[op0, sum, xored],
        &[lo_pair],
    )?;
    let hi_pair = b.node("hi_pair", W);
    b.element(
        "mux_hi",
        ElementKind::Mux { width: W },
        Delay(1),
        &[op0, acc, imm],
        &[hi_pair],
    )?;
    let acc_next = b.node("acc_next", W);
    b.element(
        "mux_top",
        ElementKind::Mux { width: W },
        Delay(1),
        &[op1, lo_pair, hi_pair],
        &[acc_next],
    )?;
    b.element(
        "acc_reg",
        ElementKind::DffR { width: W },
        Delay(1),
        &[clk, acc_next, rst],
        &[acc],
    )?;

    // Data memory: written on op 10, read combinationally every cycle.
    b.element(
        "dmem",
        ElementKind::Memory {
            addr_bits: 4,
            width: W,
        },
        Delay(2),
        &[clk, is_op[2], addr, acc],
        &[mem_out],
    )?;

    Ok(FunctionalCpu {
        netlist: b.finish()?,
        acc,
        mem_out,
        half_period,
    })
}

fn slice(
    b: &mut Builder,
    name: &str,
    input: NodeId,
    lo: u8,
    width: u8,
) -> Result<NodeId, BuildError> {
    let out = b.node(name, width);
    b.element(
        &format!("{name}_sl"),
        ElementKind::Slice {
            in_width: 16,
            lo,
            width,
        },
        Delay(1),
        &[input],
        &[out],
    )?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::analyze::feedback_elements;
    use parsim_netlist::NetlistStats;

    #[test]
    fn is_coarse_grained() {
        let cpu = functional_cpu(32).unwrap();
        let stats = NetlistStats::compute(&cpu.netlist);
        assert!(stats.num_elements < 40, "{} elements", stats.num_elements);
        assert_eq!(stats.kind_counts["mem"], 1);
        assert!(stats.num_sequential >= 2, "acc register + memory");
        // Heterogeneous costs: memory is the most expensive element.
        let max = cpu
            .netlist
            .elements()
            .iter()
            .map(|e| e.kind().eval_cost())
            .max()
            .unwrap();
        let mem = cpu.netlist.element_by_name("dmem").unwrap();
        assert_eq!(cpu.netlist.element(mem).kind().eval_cost(), max);
    }

    #[test]
    fn accumulator_sits_on_feedback() {
        let cpu = functional_cpu(32).unwrap();
        let fb = feedback_elements(&cpu.netlist);
        let acc_reg = cpu.netlist.element_by_name("acc_reg").unwrap();
        assert!(fb.contains(&acc_reg));
        let dmem = cpu.netlist.element_by_name("dmem").unwrap();
        assert!(fb.contains(&dmem), "memory participates in the loop");
    }
}
