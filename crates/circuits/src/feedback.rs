//! Long feedback chains — the asynchronous algorithm's worst case.
//!
//! §4: "Feed-back paths prevent complete processing of each node for all
//! time ... the feed-back chain caused the simulation to proceed one
//! event at a time." And §5: "for circuits with long feed-back chains,
//! it looks like the event-driven algorithm will be faster especially
//! with a large number of processors." This generator builds `rings`
//! independent oscillating loops, each `length` elements long, so
//! experiments can sweep the fraction of a circuit locked inside
//! feedback.

use parsim_logic::{Delay, ElementKind};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};

/// A feedback-ring circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct FeedbackChain {
    /// The generated netlist.
    pub netlist: Netlist,
    /// One probe node per ring (the NAND output).
    pub taps: Vec<NodeId>,
    /// Elements per ring (including the NAND).
    pub length: usize,
}

/// Builds `rings` independent oscillator loops, each with `length`
/// unit-delay elements (one enabling NAND plus `length - 1` buffers), so
/// each ring oscillates with period `2 * length` once its enable rises.
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency.
///
/// # Panics
///
/// Panics if `rings` is 0 or `length < 3` (shorter loops X-lock or race).
///
/// # Examples
///
/// ```
/// let fb = parsim_circuits::feedback_chain(4, 16)?;
/// assert_eq!(fb.taps.len(), 4);
/// assert_eq!(
///     parsim_netlist::analyze::feedback_elements(&fb.netlist).len(),
///     4 * 16
/// );
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn feedback_chain(rings: usize, length: usize) -> Result<FeedbackChain, BuildError> {
    assert!(rings >= 1, "at least one ring");
    assert!(length >= 3, "rings shorter than 3 elements are degenerate");
    let mut b = Builder::new();
    let mut taps = Vec::with_capacity(rings);
    for r in 0..rings {
        // The enable is 0 until t = 4 + r (forcing the ring out of the
        // X-lock through the NAND's controlling input), then stays high.
        let en = b.node(&format!("en{r}"), 1);
        b.element(
            &format!("kick{r}"),
            ElementKind::Pulse {
                at: 4 + r as u64,
                width: u64::MAX / 2,
            },
            Delay(1),
            &[],
            &[en],
        )?;
        let head = b.node(&format!("ring{r}_head"), 1);
        let mut prev = head;
        for k in 0..length - 1 {
            let next = b.node(&format!("ring{r}_n{k}"), 1);
            b.element(
                &format!("ring{r}_buf{k}"),
                ElementKind::Buf,
                Delay(1),
                &[prev],
                &[next],
            )?;
            prev = next;
        }
        b.element(
            &format!("ring{r}_nand"),
            ElementKind::Nand,
            Delay(1),
            &[en, prev],
            &[head],
        )?;
        taps.push(head);
    }
    Ok(FeedbackChain {
        netlist: b.finish()?,
        taps,
        length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::analyze::feedback_elements;

    #[test]
    fn every_ring_element_is_on_a_feedback_path() {
        let fb = feedback_chain(3, 8).unwrap();
        assert_eq!(feedback_elements(&fb.netlist).len(), 3 * 8);
    }

    #[test]
    fn ring_sizes() {
        let fb = feedback_chain(2, 5).unwrap();
        // 2 kicks + 2 * (4 bufs + 1 nand).
        assert_eq!(fb.netlist.num_elements(), 2 + 2 * 5);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_tiny_rings() {
        let _ = feedback_chain(1, 2);
    }
}
