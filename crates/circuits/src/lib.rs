//! The paper's benchmark circuits, generated structurally.
//!
//! Soule & Blank evaluate their three parallel algorithms on four circuits
//! (§2.1, §3.1, §4.1):
//!
//! | Paper circuit | Generator here |
//! |---|---|
//! | 32×16 array of inverters (control circuit) | [`inverter_array()`] |
//! | 16-bit multiplier, ~5000 gate-level elements | [`gate_multiplier`] |
//! | 16-bit multiplier, ~100 functional elements (3-bit multipliers, adders, wiring) | [`functional_multiplier`] |
//! | Pipelined microprocessor, ~3000 non-memory gates | [`pipelined_cpu`] |
//!
//! Each generator returns the netlist together with the probe nodes an
//! experiment needs (product bits, pipeline registers, array taps). Two
//! further generators cover the paper's §6 future-work circuits: long
//! [`feedback`] chains (the asynchronous algorithm's worst case) and
//! [`bus`]-structured circuits with tristate drivers. The [`random`]
//! module generates random well-formed circuits for cross-engine
//! property testing.

pub mod bus;
pub mod cpu;
pub mod feedback;
pub mod functional;
pub mod functional_cpu;
pub mod gates;
pub mod inverter_array;
pub mod multiplier;
pub mod random;

pub use bus::{shared_bus, SharedBus};
pub use cpu::{pipelined_cpu, PipelinedCpu};
pub use feedback::{feedback_chain, FeedbackChain};
pub use functional::{functional_multiplier, FunctionalMultiplier};
pub use functional_cpu::{functional_cpu, FunctionalCpu};
pub use inverter_array::{inverter_array, InverterArray};
pub use multiplier::{gate_multiplier, GateMultiplier};
pub use random::{random_circuit, RandomCircuitParams};
