//! The gate-level pipelined microprocessor (~3000 non-memory gates).
//!
//! The paper's second benchmark is "a pipelined micro-processor with about
//! 3000 non-memory gates" (§2.1); the original netlist is lost, so this
//! generator builds a comparable machine: a 3-stage (fetch / decode-read /
//! execute-writeback) pipeline with a program counter, a combinational
//! pseudo-ROM hashed from the PC, an 8-entry register file with two read
//! ports, and a ripple ALU (add / and / or / xor) — entirely from
//! primitive gates and 1-bit flip-flops. The instruction stream is
//! deterministic, so all simulation engines must agree bit-for-bit.

use parsim_logic::{Delay, ElementKind};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};

use crate::gates::{
    bus, const_bit, decoder, full_adder, half_adder, mux2, mux2_bus, register_r, xor2,
    GATE_DELAY,
};

/// A pipelined CPU circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct PipelinedCpu {
    /// The generated netlist.
    pub netlist: Netlist,
    /// The clock node.
    pub clk: NodeId,
    /// Program counter bits, LSB first.
    pub pc: Vec<NodeId>,
    /// The writeback-stage result bits, LSB first.
    pub wb_result: Vec<NodeId>,
    /// The clock half-period in ticks.
    pub half_period: u64,
}

/// Builds the pipelined CPU.
///
/// `width` is the datapath width (8..=32); the register file always has
/// 8 entries. `half_period` is the clock half-period in ticks and must
/// exceed the logic settling depth (roughly `5 * width` gate delays).
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency.
///
/// # Panics
///
/// Panics if `width` is outside `8..=32` or `half_period < 5 * width`.
///
/// # Examples
///
/// ```
/// let cpu = parsim_circuits::pipelined_cpu(16, 128)?;
/// assert!(cpu.netlist.num_elements() > 2000);
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn pipelined_cpu(width: usize, half_period: u64) -> Result<PipelinedCpu, BuildError> {
    assert!((8..=32).contains(&width), "width must be 8..=32");
    assert!(
        half_period >= 5 * width as u64,
        "half_period too short for settling"
    );
    const REG_BITS: usize = 3; // 8 registers
    let instr_width = 2 + 3 * REG_BITS + 5; // opcode + rs + rt + rd + imm5

    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    b.element(
        "clkgen",
        ElementKind::Clock {
            half_period,
            offset: half_period,
        },
        Delay(1),
        &[],
        &[clk],
    )?;
    let zero = const_bit(&mut b, "gnd", false)?;
    let one = const_bit(&mut b, "vdd", true)?;
    // Power-on reset: held high until just before the first clock edge,
    // which breaks the X-lock in every state loop (PC, register file,
    // pipeline valid bit).
    let rst = b.node("rst", 1);
    b.element(
        "porst",
        ElementKind::Pulse {
            at: 0,
            width: half_period / 2,
        },
        Delay(1),
        &[],
        &[rst],
    )?;

    // ---- Fetch: PC register + incrementer -------------------------------
    let pc_next = bus(&mut b, "pc_next", width);
    let pc = register_r(&mut b, "pc", clk, rst, &pc_next)?;
    {
        // pc_next = pc + 1 via half-adder ripple.
        let mut carry = one;
        for i in 0..width {
            let (s, c) = half_adder(&mut b, &format!("pcinc{i}"), pc[i], carry)?;
            b.element(
                &format!("pcnext{i}"),
                ElementKind::Buf,
                GATE_DELAY,
                &[s],
                &[pc_next[i]],
            )?;
            carry = c;
        }
    }

    // ---- Pseudo instruction ROM: combinational hash of the PC -----------
    let mut instr = Vec::with_capacity(instr_width);
    for k in 0..instr_width {
        let x = xor2(
            &mut b,
            &format!("rom{k}a"),
            pc[k % width],
            pc[(k * 5 + 3) % width],
        )?;
        let y = xor2(&mut b, &format!("rom{k}b"), x, pc[(k * 7 + 1) % width])?;
        let z = b.fresh(1);
        b.element(
            &format!("rom{k}c"),
            ElementKind::Nand,
            GATE_DELAY,
            &[y, pc[(k * 3 + 2) % width]],
            &[z],
        )?;
        let bit = xor2(&mut b, &format!("rom{k}d"), z, x)?;
        instr.push(bit);
    }

    // ---- Fetch/Decode pipeline register ----------------------------------
    let if_id = register_r(&mut b, "if_id", clk, rst, &instr)?;
    let opcode = &if_id[0..2];
    let rs = &if_id[2..2 + REG_BITS];
    let rt = &if_id[2 + REG_BITS..2 + 2 * REG_BITS];
    let rd = &if_id[2 + 2 * REG_BITS..2 + 3 * REG_BITS];
    let imm = &if_id[2 + 3 * REG_BITS..instr_width];

    // ---- Register file: 8 x width DFFs with write port from WB ----------
    // Writeback signals are defined later; allocate their nodes now.
    let wb_value = bus(&mut b, "wb_value", width);
    let wb_dest = bus(&mut b, "wb_dest", REG_BITS);
    let wb_we = b.node("wb_we", 1);

    let we_onehot = decoder(&mut b, "wdec", &wb_dest)?;
    let mut regs: Vec<Vec<NodeId>> = Vec::with_capacity(8);
    for (r, &we_bit) in we_onehot.iter().enumerate() {
        let we_r = b.fresh(1);
        b.element(
            &format!("we{r}"),
            ElementKind::And,
            GATE_DELAY,
            &[we_bit, wb_we],
            &[we_r],
        )?;
        // next = we ? wb_value : current. The register q nodes are created
        // by `register`, so build the mux on freshly named d nodes.
        let d = bus(&mut b, &format!("r{r}d"), width);
        let q = register_r(&mut b, &format!("r{r}"), clk, rst, &d)?;
        for i in 0..width {
            let m = mux2(&mut b, &format!("r{r}m{i}"), we_r, q[i], wb_value[i])?;
            b.element(
                &format!("r{r}link{i}"),
                ElementKind::Buf,
                GATE_DELAY,
                &[m],
                &[d[i]],
            )?;
        }
        regs.push(q);
    }

    // ---- Read ports: 8:1 mux trees per bit ------------------------------
    let rs_val = read_port(&mut b, "rs", rs, &regs, width)?;
    let rt_val = read_port(&mut b, "rt", rt, &regs, width)?;

    // Immediate zero-extended to the datapath width.
    let imm_ext: Vec<NodeId> = (0..width)
        .map(|i| if i < imm.len() { imm[i] } else { zero })
        .collect();
    // Operand B: rt for opcode[1] = 0, immediate otherwise.
    let b_op = mux2_bus(&mut b, "bsel", opcode[1], &rt_val, &imm_ext)?;

    // ---- Decode/Execute pipeline register -------------------------------
    let mut dx_in: Vec<NodeId> = Vec::new();
    dx_in.extend_from_slice(&rs_val);
    dx_in.extend_from_slice(&b_op);
    dx_in.extend_from_slice(opcode);
    dx_in.extend_from_slice(rd);
    let id_ex = register_r(&mut b, "id_ex", clk, rst, &dx_in)?;
    let ex_a = &id_ex[0..width];
    let ex_b = &id_ex[width..2 * width];
    let ex_op = &id_ex[2 * width..2 * width + 2];
    let ex_rd = &id_ex[2 * width + 2..2 * width + 2 + REG_BITS];

    // ---- ALU: add / and / or / xor selected by ex_op ---------------------
    let mut add_bits = Vec::with_capacity(width);
    {
        let mut carry = zero;
        for i in 0..width {
            let (s, c) = full_adder(&mut b, &format!("alu_add{i}"), ex_a[i], ex_b[i], carry)?;
            add_bits.push(s);
            carry = c;
        }
    }
    let mut and_bits = Vec::with_capacity(width);
    let mut or_bits = Vec::with_capacity(width);
    let mut xor_bits = Vec::with_capacity(width);
    for i in 0..width {
        let y = b.fresh(1);
        b.element(
            &format!("alu_and{i}"),
            ElementKind::And,
            GATE_DELAY,
            &[ex_a[i], ex_b[i]],
            &[y],
        )?;
        and_bits.push(y);
        let y = b.fresh(1);
        b.element(
            &format!("alu_or{i}"),
            ElementKind::Or,
            GATE_DELAY,
            &[ex_a[i], ex_b[i]],
            &[y],
        )?;
        or_bits.push(y);
        xor_bits.push(xor2(&mut b, &format!("alu_xor{i}"), ex_a[i], ex_b[i])?);
    }
    // Result select: op 00 add, 01 and, 10 or, 11 xor.
    let lo = mux2_bus(&mut b, "alusel_lo", ex_op[0], &add_bits, &and_bits)?;
    let hi = mux2_bus(&mut b, "alusel_hi", ex_op[0], &or_bits, &xor_bits)?;
    let alu_out = mux2_bus(&mut b, "alusel", ex_op[1], &lo, &hi)?;

    // ---- Writeback: link ALU result into the pre-allocated WB nodes -----
    let mut wb_in: Vec<NodeId> = Vec::new();
    wb_in.extend_from_slice(&alu_out);
    wb_in.extend_from_slice(ex_rd);
    wb_in.push(one);
    let ex_wb = register_r(&mut b, "ex_wb", clk, rst, &wb_in)?;
    for i in 0..width {
        b.element(
            &format!("wbv{i}"),
            ElementKind::Buf,
            GATE_DELAY,
            &[ex_wb[i]],
            &[wb_value[i]],
        )?;
    }
    for i in 0..REG_BITS {
        b.element(
            &format!("wbd{i}"),
            ElementKind::Buf,
            GATE_DELAY,
            &[ex_wb[width + i]],
            &[wb_dest[i]],
        )?;
    }
    b.element(
        "wbwe",
        ElementKind::Buf,
        GATE_DELAY,
        &[ex_wb[width + REG_BITS]],
        &[wb_we],
    )?;

    let wb_result = ex_wb[0..width].to_vec();
    Ok(PipelinedCpu {
        netlist: b.finish()?,
        clk,
        pc,
        wb_result,
        half_period,
    })
}

/// An 8:1 read port: per-bit three-level mux tree over the register file.
fn read_port(
    b: &mut Builder,
    name: &str,
    sel: &[NodeId],
    regs: &[Vec<NodeId>],
    width: usize,
) -> Result<Vec<NodeId>, BuildError> {
    let mut out = Vec::with_capacity(width);
    #[allow(clippy::needless_range_loop)] // `i` indexes every register's bit i
    for i in 0..width {
        // Level 0: 8 -> 4 on sel[0].
        let mut layer: Vec<NodeId> = Vec::with_capacity(4);
        for k in 0..4 {
            layer.push(mux2(
                b,
                &format!("{name}p{i}l0m{k}"),
                sel[0],
                regs[2 * k][i],
                regs[2 * k + 1][i],
            )?);
        }
        // Level 1: 4 -> 2 on sel[1].
        let m0 = mux2(b, &format!("{name}p{i}l1m0"), sel[1], layer[0], layer[1])?;
        let m1 = mux2(b, &format!("{name}p{i}l1m1"), sel[1], layer[2], layer[3])?;
        // Level 2: 2 -> 1 on sel[2].
        out.push(mux2(b, &format!("{name}p{i}l2"), sel[2], m0, m1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::analyze::{feedback_elements, levelize};
    use parsim_netlist::NetlistStats;

    #[test]
    fn matches_paper_scale() {
        let cpu = pipelined_cpu(16, 128).unwrap();
        let stats = NetlistStats::compute(&cpu.netlist);
        // "about 3000 non-memory gates": count non-DFF, non-generator gates.
        let dffs = stats.kind_counts.get("dffr").copied().unwrap_or(0);
        let gens = stats.num_generators;
        let gates = stats.num_elements - dffs - gens;
        assert!(
            (1800..=5000).contains(&gates),
            "expected ~3000 gates, got {gates}"
        );
        assert!(dffs > 150, "pipeline + register file flops, got {dffs}");
    }

    #[test]
    fn is_sequential_with_feedback() {
        let cpu = pipelined_cpu(8, 64).unwrap();
        // The PC loop and register-file write-back are feedback paths.
        assert!(!feedback_elements(&cpu.netlist).is_empty());
        // But no *combinational* cycles.
        assert!(levelize(&cpu.netlist).cyclic.is_empty());
    }

    #[test]
    fn combinational_depth_fits_half_period() {
        let cpu = pipelined_cpu(16, 128).unwrap();
        let lv = levelize(&cpu.netlist);
        assert!(
            (lv.max_level as u64) < cpu.half_period,
            "depth {} exceeds half period {}",
            lv.max_level,
            cpu.half_period
        );
    }

    #[test]
    #[should_panic(expected = "half_period too short")]
    fn rejects_fast_clock() {
        let _ = pipelined_cpu(16, 10);
    }
}
