//! Composite gate-level building blocks.
//!
//! All helpers instantiate only primitive gates (NAND-heavy, the way
//! 1980s standard-cell netlists looked) with unit delay, on 1-bit nodes.
//! Names are derived from a caller-supplied prefix, so callers must keep
//! prefixes unique per instantiation.

use parsim_logic::{Delay, ElementKind, Value};
use parsim_netlist::{BuildError, Builder, NodeId};

/// The unit gate delay used throughout the gate-level circuits.
pub const GATE_DELAY: Delay = Delay(1);

/// Creates `width` fresh 1-bit nodes named `prefix0..prefix{width-1}`
/// (LSB first).
pub fn bus(b: &mut Builder, prefix: &str, width: usize) -> Vec<NodeId> {
    (0..width)
        .map(|i| b.node(&format!("{prefix}{i}"), 1))
        .collect()
}

/// Instantiates a 2-input NAND, returning its output node.
pub fn nand2(
    b: &mut Builder,
    name: &str,
    a: NodeId,
    c: NodeId,
) -> Result<NodeId, BuildError> {
    let y = b.fresh(1);
    b.element(name, ElementKind::Nand, GATE_DELAY, &[a, c], &[y])?;
    Ok(y)
}

/// XOR built from four NANDs (the classic 4-gate realization).
pub fn xor2(
    b: &mut Builder,
    prefix: &str,
    a: NodeId,
    c: NodeId,
) -> Result<NodeId, BuildError> {
    let n1 = nand2(b, &format!("{prefix}_n1"), a, c)?;
    let n2 = nand2(b, &format!("{prefix}_n2"), a, n1)?;
    let n3 = nand2(b, &format!("{prefix}_n3"), c, n1)?;
    nand2(b, &format!("{prefix}_n4"), n2, n3)
}

/// Half adder: returns `(sum, carry)`. 4 NANDs for the XOR plus an AND.
pub fn half_adder(
    b: &mut Builder,
    prefix: &str,
    a: NodeId,
    c: NodeId,
) -> Result<(NodeId, NodeId), BuildError> {
    let sum = xor2(b, &format!("{prefix}_x"), a, c)?;
    let carry = b.fresh(1);
    b.element(
        &format!("{prefix}_and"),
        ElementKind::And,
        GATE_DELAY,
        &[a, c],
        &[carry],
    )?;
    Ok((sum, carry))
}

/// The classic 9-NAND full adder: returns `(sum, cout)`.
pub fn full_adder(
    b: &mut Builder,
    prefix: &str,
    a: NodeId,
    c: NodeId,
    cin: NodeId,
) -> Result<(NodeId, NodeId), BuildError> {
    let n1 = nand2(b, &format!("{prefix}_n1"), a, c)?;
    let n2 = nand2(b, &format!("{prefix}_n2"), a, n1)?;
    let n3 = nand2(b, &format!("{prefix}_n3"), c, n1)?;
    let s1 = nand2(b, &format!("{prefix}_n4"), n2, n3)?; // a ^ c
    let n4 = nand2(b, &format!("{prefix}_n5"), s1, cin)?;
    let n5 = nand2(b, &format!("{prefix}_n6"), s1, n4)?;
    let n6 = nand2(b, &format!("{prefix}_n7"), cin, n4)?;
    let sum = nand2(b, &format!("{prefix}_n8"), n5, n6)?;
    let cout = nand2(b, &format!("{prefix}_n9"), n4, n1)?;
    Ok((sum, cout))
}

/// Ripple-carry adder over bit vectors (LSB first): returns `(sum bits,
/// carry out)`.
///
/// # Panics
///
/// Panics if the operand vectors differ in length or are empty.
pub fn ripple_adder(
    b: &mut Builder,
    prefix: &str,
    a: &[NodeId],
    c: &[NodeId],
    cin: NodeId,
) -> Result<(Vec<NodeId>, NodeId), BuildError> {
    assert_eq!(a.len(), c.len(), "operand widths differ");
    assert!(!a.is_empty(), "empty operands");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (i, (&ai, &ci)) in a.iter().zip(c).enumerate() {
        let (s, co) = full_adder(b, &format!("{prefix}_fa{i}"), ai, ci, carry)?;
        sum.push(s);
        carry = co;
    }
    Ok((sum, carry))
}

/// 2:1 mux from primitive gates: `y = sel ? b : a`. 4 gates.
pub fn mux2(
    b: &mut Builder,
    prefix: &str,
    sel: NodeId,
    a: NodeId,
    c: NodeId,
) -> Result<NodeId, BuildError> {
    let nsel = b.fresh(1);
    b.element(
        &format!("{prefix}_inv"),
        ElementKind::Not,
        GATE_DELAY,
        &[sel],
        &[nsel],
    )?;
    let t1 = b.fresh(1);
    b.element(
        &format!("{prefix}_a0"),
        ElementKind::And,
        GATE_DELAY,
        &[a, nsel],
        &[t1],
    )?;
    let t2 = b.fresh(1);
    b.element(
        &format!("{prefix}_a1"),
        ElementKind::And,
        GATE_DELAY,
        &[c, sel],
        &[t2],
    )?;
    let y = b.fresh(1);
    b.element(
        &format!("{prefix}_or"),
        ElementKind::Or,
        GATE_DELAY,
        &[t1, t2],
        &[y],
    )?;
    Ok(y)
}

/// Per-bit 2:1 mux over buses.
///
/// # Panics
///
/// Panics if the bus widths differ.
pub fn mux2_bus(
    b: &mut Builder,
    prefix: &str,
    sel: NodeId,
    a: &[NodeId],
    c: &[NodeId],
) -> Result<Vec<NodeId>, BuildError> {
    assert_eq!(a.len(), c.len(), "bus widths differ");
    a.iter()
        .zip(c)
        .enumerate()
        .map(|(i, (&ai, &ci))| mux2(b, &format!("{prefix}_b{i}"), sel, ai, ci))
        .collect()
}

/// A register: one rising-edge DFF per bit, all sharing `clk`.
pub fn register(
    b: &mut Builder,
    prefix: &str,
    clk: NodeId,
    d: &[NodeId],
) -> Result<Vec<NodeId>, BuildError> {
    d.iter()
        .enumerate()
        .map(|(i, &di)| {
            let q = b.node(&format!("{prefix}_q{i}"), 1);
            b.element(
                &format!("{prefix}_ff{i}"),
                ElementKind::Dff { width: 1 },
                GATE_DELAY,
                &[clk, di],
                &[q],
            )?;
            Ok(q)
        })
        .collect()
}

/// A resettable register: one rising-edge DFF with asynchronous reset per
/// bit, all sharing `clk` and `rst`. Resets to all-zeros, which is what
/// breaks the power-on X-lock in sequential circuits.
pub fn register_r(
    b: &mut Builder,
    prefix: &str,
    clk: NodeId,
    rst: NodeId,
    d: &[NodeId],
) -> Result<Vec<NodeId>, BuildError> {
    d.iter()
        .enumerate()
        .map(|(i, &di)| {
            let q = b.node(&format!("{prefix}_q{i}"), 1);
            b.element(
                &format!("{prefix}_ff{i}"),
                ElementKind::DffR { width: 1 },
                GATE_DELAY,
                &[clk, di, rst],
                &[q],
            )?;
            Ok(q)
        })
        .collect()
}

/// A one-hot decoder over `sel` (LSB first): returns `2^sel.len()` outputs.
pub fn decoder(
    b: &mut Builder,
    prefix: &str,
    sel: &[NodeId],
) -> Result<Vec<NodeId>, BuildError> {
    let n = sel.len();
    // Inverted selects.
    let mut nsel = Vec::with_capacity(n);
    for (i, &s) in sel.iter().enumerate() {
        let ns = b.fresh(1);
        b.element(
            &format!("{prefix}_inv{i}"),
            ElementKind::Not,
            GATE_DELAY,
            &[s],
            &[ns],
        )?;
        nsel.push(ns);
    }
    let mut outs = Vec::with_capacity(1 << n);
    for code in 0..(1usize << n) {
        let terms: Vec<NodeId> = (0..n)
            .map(|bit| {
                if code & (1 << bit) != 0 {
                    sel[bit]
                } else {
                    nsel[bit]
                }
            })
            .collect();
        let y = b.fresh(1);
        b.element(
            &format!("{prefix}_and{code}"),
            ElementKind::And,
            GATE_DELAY,
            &terms,
            &[y],
        )?;
        outs.push(y);
    }
    Ok(outs)
}

/// A constant-driver node holding the given bit.
pub fn const_bit(b: &mut Builder, name: &str, value: bool) -> Result<NodeId, BuildError> {
    let n = b.node(name, 1);
    b.element(
        &format!("{name}_drv"),
        ElementKind::Const {
            value: Value::bit(value),
        },
        Delay(1),
        &[],
        &[n],
    )?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::NetlistStats;

    #[test]
    fn full_adder_is_nine_gates() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let cin = b.node("cin", 1);
        full_adder(&mut b, "fa", a, c, cin).unwrap();
        let n = b.finish().unwrap();
        let stats = NetlistStats::compute(&n);
        assert_eq!(stats.kind_counts["nand"], 9);
        assert_eq!(stats.num_elements, 9);
    }

    #[test]
    fn ripple_adder_size_scales() {
        let mut b = Builder::new();
        let a = bus(&mut b, "a", 8);
        let c = bus(&mut b, "c", 8);
        let cin = const_bit(&mut b, "cin", false).unwrap();
        let (sum, _) = ripple_adder(&mut b, "add", &a, &c, cin).unwrap();
        assert_eq!(sum.len(), 8);
        let n = b.finish().unwrap();
        assert_eq!(NetlistStats::compute(&n).kind_counts["nand"], 72);
    }

    #[test]
    fn decoder_output_count() {
        let mut b = Builder::new();
        let sel = bus(&mut b, "s", 3);
        let outs = decoder(&mut b, "dec", &sel).unwrap();
        assert_eq!(outs.len(), 8);
    }

    #[test]
    fn register_builds_one_dff_per_bit() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let d = bus(&mut b, "d", 5);
        let q = register(&mut b, "r", clk, &d).unwrap();
        assert_eq!(q.len(), 5);
        let n = b.finish().unwrap();
        assert_eq!(NetlistStats::compute(&n).kind_counts["dff"], 5);
    }
}
