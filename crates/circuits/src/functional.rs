//! The functional-level 16-bit multiplier (~100 heterogeneous RTL
//! elements).
//!
//! The paper's functional multiplier has "only about 100 elements, and the
//! elements have very different evaluation times (there are inverters,
//! 8-bit adders, and 3-bit multipliers)" (§3.1). This generator rebuilds
//! the same workload class: the 16-bit operands are sliced into 3-bit
//! chunks, multiplied pairwise by 36 [`Multiplier`] blocks of width 3,
//! shifted into place by wiring elements, and accumulated by an adder
//! tree. Element evaluation costs range from 1 (wiring) to ~18 (wide
//! adders) inverter-events, reproducing the heterogeneity that makes
//! static load balancing hard.
//!
//! [`Multiplier`]: parsim_logic::ElementKind::Multiplier

use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::{BuildError, Builder, Netlist, NodeId};

/// A functional-level multiplier circuit plus its probe points.
#[derive(Debug, Clone)]
pub struct FunctionalMultiplier {
    /// The generated netlist.
    pub netlist: Netlist,
    /// The 16-bit operand A input node.
    pub a_input: NodeId,
    /// The 16-bit operand B input node.
    pub b_input: NodeId,
    /// The 32-bit product node.
    pub product: NodeId,
    /// The operand schedule driving the inputs.
    pub operands: Vec<(u64, u64)>,
    /// Ticks between successive operand pairs.
    pub period: u64,
}

impl FunctionalMultiplier {
    /// The expected 32-bit product for each scheduled operand pair.
    pub fn expected_products(&self) -> Vec<u64> {
        self.operands
            .iter()
            .map(|&(a, b)| a.wrapping_mul(b) & 0xffff_ffff)
            .collect()
    }

    /// The time at which the `k`-th product is guaranteed settled.
    pub fn sample_time(&self, k: usize) -> Time {
        Time((k as u64 + 1) * self.period - 1)
    }

    /// An end time covering the whole schedule once.
    pub fn schedule_end(&self) -> Time {
        Time(self.operands.len() as u64 * self.period)
    }
}

/// Builds the functional-level 16-bit multiplier fed by the given operand
/// schedule, one pair every `period` ticks.
///
/// # Errors
///
/// Returns a [`BuildError`] only on internal inconsistency.
///
/// # Panics
///
/// Panics if the schedule is empty, if any operand exceeds 16 bits, or if
/// `period < 32` (the settling budget of the adder tree).
///
/// # Examples
///
/// ```
/// let m = parsim_circuits::functional_multiplier(&[(40_000, 50_000)], 64)?;
/// assert_eq!(m.expected_products(), vec![2_000_000_000]);
/// assert!(m.netlist.num_elements() < 200); // ~100 functional elements
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn functional_multiplier(
    operands: &[(u64, u64)],
    period: u64,
) -> Result<FunctionalMultiplier, BuildError> {
    assert!(!operands.is_empty(), "operand schedule must be nonempty");
    assert!(
        operands.iter().all(|&(a, b)| a <= 0xffff && b <= 0xffff),
        "operands must fit in 16 bits"
    );
    assert!(period >= 32, "period too short for settling");

    let mut b = Builder::new();
    let a_input = pattern_input(&mut b, "a", operands.iter().map(|&(a, _)| a), period)?;
    let b_input = pattern_input(&mut b, "b", operands.iter().map(|&(_, v)| v), period)?;

    // Slice both operands into six 3-bit chunks (the top chunk is the
    // single bit 15, zero-extended).
    let a_chunks = chunk3(&mut b, "a", a_input)?;
    let b_chunks = chunk3(&mut b, "b", b_input)?;

    // 36 3-bit multipliers; each 6-bit product is shifted to its weight.
    let mut terms: Vec<NodeId> = Vec::with_capacity(36);
    for (i, &ai) in a_chunks.iter().enumerate() {
        for (j, &bj) in b_chunks.iter().enumerate() {
            let p = b.fresh(6);
            b.element(
                &format!("mul{i}_{j}"),
                ElementKind::Multiplier { width: 3 },
                Delay(2),
                &[ai, bj],
                &[p],
            )?;
            let shifted = b.fresh(32);
            b.element(
                &format!("pos{i}_{j}"),
                ElementKind::Shl {
                    in_width: 6,
                    out_width: 32,
                    amount: (3 * (i + j)) as u8,
                },
                Delay(1),
                &[p],
                &[shifted],
            )?;
            terms.push(shifted);
        }
    }

    // Binary adder tree over the 36 positioned terms.
    let cin = b.node("gnd", 1);
    b.element(
        "gnd_drv",
        ElementKind::Const {
            value: Value::bit(false),
        },
        Delay(1),
        &[],
        &[cin],
    )?;
    let mut level = 0usize;
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        for (k, pair) in terms.chunks(2).enumerate() {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let sum = b.fresh(32);
            let cout = b.fresh(1);
            b.element(
                &format!("add{level}_{k}"),
                ElementKind::Adder { width: 32 },
                Delay(2),
                &[pair[0], pair[1], cin],
                &[sum, cout],
            )?;
            next.push(sum);
        }
        terms = next;
        level += 1;
    }
    let product = terms[0];

    Ok(FunctionalMultiplier {
        netlist: b.finish()?,
        a_input,
        b_input,
        product,
        operands: operands.to_vec(),
        period,
    })
}

fn pattern_input(
    b: &mut Builder,
    name: &str,
    schedule: impl Iterator<Item = u64>,
    period: u64,
) -> Result<NodeId, BuildError> {
    let node = b.node(name, 16);
    let values: Vec<Value> = schedule.map(|v| Value::from_u64(v, 16)).collect();
    b.element(
        &format!("{name}gen"),
        ElementKind::Pattern {
            period,
            values: values.into(),
        },
        Delay(1),
        &[],
        &[node],
    )?;
    Ok(node)
}

/// Slices a 16-bit node into six 3-bit chunks, LSB chunk first.
fn chunk3(b: &mut Builder, prefix: &str, input: NodeId) -> Result<Vec<NodeId>, BuildError> {
    let mut chunks = Vec::with_capacity(6);
    for i in 0..6usize {
        let lo = (3 * i) as u8;
        let w = if lo + 3 <= 16 { 3u8 } else { 16 - lo };
        let raw = b.fresh(w);
        b.element(
            &format!("{prefix}_sl{i}"),
            ElementKind::Slice {
                in_width: 16,
                lo,
                width: w,
            },
            Delay(1),
            &[input],
            &[raw],
        )?;
        let chunk = if w == 3 {
            raw
        } else {
            let ext = b.fresh(3);
            b.element(
                &format!("{prefix}_zx{i}"),
                ElementKind::ZeroExt {
                    in_width: w,
                    out_width: 3,
                },
                Delay(1),
                &[raw],
                &[ext],
            )?;
            ext
        };
        chunks.push(chunk);
    }
    Ok(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::NetlistStats;

    #[test]
    fn element_mix_matches_paper_scale() {
        let m = functional_multiplier(&[(1, 2)], 64).unwrap();
        let stats = NetlistStats::compute(&m.netlist);
        assert_eq!(stats.kind_counts["mul"], 36, "36 3-bit multipliers");
        assert_eq!(stats.kind_counts["add"], 35, "adder tree");
        assert!(
            stats.num_elements >= 100 && stats.num_elements <= 200,
            "~100-200 functional elements, got {}",
            stats.num_elements
        );
    }

    #[test]
    fn costs_are_heterogeneous() {
        let m = functional_multiplier(&[(1, 2)], 64).unwrap();
        let costs: Vec<u64> = m
            .netlist
            .elements()
            .iter()
            .map(|e| e.kind().eval_cost())
            .collect();
        let min = *costs.iter().min().unwrap();
        let max = *costs.iter().max().unwrap();
        assert!(max >= 10 * min, "cost spread {min}..{max} too flat");
    }

    #[test]
    fn no_feedback_and_settles() {
        let m = functional_multiplier(&[(9, 9)], 64).unwrap();
        assert!(parsim_netlist::analyze::feedback_elements(&m.netlist).is_empty());
        let lv = parsim_netlist::analyze::levelize(&m.netlist);
        // Slice + mul + shl + 6-deep adder tree.
        assert!(lv.max_level >= 8 && lv.max_level <= 16, "{}", lv.max_level);
    }

    #[test]
    fn expected_products_mask_to_32_bits() {
        let m = functional_multiplier(&[(0xffff, 0xffff)], 64).unwrap();
        assert_eq!(m.expected_products(), vec![0xfffe_0001]);
    }
}
