//! Minimal, self-contained stand-in for the `rand` 0.8 API surface the
//! workspace uses, so builds never depend on registry resolution.
//!
//! Only the pieces parsim actually calls are provided: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` (over integer `Range`/`RangeInclusive`), and
//! `gen_bool`. The generator is SplitMix64: deterministic per seed, solid
//! 64-bit avalanche, and trivially portable — equal seeds produce equal
//! streams on every platform, which is the only property the circuit
//! generators and property tests rely on.

use std::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `u64` (all supported types fit).
    fn to_u64(self) -> u64;
    /// Narrows from `u64`; callers guarantee the value fits.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Returns the inclusive `(low, high)` bounds.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, T::from_u64(self.end.to_u64() - 1))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        (lo, hi)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (integers, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniformly samples an integer from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let span = hi.to_u64() - lo.to_u64();
        if span == u64::MAX {
            return T::from_u64(self.next_u64());
        }
        // Lemire's widening-multiply bounded sample (bias < 2^-64 for the
        // tiny spans used here; fine for test-data generation).
        let n = span + 1;
        let hi128 = ((self.next_u64() as u128) * (n as u128)) >> 64;
        T::from_u64(lo.to_u64() + hi128 as u64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        // 53 uniform mantissa bits in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::SmallRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = SmallRng::seed_from_u64(7);
    /// let mut b = SmallRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// let d: u64 = a.gen_range(1..=6);
    /// assert!((1..=6).contains(&d));
    /// ```
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..3u8);
            assert!(v < 3);
            let w = rng.gen_range(1..=6u64);
            assert!((1..=6).contains(&w));
            let u = rng.gen_range(0..17usize);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
