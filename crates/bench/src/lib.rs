//! Shared helpers for the benchmark suite.
//!
//! The actual benchmarks live in `benches/`: one Criterion group per paper
//! figure (`figures`), real-engine wall-time benchmarks (`engines`),
//! microbenchmarks of the lock-free substrate (`micro`), and design-choice
//! ablations (`ablations`). The *numbers* that reproduce the paper's
//! tables come from `parsim-harness`'s `figures` binary; these benchmarks
//! track the wall-clock cost of the implementations themselves.

use parsim_circuits::{inverter_array, InverterArray};

/// A small inverter array sized so each benchmark iteration stays in the
/// low-millisecond range on one core.
///
/// # Panics
///
/// Panics only on internal generator inconsistency.
pub fn bench_array() -> InverterArray {
    inverter_array(16, 8, 2).expect("generator is self-consistent")
}

/// Short Criterion settings suitable for a single-core machine.
pub fn quick() -> criterion_config::Settings {
    criterion_config::Settings {
        sample_size: 10,
        measurement_secs: 1.0,
        warmup_millis: 300,
    }
}

/// Tiny indirection so the benches don't repeat magic numbers.
pub mod criterion_config {
    /// Criterion tuning knobs used by every bench in this crate.
    #[derive(Debug, Clone, Copy)]
    pub struct Settings {
        /// Criterion sample count.
        pub sample_size: usize,
        /// Measurement window in seconds.
        pub measurement_secs: f64,
        /// Warm-up in milliseconds.
        pub warmup_millis: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_array_is_small() {
        let a = bench_array();
        assert!(a.netlist.num_elements() < 200);
        assert_eq!(quick().sample_size, 10);
    }
}
