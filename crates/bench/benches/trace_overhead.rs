//! Cost of the tracing hooks on the chaotic engine's hot path.
//!
//! The `trace` feature is designed to be near-zero cost when disabled:
//! without the feature every hook is an empty inline function, and with
//! the feature but no [`SimConfig::with_trace`] each hook is a branch on
//! a `None` recorder. This bench pins both claims:
//!
//! - `chaotic_untraced` runs with no trace config. Compare this number
//!   across a `--features trace` build and a default build — the delta is
//!   the disabled-hook overhead, required to stay within noise (≤2%).
//! - `chaotic_traced` (only under `--features trace`) runs with recording
//!   on, measuring the full per-event recording cost.
//!
//! ```text
//! cargo bench -p parsim-bench --bench trace_overhead
//! cargo bench -p parsim-bench --bench trace_overhead --features trace
//! ```
//!
//! Setting `PARSIM_BENCH_QUICK` shrinks sample counts and measurement
//! windows so CI can smoke-test the benchmark without paying for
//! statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_bench::{bench_array, quick};
use parsim_core::{ChaoticAsync, SimConfig};
use parsim_logic::Time;

fn settings() -> parsim_bench::criterion_config::Settings {
    let mut q = quick();
    if std::env::var_os("PARSIM_BENCH_QUICK").is_some() {
        q.sample_size = 10; // criterion's floor
        q.measurement_secs = 0.05;
        q.warmup_millis = 10;
    }
    q
}

fn trace_overhead(c: &mut Criterion) {
    let q = settings();
    let arr = bench_array();
    let netlist = &arr.netlist;
    let cfg = SimConfig::new(Time(400)).threads(2);
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("chaotic_untraced", |b| {
        b.iter(|| ChaoticAsync::run(netlist, &cfg).unwrap())
    });
    #[cfg(feature = "trace")]
    g.bench_function("chaotic_traced", |b| {
        let traced = cfg.clone().with_trace(parsim_core::TraceConfig::default());
        b.iter(|| ChaoticAsync::run(netlist, &traced).unwrap())
    });
    g.finish();
}

criterion_group!(benches, trace_overhead);
criterion_main!(benches);
