//! Microbenchmarks of the lock-free substrate and evaluation kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_bench::quick;
use parsim_logic::{evaluate, ElemState, ElementKind, Value};
use parsim_queue::{channel, grid, ActivationState, CentralQueue};

fn spsc_throughput(c: &mut Criterion) {
    let q = quick();
    let mut g = c.benchmark_group("spsc");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("send_recv_1k", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = channel::<u64>();
            for i in 0..1000 {
                tx.send(i);
            }
            let mut sum = 0u64;
            while let Some(v) = rx.recv() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    g.bench_function("central_queue_1k", |b| {
        b.iter(|| {
            let q = CentralQueue::new();
            for i in 0..1000u64 {
                q.push(i);
            }
            let mut sum = 0u64;
            while let Some(v) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    g.bench_function("grid4_scatter_1k", |b| {
        b.iter(|| {
            let (mut senders, mut receivers) = grid::<u64>(4);
            for i in 0..1000 {
                senders[(i % 4) as usize].send(i);
            }
            let mut sum = 0u64;
            for rx in receivers.iter_mut() {
                while let Some(v) = rx.recv() {
                    sum = sum.wrapping_add(v);
                }
            }
            sum
        })
    });
    g.finish();
}

fn activation_machine(c: &mut Criterion) {
    let q = quick();
    let mut g = c.benchmark_group("activation");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("activate_run_cycle", |b| {
        let st = ActivationState::new();
        b.iter(|| {
            if st.try_activate() {
                st.begin_run();
                let _ = st.finish_run();
            }
        })
    });
    g.finish();
}

fn evaluation_kernel(c: &mut Criterion) {
    let q = quick();
    let mut g = c.benchmark_group("evaluate");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    let a = Value::from_u64(0xa5a5, 16);
    let bb = Value::from_u64(0x5a5a, 16);
    let cin = Value::bit(false);
    g.bench_function("nand2", |b| {
        let mut st = ElemState::None;
        let x = Value::bit(true);
        let y = Value::bit(false);
        b.iter(|| evaluate(&ElementKind::Nand, &[x, y], &mut st))
    });
    g.bench_function("adder16", |b| {
        let mut st = ElemState::None;
        b.iter(|| evaluate(&ElementKind::Adder { width: 16 }, &[a, bb, cin], &mut st))
    });
    g.bench_function("dff", |b| {
        let kind = ElementKind::Dff { width: 16 };
        let mut st = ElemState::init(&kind);
        let clk = Value::bit(true);
        b.iter(|| evaluate(&kind, &[clk, a], &mut st))
    });
    g.finish();
}

criterion_group!(benches, spsc_throughput, activation_machine, evaluation_kernel);
criterion_main!(benches);
