//! One benchmark group per paper figure: the cost of regenerating each
//! figure's data points on the virtual Multimax.
//!
//! The figure *values* are produced by `parsim-harness`'s `figures`
//! binary; these benchmarks keep the models' own runtime honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parsim_bench::{bench_array, quick};
use parsim_circuits::{functional_multiplier, gate_multiplier};
use parsim_logic::Time;
use parsim_machine::{
    model_async, model_compiled, model_seq, model_sync, MachineConfig, PartitionStrategy,
};

fn fig1_event_driven(c: &mut Criterion) {
    let q = quick();
    let gate = gate_multiplier(8, &[(200, 100), (255, 255)], 160).expect("valid circuit");
    let end = gate.schedule_end();
    let mut g = c.benchmark_group("fig1_event_driven");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    for procs in [1usize, 8, 15] {
        g.bench_with_input(BenchmarkId::new("gate_mult", procs), &procs, |b, &p| {
            b.iter(|| model_sync(&gate.netlist, end, &MachineConfig::multimax(p)))
        });
    }
    g.finish();
}

fn fig2_event_density(c: &mut Criterion) {
    let q = quick();
    let mut g = c.benchmark_group("fig2_event_density");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    for toggle in [1u64, 8] {
        let arr = parsim_circuits::inverter_array(16, 8, toggle).expect("valid circuit");
        g.bench_with_input(
            BenchmarkId::new("sync16", format!("toggle{toggle}")),
            &arr,
            |b, arr| b.iter(|| model_sync(&arr.netlist, Time(150), &MachineConfig::multimax(16))),
        );
    }
    g.finish();
}

fn fig3_compiled(c: &mut Criterion) {
    let q = quick();
    let func = functional_multiplier(&[(7, 9)], 64).expect("valid circuit");
    let mut g = c.benchmark_group("fig3_compiled");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    for procs in [1usize, 15] {
        g.bench_with_input(BenchmarkId::new("func_mult", procs), &procs, |b, &p| {
            b.iter(|| {
                model_compiled(
                    &func.netlist,
                    Time(64),
                    &MachineConfig::multimax(p),
                    PartitionStrategy::RoundRobin,
                )
            })
        });
    }
    g.finish();
}

fn fig4_async(c: &mut Criterion) {
    let q = quick();
    let arr = bench_array();
    let mut g = c.benchmark_group("fig4_async");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    for procs in [1usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("inv_array", procs), &procs, |b, &p| {
            b.iter(|| model_async(&arr.netlist, Time(150), &MachineConfig::multimax(p)))
        });
    }
    g.finish();
}

fn fig5_comparison(c: &mut Criterion) {
    let q = quick();
    let arr = bench_array();
    let mut g = c.benchmark_group("fig5_comparison");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("model_seq_baseline", |b| {
        b.iter(|| model_seq(&arr.netlist, Time(150), &MachineConfig::multimax(1).cost))
    });
    g.bench_function("model_sync16", |b| {
        b.iter(|| model_sync(&arr.netlist, Time(150), &MachineConfig::multimax(16)))
    });
    g.bench_function("model_async16", |b| {
        b.iter(|| model_async(&arr.netlist, Time(150), &MachineConfig::multimax(16)))
    });
    g.finish();
}

criterion_group!(
    benches,
    fig1_event_driven,
    fig2_event_density,
    fig3_compiled,
    fig4_async,
    fig5_comparison
);
criterion_main!(benches);
