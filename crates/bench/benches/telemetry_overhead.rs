//! Cost of the always-on telemetry registry on the engine hot paths.
//!
//! Unlike tracing, telemetry has no feature gate — every run publishes
//! into the sharded registry. The publish discipline (per-step delta
//! adds for the step engines, micro-batched flushes for the chaotic
//! engine, never per-event) is supposed to keep the cost invisible: the
//! reference-circuit number must sit inside the noise band measured for
//! this workload before telemetry existed (1.19–1.71 ms).
//!
//! - `chaotic_base` is that reference workload: sampling off, so the
//!   only telemetry cost is the shard publishes themselves.
//! - `chaotic_sampled` adds a 1 ms sampler riding the watchdog thread,
//!   pinning the claim that in-run snapshotting is off-thread and does
//!   not perturb workers.
//! - `sync_base` covers the barrier engine's per-step publish cadence.
//!
//! ```text
//! cargo bench -p parsim-bench --bench telemetry_overhead
//! ```
//!
//! Setting `PARSIM_BENCH_QUICK` shrinks sample counts and measurement
//! windows so CI can smoke-test the benchmark without paying for
//! statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_bench::{bench_array, quick};
use parsim_core::{ChaoticAsync, SimConfig, SyncEventDriven};
use parsim_logic::Time;

fn settings() -> parsim_bench::criterion_config::Settings {
    let mut q = quick();
    if std::env::var_os("PARSIM_BENCH_QUICK").is_some() {
        q.sample_size = 10; // criterion's floor
        q.measurement_secs = 0.05;
        q.warmup_millis = 10;
    }
    q
}

fn telemetry_overhead(c: &mut Criterion) {
    let q = settings();
    let arr = bench_array();
    let netlist = &arr.netlist;
    let cfg = SimConfig::new(Time(400)).threads(2);
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("chaotic_base", |b| {
        b.iter(|| ChaoticAsync::run(netlist, &cfg).unwrap())
    });
    g.bench_function("chaotic_sampled", |b| {
        let sampled = cfg
            .clone()
            .sample_every(std::time::Duration::from_millis(1));
        b.iter(|| ChaoticAsync::run(netlist, &sampled).unwrap())
    });
    g.bench_function("sync_base", |b| {
        b.iter(|| SyncEventDriven::run(netlist, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
