//! Scalar vs word-parallel compiled-mode kernel.
//!
//! Compares one scalar `CompiledMode::run` pass against a 64-lane
//! `CompiledMode::run_batch` pass on three circuits: ISCAS c17, the
//! inverter array, and a random gate netlist. The batch pass does 64
//! simulations' worth of work per iteration, so an iteration that is
//! less than 64× slower than the scalar one is a net win; the precise
//! throughput numbers (events/sec, element-evals/sec, speedup) come from
//! the `bench2` harness binary, which writes `BENCH_2.json`.
//!
//! Setting `PARSIM_BENCH_QUICK` shrinks sample counts and measurement
//! windows so CI can smoke-test the benchmark without paying for
//! statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_bench::{bench_array, quick};
use parsim_circuits::{random_circuit, RandomCircuitParams};
use parsim_core::{CompiledMode, LaneStimulus, SimConfig};
use parsim_logic::Time;
use parsim_netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim_netlist::Netlist;

fn settings() -> parsim_bench::criterion_config::Settings {
    let mut q = quick();
    if std::env::var_os("PARSIM_BENCH_QUICK").is_some() {
        q.sample_size = 10; // criterion's floor
        q.measurement_secs = 0.05;
        q.warmup_millis = 10;
    }
    q
}

fn base_lanes(n: usize) -> Vec<LaneStimulus> {
    (0..n).map(|_| LaneStimulus::base()).collect()
}

fn scalar_vs_packed(c: &mut Criterion, group: &str, netlist: &Netlist, end: Time) {
    let q = settings();
    let cfg = SimConfig::new(end);
    let lanes = base_lanes(64);
    let mut g = c.benchmark_group(group);
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("scalar_x1", |b| {
        b.iter(|| CompiledMode::run(netlist, &cfg).unwrap())
    });
    g.bench_function("packed_64_lanes", |b| {
        b.iter(|| CompiledMode::run_batch(netlist, &cfg, &lanes).unwrap())
    });
    g.finish();
}

fn kernel_c17(c: &mut Criterion) {
    let circuit = from_bench(C17, &BenchOptions::default()).expect("c17 parses");
    scalar_vs_packed(c, "kernel_c17", &circuit.netlist, Time(2000));
}

fn kernel_inverter_array(c: &mut Criterion) {
    let arr = bench_array();
    scalar_vs_packed(c, "kernel_inverter_array", &arr.netlist, Time(400));
}

fn kernel_random_gates(c: &mut Criterion) {
    let params = RandomCircuitParams {
        elements: 300,
        inputs: 12,
        seq_fraction: 0.1,
        max_delay: 3,
        seed: 42,
    };
    let circuit = random_circuit(&params).expect("generator is self-consistent");
    scalar_vs_packed(c, "kernel_random_gates", &circuit.netlist, Time(500));
}

criterion_group!(benches, kernel_c17, kernel_inverter_array, kernel_random_gates);
criterion_main!(benches);
