//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! distributed queues, work stealing, controlling-value lookahead, and
//! event garbage collection.

use criterion::{criterion_group, criterion_main, Criterion};
use parsim_bench::{bench_array, quick};
use parsim_circuits::gate_multiplier;
use parsim_core::{ChaoticAsync, SimConfig};
use parsim_logic::Time;
use parsim_machine::{model_async, model_sync, MachineConfig};

fn queue_distribution(c: &mut Criterion) {
    let q = quick();
    let arr = bench_array();
    let mut g = c.benchmark_group("ablation_queues");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("distributed", |b| {
        b.iter(|| model_sync(&arr.netlist, Time(150), &MachineConfig::multimax(8)))
    });
    g.bench_function("central", |b| {
        let mut cfg = MachineConfig::multimax(8);
        cfg.distributed_queues = false;
        b.iter(|| model_sync(&arr.netlist, Time(150), &cfg))
    });
    g.finish();
}

fn work_stealing(c: &mut Criterion) {
    let q = quick();
    let arr = bench_array();
    let mut g = c.benchmark_group("ablation_stealing");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("stealing", |b| {
        b.iter(|| model_sync(&arr.netlist, Time(150), &MachineConfig::multimax(8)))
    });
    g.bench_function("static", |b| {
        let mut cfg = MachineConfig::multimax(8);
        cfg.work_stealing = false;
        b.iter(|| model_sync(&arr.netlist, Time(150), &cfg))
    });
    g.finish();
}

fn lookahead(c: &mut Criterion) {
    let q = quick();
    let m = gate_multiplier(8, &[(200, 100)], 160).expect("valid circuit");
    let end = m.schedule_end();
    let mut g = c.benchmark_group("ablation_lookahead");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("model_with", |b| {
        b.iter(|| model_async(&m.netlist, end, &MachineConfig::multimax(8)))
    });
    g.bench_function("model_without", |b| {
        let mut cfg = MachineConfig::multimax(8);
        cfg.lookahead = false;
        b.iter(|| model_async(&m.netlist, end, &cfg))
    });
    // The real engine, where lookahead trims validity-ratchet activations.
    let cfg = SimConfig::new(end);
    g.bench_function("engine_with", |b| {
        b.iter(|| ChaoticAsync::run(&m.netlist, &cfg).unwrap())
    });
    g.bench_function("engine_without", |b| {
        let cfg = cfg.clone().without_lookahead();
        b.iter(|| ChaoticAsync::run(&m.netlist, &cfg).unwrap())
    });
    g.finish();
}

fn garbage_collection(c: &mut Criterion) {
    let q = quick();
    let arr = bench_array();
    let cfg = SimConfig::new(Time(2000));
    let mut g = c.benchmark_group("ablation_gc");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("gc_on", |b| {
        b.iter(|| ChaoticAsync::run(&arr.netlist, &cfg).unwrap())
    });
    g.bench_function("gc_off", |b| {
        let cfg = cfg.clone().without_gc();
        b.iter(|| ChaoticAsync::run(&arr.netlist, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, queue_distribution, work_stealing, lookahead, garbage_collection);
criterion_main!(benches);
