//! Wall-clock benchmarks of the four real engines.
//!
//! On this single-core host, thread counts above 1 measure
//! oversubscription overhead rather than speed-up — the interesting
//! single-core comparisons are engine-vs-engine at one thread (the §5
//! uniprocessor story) and the per-event costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parsim_bench::{bench_array, quick};
use parsim_circuits::gate_multiplier;
use parsim_core::{ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven};
use parsim_logic::Time;

fn engines_on_inverter_array(c: &mut Criterion) {
    let q = quick();
    let arr = bench_array();
    let cfg = SimConfig::new(Time(400));
    let mut g = c.benchmark_group("engines_inverter_array");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("event_driven", |b| {
        b.iter(|| EventDriven::run(&arr.netlist, &cfg).unwrap())
    });
    g.bench_function("event_driven_wheel", |b| {
        let cfg = cfg.clone().with_timing_wheel();
        b.iter(|| EventDriven::run(&arr.netlist, &cfg).unwrap())
    });
    g.bench_function("sync_x1", |b| {
        b.iter(|| SyncEventDriven::run(&arr.netlist, &cfg).unwrap())
    });
    g.bench_function("compiled_x1", |b| {
        b.iter(|| CompiledMode::run(&arr.netlist, &cfg).unwrap())
    });
    g.bench_function("async_x1", |b| {
        b.iter(|| ChaoticAsync::run(&arr.netlist, &cfg).unwrap())
    });
    g.finish();
}

fn async_thread_overhead(c: &mut Criterion) {
    let q = quick();
    let arr = bench_array();
    let cfg = SimConfig::new(Time(300));
    let mut g = c.benchmark_group("async_thread_overhead");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    for threads in [1usize, 2] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| ChaoticAsync::run(&arr.netlist, &cfg.clone().threads(t)).unwrap())
        });
    }
    g.finish();
}

fn gate_multiplier_throughput(c: &mut Criterion) {
    let q = quick();
    let m = gate_multiplier(8, &[(123, 231), (250, 250)], 160).expect("valid circuit");
    let cfg = SimConfig::new(m.schedule_end());
    let mut g = c.benchmark_group("gate_multiplier");
    g.sample_size(q.sample_size)
        .measurement_time(std::time::Duration::from_secs_f64(q.measurement_secs))
        .warm_up_time(std::time::Duration::from_millis(q.warmup_millis));
    g.bench_function("event_driven", |b| {
        b.iter(|| EventDriven::run(&m.netlist, &cfg).unwrap())
    });
    g.bench_function("async_x1", |b| {
        b.iter(|| ChaoticAsync::run(&m.netlist, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    engines_on_inverter_array,
    async_thread_overhead,
    gate_multiplier_throughput
);
criterion_main!(benches);
