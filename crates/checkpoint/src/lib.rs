//! Crash-consistent checkpoint/restore for the parsim engines.
//!
//! Long simulations die — machines reboot, jobs get preempted, disks
//! fill. This crate makes a run restartable: a versioned, checksummed
//! binary snapshot of a *barrier-consistent cut* of engine state
//! ([`EngineSnapshot`]), an atomic on-disk store with a rolling
//! keep-last-K policy ([`CheckpointStore`]), and a storage-fault
//! injection plan ([`StorageFaultPlan`]) that lets tests kill the write
//! protocol in every phase and prove recovery picks the newest *valid*
//! snapshot — never a torn or bit-flipped one.
//!
//! The crate is deliberately engine-free: it depends only on the logic
//! and netlist layers. The engines (in `parsim-core`) know how to drain
//! to a cut and capture/restore a snapshot; this crate knows how to get
//! that snapshot on and off disk without ever exposing a half-written
//! state to recovery.
//!
//! # Example
//!
//! ```
//! use parsim_checkpoint::{CheckpointStore, EngineSnapshot, StorageFaultPlan, netlist_digest};
//! use parsim_netlist::Netlist;
//!
//! let netlist = Netlist::from_text("node c 1\nelem osc clock:3:0 delay=1 out=c\n").unwrap();
//! let dir = std::env::temp_dir().join("parsim-doc-ckpt");
//! let mut store = CheckpointStore::open(&dir, netlist_digest(&netlist), 2).unwrap();
//!
//! let snap = EngineSnapshot::shaped_for(&netlist, 100);
//! store.save(&snap, &StorageFaultPlan::new()).unwrap();
//!
//! let recovered = store.recover().unwrap();
//! assert_eq!(recovered.snapshot.unwrap(), snap);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

mod crc;
mod digest;
mod error;
mod fault;
mod snapshot;
mod store;

pub use crc::crc32;
pub use digest::netlist_digest;
pub use error::CheckpointError;
pub use fault::{StorageFault, StorageFaultPlan};
pub use snapshot::{ChangeRecord, EngineSnapshot, PendingEvent, HEADER_LEN, MAGIC, VERSION};
pub use store::{CheckpointStore, Recovery, SaveStats};
