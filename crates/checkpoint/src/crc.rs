//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant).
//!
//! Every section of a snapshot file carries a CRC over its payload so a
//! torn or bit-flipped file is detected at load time instead of being
//! deserialized into garbage engine state. The table is built at compile
//! time; no external crate is involved.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, init `!0`, final xor `!0`).
///
/// # Examples
///
/// ```
/// // The classic check value for the IEEE polynomial.
/// assert_eq!(parsim_checkpoint::crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(parsim_checkpoint::crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
