//! Structural netlist digest.
//!
//! A snapshot is only meaningful for the exact netlist that produced it:
//! node and element ids are dense creation-order indices, so restoring
//! state vectors into a different circuit would silently mis-wire every
//! value. The digest folds the full structure — names, widths, kinds
//! (including generator parameters), delays, and connectivity — into a
//! 64-bit FNV-1a hash stored in the snapshot header and checked on load.

use parsim_netlist::Netlist;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        // Length-prefix so ("ab","c") and ("a","bc") differ.
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// 64-bit structural digest of `netlist`.
///
/// Deterministic across runs and processes (no pointer or hash-map
/// iteration order involved); any change to a name, width, element kind,
/// delay, or connection changes the digest.
///
/// # Examples
///
/// ```
/// use parsim_netlist::Netlist;
///
/// let a = Netlist::from_text("node x 1\nelem g clock:5:0 delay=1 out=x\n").unwrap();
/// let b = Netlist::from_text("node x 1\nelem g clock:7:0 delay=1 out=x\n").unwrap();
/// assert_ne!(
///     parsim_checkpoint::netlist_digest(&a),
///     parsim_checkpoint::netlist_digest(&b),
/// );
/// ```
pub fn netlist_digest(netlist: &Netlist) -> u64 {
    let mut h = Fnv::new();
    h.u64(netlist.num_nodes() as u64);
    h.u64(netlist.num_elements() as u64);
    for (_, node) in netlist.iter_nodes() {
        h.str(node.name());
        h.u64(node.width() as u64);
    }
    for (_, elem) in netlist.iter_elements() {
        h.str(elem.name());
        // Debug formatting covers the kind discriminant plus every
        // generator / memory parameter (periods, seeds, widths, values).
        h.str(&format!("{:?}", elem.kind()));
        h.u64(elem.rise_delay().ticks());
        h.u64(elem.fall_delay().ticks());
        h.u64(elem.inputs().len() as u64);
        for &n in elem.inputs() {
            h.u64(n.index() as u64);
        }
        h.u64(elem.outputs().len() as u64);
        for &n in elem.outputs() {
            h.u64(n.index() as u64);
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_structure_sensitive() {
        let text = "node a 1\nnode y 1\nelem g clock:3:0 delay=1 out=a\nelem i not delay=1 in=a out=y\n";
        let n1 = Netlist::from_text(text).unwrap();
        let n2 = Netlist::from_text(text).unwrap();
        assert_eq!(netlist_digest(&n1), netlist_digest(&n2));

        let renamed = text.replace("node y", "node z").replace("out=y", "out=z");
        let n3 = Netlist::from_text(&renamed).unwrap();
        assert_ne!(netlist_digest(&n1), netlist_digest(&n3));
    }
}
