//! Storage-fault injection for the checkpoint write protocol.
//!
//! The write protocol has distinct phases — serialize, write temp,
//! fsync, rename, fsync dir — and a real machine can die in any of
//! them. [`StorageFaultPlan`] lets a test pick a write (by ordinal) and
//! a phase and simulate exactly that crash, so the recovery scan can be
//! proven against every reachable on-disk state rather than only the
//! happy path. Mirrors the compute-side `FaultPlan` (panic/stall at the
//! n-th activation) from the containment layer.

/// What goes wrong, and where in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The machine dies after `rename` but before the data reached the
    /// platter: the *committed* file is truncated at `at_byte`. This is
    /// the classic torn write; recovery must fall back.
    TornWrite { at_byte: usize },
    /// Silent media corruption: one bit (bit 0 of `at_byte`, modulo the
    /// file length) flips. The write "succeeds"; only a CRC check at
    /// load time can catch it.
    BitFlip { at_byte: usize },
    /// The machine dies during `fsync` of the temp file: the temp file
    /// may exist but was never renamed, so the previous snapshot is
    /// still the newest committed one.
    FsyncCrash,
    /// The machine dies during `rename`: same visible outcome as
    /// `FsyncCrash` (temp present, not committed), exercised separately
    /// because it is a distinct protocol phase.
    RenameCrash,
}

/// Schedule of storage faults, keyed by write ordinal (0 = the first
/// checkpoint write of the run).
///
/// # Examples
///
/// ```
/// use parsim_checkpoint::{StorageFault, StorageFaultPlan};
///
/// let plan = StorageFaultPlan::new().fault_at(1, StorageFault::TornWrite { at_byte: 100 });
/// assert_eq!(plan.fault_for(0), None);
/// assert_eq!(plan.fault_for(1), Some(StorageFault::TornWrite { at_byte: 100 }));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageFaultPlan {
    faults: Vec<(u64, StorageFault)>,
}

impl StorageFaultPlan {
    /// No faults: every write succeeds.
    pub fn new() -> StorageFaultPlan {
        StorageFaultPlan::default()
    }

    /// Injects `fault` into the `nth` checkpoint write (0-based).
    pub fn fault_at(mut self, nth: u64, fault: StorageFault) -> StorageFaultPlan {
        self.faults.push((nth, fault));
        self
    }

    /// The fault scheduled for write `nth`, if any.
    pub fn fault_for(&self, nth: u64) -> Option<StorageFault> {
        self.faults
            .iter()
            .find(|(n, _)| *n == nth)
            .map(|(_, f)| *f)
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}
