//! Typed checkpoint errors.
//!
//! Everything that can go wrong while writing, scanning, or loading a
//! snapshot is a [`CheckpointError`] variant — never a stringly
//! `io::Error` bubbled through the engine API. The type is `Clone + Eq`
//! so it can ride inside `SimError` (which tests compare with `==`);
//! OS error text is captured as a rendered string for the same reason.

use std::fmt;

/// Why a checkpoint operation failed or a snapshot file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An OS-level I/O operation failed. `op` names the protocol phase
    /// (`"create"`, `"write"`, `"fsync"`, `"rename"`, `"read"`, ...).
    Io {
        op: &'static str,
        path: String,
        message: String,
    },
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic { path: String },
    /// The format version is newer than this build understands.
    BadVersion { path: String, found: u32 },
    /// The snapshot was written for a different netlist.
    DigestMismatch {
        path: String,
        expected: u64,
        found: u64,
    },
    /// Truncation, CRC mismatch, or a malformed section. `detail` says
    /// which check failed; the file is unusable but recovery may fall
    /// back to an older snapshot.
    Corrupt { path: String, detail: String },
    /// The snapshot's node/element counts do not match the netlist it is
    /// being restored into (digest collisions aside, this means a bug).
    ShapeMismatch { detail: String },
    /// A resume was requested with a different `end_time` than the run
    /// that produced the snapshot. Bit-identical resume is only defined
    /// against the same horizon: events beyond the original end were
    /// dropped at capture time and cannot be reconstructed.
    EndTimeMismatch { snapshot: u64, config: u64 },
    /// Resume was requested but the checkpoint directory holds no
    /// loadable snapshot (all candidates torn/corrupt/mismatched).
    NoValidSnapshot { dir: String, examined: usize },
    /// Checkpointing was enabled without a directory, or with a zero
    /// interval — the policy is unusable as configured.
    BadPolicy { detail: String },
    /// A [`StorageFault`](crate::StorageFault) fired mid-protocol: the
    /// simulated machine died here. Tests treat this as the crash point
    /// and then exercise recovery.
    InjectedCrash { phase: &'static str },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, path, message } => {
                write!(f, "checkpoint {op} failed for {path}: {message}")
            }
            CheckpointError::BadMagic { path } => {
                write!(f, "{path} is not a parsim snapshot (bad magic)")
            }
            CheckpointError::BadVersion { path, found } => {
                write!(f, "{path} has unsupported snapshot version {found}")
            }
            CheckpointError::DigestMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{path} was written for a different netlist \
                 (digest {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "{path} is corrupt: {detail}")
            }
            CheckpointError::ShapeMismatch { detail } => {
                write!(f, "snapshot shape does not match netlist: {detail}")
            }
            CheckpointError::EndTimeMismatch { snapshot, config } => write!(
                f,
                "snapshot was captured for end_time={snapshot} but the resume \
                 requested end_time={config}; resume with the original horizon"
            ),
            CheckpointError::NoValidSnapshot { dir, examined } => write!(
                f,
                "no valid snapshot in {dir} ({examined} candidate file(s) examined)"
            ),
            CheckpointError::BadPolicy { detail } => {
                write!(f, "invalid checkpoint policy: {detail}")
            }
            CheckpointError::InjectedCrash { phase } => {
                write!(f, "injected storage crash during {phase}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CheckpointError {
    /// Wraps an `io::Error` with the protocol phase and path, rendering
    /// the OS message so the result stays `Clone + Eq`.
    pub fn io(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> CheckpointError {
        CheckpointError::Io {
            op,
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }
}
