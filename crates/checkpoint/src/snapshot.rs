//! The engine-agnostic snapshot and its binary encoding.
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! +----------------------------+
//! | magic  "PSIMCKPT"  (8 B)   |
//! | version u32                |
//! | netlist digest u64         |
//! | section count u32          |
//! | header CRC32 u32           |  over the 24 bytes above
//! +----------------------------+
//! | section id u32             |\
//! | payload len u64            | }  repeated `section count` times
//! | payload CRC32 u32          | |
//! | payload bytes              |/
//! +----------------------------+
//! ```
//!
//! All integers are little-endian. Sections are length-prefixed and
//! individually checksummed, so truncation anywhere in the file — the
//! torn-write case — is caught either by a short read or a CRC mismatch,
//! never deserialized into garbage. Unknown section ids are skipped on
//! read (forward compatibility); missing required sections are an error.
//!
//! The snapshot itself is a *canonical cut* of engine state at time `T`:
//! every engine can produce one and every engine can resume from one,
//! because all four agree on waveforms and therefore on per-node values,
//! per-element storage, and the set of already-computed events beyond the
//! cut. See DESIGN.md §10 for the equivalence argument.

use parsim_logic::{ElemState, Value};
use parsim_netlist::Netlist;

use crate::crc::crc32;
use crate::error::CheckpointError;

/// File magic, first 8 bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"PSIMCKPT";
/// Current format version.
pub const VERSION: u32 = 1;

/// Fixed header size in bytes (magic + version + digest + count + CRC).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 4;

const SEC_META: u32 = 1;
const SEC_VALUES: u32 = 2;
const SEC_SCHED: u32 = 3;
const SEC_STATES: u32 = 4;
const SEC_PENDING: u32 = 5;
const SEC_CHANGES: u32 = 6;

/// One computed-but-not-yet-applied event: at `time`, drive `node` to
/// `value`. Times are strictly greater than the snapshot cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingEvent {
    pub time: u64,
    pub node: u32,
    pub value: Value,
}

/// A watched-node change that already happened (at or before the cut).
/// Accumulated across segments so the final [`SimResult`] waveforms are
/// identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeRecord {
    pub time: u64,
    pub node: u32,
    pub value: Value,
}

/// A barrier-consistent cut of simulation state at time `time`.
///
/// The representation is engine-agnostic: the sequential, synchronous,
/// and chaotic engines capture and restore it exactly; the compiled
/// engine maps it through its slot numbering. `pending` holds every
/// event that evaluation at or before the cut scheduled for after the
/// cut (the paper's "events in flight"); `last_scheduled` /
/// `last_sched_time` carry the monotone-transport bookkeeping each
/// output port needs so resumed scheduling stays bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Horizon (`SimConfig::end_time`) of the run that captured this.
    pub end_time: u64,
    /// The cut: all state reflects simulation through this tick.
    pub time: u64,
    /// Checkpoint ordinal within the run (1 = first checkpoint).
    pub step: u64,
    /// RNG / chaos seeds so perturbed schedules replay identically.
    pub seeds: [u64; 2],
    /// Per-node value at the cut (`valid_until` clocks are implied: a
    /// restored node is valid exactly up to `time`).
    pub values: Vec<Value>,
    /// Per-node last value scheduled by its driver (kept events only).
    pub last_scheduled: Vec<Value>,
    /// Per-node time of that last kept schedule.
    pub last_sched_time: Vec<u64>,
    /// Per-element sequential storage (flops, latches, memories).
    pub elem_states: Vec<ElemState>,
    /// Events beyond the cut, sorted by `(time, node)`.
    pub pending: Vec<PendingEvent>,
    /// Watched changes at or before the cut, in emission order.
    pub changes: Vec<ChangeRecord>,
}

impl EngineSnapshot {
    /// An empty snapshot shaped for `netlist` at time 0 — the identity
    /// element the segment driver folds captures into.
    pub fn shaped_for(netlist: &Netlist, end_time: u64) -> EngineSnapshot {
        EngineSnapshot {
            end_time,
            time: 0,
            step: 0,
            seeds: [0, 0],
            values: netlist.nodes().iter().map(|n| Value::x(n.width())).collect(),
            last_scheduled: netlist.nodes().iter().map(|n| Value::x(n.width())).collect(),
            last_sched_time: vec![0; netlist.num_nodes()],
            elem_states: netlist
                .elements()
                .iter()
                .map(|e| ElemState::init(e.kind()))
                .collect(),
            pending: Vec::new(),
            changes: Vec::new(),
        }
    }

    /// Checks that the vector shapes match `netlist`.
    pub fn check_shape(&self, netlist: &Netlist) -> Result<(), CheckpointError> {
        let nn = netlist.num_nodes();
        let ne = netlist.num_elements();
        if self.values.len() != nn
            || self.last_scheduled.len() != nn
            || self.last_sched_time.len() != nn
        {
            return Err(CheckpointError::ShapeMismatch {
                detail: format!(
                    "snapshot has {} node entries, netlist has {nn}",
                    self.values.len()
                ),
            });
        }
        if self.elem_states.len() != ne {
            return Err(CheckpointError::ShapeMismatch {
                detail: format!(
                    "snapshot has {} element states, netlist has {ne}",
                    self.elem_states.len()
                ),
            });
        }
        for ev in &self.pending {
            if ev.node as usize >= nn {
                return Err(CheckpointError::ShapeMismatch {
                    detail: format!("pending event names node {} of {nn}", ev.node),
                });
            }
        }
        Ok(())
    }

    /// Serializes to the on-disk format with `digest` in the header.
    pub fn encode(&self, digest: u64) -> Vec<u8> {
        let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();

        let mut meta = Vec::with_capacity(8 * 7);
        put_u64(&mut meta, self.end_time);
        put_u64(&mut meta, self.time);
        put_u64(&mut meta, self.step);
        put_u64(&mut meta, self.seeds[0]);
        put_u64(&mut meta, self.seeds[1]);
        put_u64(&mut meta, self.values.len() as u64);
        put_u64(&mut meta, self.elem_states.len() as u64);
        sections.push((SEC_META, meta));

        let mut vals = Vec::with_capacity(self.values.len() * 17);
        for v in &self.values {
            put_value(&mut vals, v);
        }
        sections.push((SEC_VALUES, vals));

        let mut sched = Vec::with_capacity(self.last_scheduled.len() * 25);
        for (v, t) in self.last_scheduled.iter().zip(&self.last_sched_time) {
            put_value(&mut sched, v);
            put_u64(&mut sched, *t);
        }
        sections.push((SEC_SCHED, sched));

        let mut states = Vec::new();
        for s in &self.elem_states {
            put_state(&mut states, s);
        }
        sections.push((SEC_STATES, states));

        let mut pending = Vec::with_capacity(8 + self.pending.len() * 29);
        put_u64(&mut pending, self.pending.len() as u64);
        for ev in &self.pending {
            put_u64(&mut pending, ev.time);
            put_u32(&mut pending, ev.node);
            put_value(&mut pending, &ev.value);
        }
        sections.push((SEC_PENDING, pending));

        let mut changes = Vec::with_capacity(8 + self.changes.len() * 29);
        put_u64(&mut changes, self.changes.len() as u64);
        for c in &self.changes {
            put_u64(&mut changes, c.time);
            put_u32(&mut changes, c.node);
            put_value(&mut changes, &c.value);
        }
        sections.push((SEC_CHANGES, changes));

        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, digest);
        put_u32(&mut out, sections.len() as u32);
        let hcrc = crc32(&out);
        put_u32(&mut out, hcrc);
        for (id, payload) in &sections {
            put_u32(&mut out, *id);
            put_u64(&mut out, payload.len() as u64);
            put_u32(&mut out, crc32(payload));
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and validates a snapshot. `expect_digest` must match the
    /// header; every section CRC must check out; required sections must
    /// be present. `path` is used only for error messages.
    pub fn decode(bytes: &[u8], expect_digest: u64, path: &str) -> Result<EngineSnapshot, CheckpointError> {
        let corrupt = |detail: String| CheckpointError::Corrupt {
            path: path.to_string(),
            detail,
        };
        if bytes.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic {
                path: path.to_string(),
            });
        }
        let version = get_u32(&bytes[8..12]);
        if version != VERSION {
            return Err(CheckpointError::BadVersion {
                path: path.to_string(),
                found: version,
            });
        }
        let digest = get_u64(&bytes[12..20]);
        let nsections = get_u32(&bytes[20..24]) as usize;
        let hcrc = get_u32(&bytes[24..28]);
        if crc32(&bytes[..24]) != hcrc {
            return Err(corrupt("header CRC mismatch".to_string()));
        }
        if digest != expect_digest {
            return Err(CheckpointError::DigestMismatch {
                path: path.to_string(),
                expected: expect_digest,
                found: digest,
            });
        }

        let mut meta: Option<&[u8]> = None;
        let mut values: Option<&[u8]> = None;
        let mut sched: Option<&[u8]> = None;
        let mut states: Option<&[u8]> = None;
        let mut pending: Option<&[u8]> = None;
        let mut changes: Option<&[u8]> = None;

        let mut at = HEADER_LEN;
        for i in 0..nsections {
            if bytes.len() < at + 16 {
                return Err(corrupt(format!("truncated in section {i} header")));
            }
            let id = get_u32(&bytes[at..at + 4]);
            let len = get_u64(&bytes[at + 4..at + 12]) as usize;
            let scrc = get_u32(&bytes[at + 12..at + 16]);
            at += 16;
            if bytes.len() < at + len {
                return Err(corrupt(format!(
                    "section {id} claims {len} bytes but only {} remain",
                    bytes.len() - at
                )));
            }
            let payload = &bytes[at..at + len];
            at += len;
            if crc32(payload) != scrc {
                return Err(corrupt(format!("section {id} CRC mismatch")));
            }
            match id {
                SEC_META => meta = Some(payload),
                SEC_VALUES => values = Some(payload),
                SEC_SCHED => sched = Some(payload),
                SEC_STATES => states = Some(payload),
                SEC_PENDING => pending = Some(payload),
                SEC_CHANGES => changes = Some(payload),
                // Unknown sections from a newer minor writer: ignore.
                _ => {}
            }
        }

        let meta = meta.ok_or_else(|| corrupt("missing META section".to_string()))?;
        if meta.len() != 56 {
            return Err(corrupt(format!("META section is {} bytes, want 56", meta.len())));
        }
        let end_time = get_u64(&meta[0..8]);
        let time = get_u64(&meta[8..16]);
        let step = get_u64(&meta[16..24]);
        let seeds = [get_u64(&meta[24..32]), get_u64(&meta[32..40])];
        let num_nodes = get_u64(&meta[40..48]) as usize;
        let num_elems = get_u64(&meta[48..56]) as usize;

        let mut r = Reader::new(values.ok_or_else(|| corrupt("missing VALUES section".to_string()))?);
        let mut vals = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            vals.push(r.value().map_err(|e| corrupt(format!("VALUES: {e}")))?);
        }
        r.finish().map_err(|e| corrupt(format!("VALUES: {e}")))?;

        let mut r = Reader::new(sched.ok_or_else(|| corrupt("missing SCHED section".to_string()))?);
        let mut last_scheduled = Vec::with_capacity(num_nodes);
        let mut last_sched_time = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            last_scheduled.push(r.value().map_err(|e| corrupt(format!("SCHED: {e}")))?);
            last_sched_time.push(r.u64().map_err(|e| corrupt(format!("SCHED: {e}")))?);
        }
        r.finish().map_err(|e| corrupt(format!("SCHED: {e}")))?;

        let mut r = Reader::new(states.ok_or_else(|| corrupt("missing STATES section".to_string()))?);
        let mut elem_states = Vec::with_capacity(num_elems);
        for _ in 0..num_elems {
            elem_states.push(r.state().map_err(|e| corrupt(format!("STATES: {e}")))?);
        }
        r.finish().map_err(|e| corrupt(format!("STATES: {e}")))?;

        let mut r = Reader::new(pending.ok_or_else(|| corrupt("missing PENDING section".to_string()))?);
        let n = r.u64().map_err(|e| corrupt(format!("PENDING: {e}")))? as usize;
        let mut pend = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let time = r.u64().map_err(|e| corrupt(format!("PENDING: {e}")))?;
            let node = r.u32().map_err(|e| corrupt(format!("PENDING: {e}")))?;
            let value = r.value().map_err(|e| corrupt(format!("PENDING: {e}")))?;
            pend.push(PendingEvent { time, node, value });
        }
        r.finish().map_err(|e| corrupt(format!("PENDING: {e}")))?;

        let mut r = Reader::new(changes.ok_or_else(|| corrupt("missing CHANGES section".to_string()))?);
        let n = r.u64().map_err(|e| corrupt(format!("CHANGES: {e}")))? as usize;
        let mut chg = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let time = r.u64().map_err(|e| corrupt(format!("CHANGES: {e}")))?;
            let node = r.u32().map_err(|e| corrupt(format!("CHANGES: {e}")))?;
            let value = r.value().map_err(|e| corrupt(format!("CHANGES: {e}")))?;
            chg.push(ChangeRecord { time, node, value });
        }
        r.finish().map_err(|e| corrupt(format!("CHANGES: {e}")))?;

        Ok(EngineSnapshot {
            end_time,
            time,
            step,
            seeds,
            values: vals,
            last_scheduled,
            last_sched_time,
            elem_states,
            pending: pend,
            changes: chg,
        })
    }
}

// ---------------------------------------------------------------- encoding

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    let (a, b) = v.to_planes();
    out.push(v.width());
    put_u64(out, a);
    put_u64(out, b);
}

const STATE_NONE: u8 = 0;
const STATE_STORED: u8 = 1;
const STATE_EDGE: u8 = 2;
const STATE_MEM: u8 = 3;

fn put_state(out: &mut Vec<u8>, s: &ElemState) {
    match s {
        ElemState::None => out.push(STATE_NONE),
        ElemState::Stored(v) => {
            out.push(STATE_STORED);
            put_value(out, v);
        }
        ElemState::Edge { q, last_clk } => {
            out.push(STATE_EDGE);
            put_value(out, q);
            put_value(out, last_clk);
        }
        ElemState::Mem { cells, q, last_clk } => {
            out.push(STATE_MEM);
            put_u64(out, cells.len() as u64);
            for c in cells {
                put_value(out, c);
            }
            put_value(out, q);
            put_value(out, last_clk);
        }
    }
}

fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// Bounds-checked sequential reader over a section payload.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.at < n {
            return Err(format!(
                "need {n} bytes at offset {}, have {}",
                self.at,
                self.buf.len() - self.at
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(get_u32(self.take(4)?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(get_u64(self.take(8)?))
    }

    fn value(&mut self) -> Result<Value, String> {
        let width = self.take(1)?[0];
        if width == 0 || width > 64 {
            return Err(format!("bad value width {width}"));
        }
        let a = self.u64()?;
        let b = self.u64()?;
        Ok(Value::from_planes(width, a, b))
    }

    fn state(&mut self) -> Result<ElemState, String> {
        match self.take(1)?[0] {
            STATE_NONE => Ok(ElemState::None),
            STATE_STORED => Ok(ElemState::Stored(self.value()?)),
            STATE_EDGE => Ok(ElemState::Edge {
                q: self.value()?,
                last_clk: self.value()?,
            }),
            STATE_MEM => {
                let n = self.u64()? as usize;
                if n > (1 << 24) {
                    return Err(format!("memory claims {n} cells"));
                }
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    cells.push(self.value()?);
                }
                Ok(ElemState::Mem {
                    cells,
                    q: self.value()?,
                    last_clk: self.value()?,
                })
            }
            tag => Err(format!("unknown element-state tag {tag}")),
        }
    }

    fn finish(&self) -> Result<(), String> {
        if self.at != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        EngineSnapshot {
            end_time: 500,
            time: 120,
            step: 3,
            seeds: [7, 11],
            values: vec![Value::bit(true), Value::x(8), Value::from_u64(17, 5)],
            last_scheduled: vec![Value::bit(false), Value::from_u64(3, 8), Value::x(5)],
            last_sched_time: vec![119, 7, 0],
            elem_states: vec![
                ElemState::None,
                ElemState::Stored(Value::from_u64(1, 4)),
                ElemState::Edge {
                    q: Value::bit(true),
                    last_clk: Value::bit(false),
                },
                ElemState::Mem {
                    cells: vec![Value::from_u64(1, 8), Value::from_u64(2, 8)],
                    q: Value::from_u64(1, 8),
                    last_clk: Value::bit(true),
                },
            ],
            pending: vec![
                PendingEvent {
                    time: 125,
                    node: 2,
                    value: Value::from_u64(9, 5),
                },
                PendingEvent {
                    time: 140,
                    node: 0,
                    value: Value::bit(false),
                },
            ],
            changes: vec![ChangeRecord {
                time: 5,
                node: 0,
                value: Value::bit(true),
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let bytes = snap.encode(0xDEAD_BEEF_0BAD_F00D);
        let back = EngineSnapshot::decode(&bytes, 0xDEAD_BEEF_0BAD_F00D, "t").unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn digest_mismatch_rejected() {
        let bytes = sample().encode(1);
        let err = EngineSnapshot::decode(&bytes, 2, "t").unwrap_err();
        assert!(matches!(err, CheckpointError::DigestMismatch { .. }));
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let snap = sample();
        let bytes = snap.encode(42);
        for cut in 0..bytes.len() {
            let err = EngineSnapshot::decode(&bytes[..cut], 42, "t").unwrap_err();
            // Any prefix must fail loudly — magic, header CRC, section
            // CRC, or truncation — never a partially-loaded snapshot.
            match err {
                CheckpointError::Corrupt { .. }
                | CheckpointError::BadMagic { .. }
                | CheckpointError::DigestMismatch { .. }
                | CheckpointError::BadVersion { .. } => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected_or_roundtrips() {
        let snap = sample();
        let good = snap.encode(42);
        // Flipping any single bit must either fail validation or (never,
        // for CRC32 over short payloads) produce the identical snapshot.
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            match EngineSnapshot::decode(&bad, 42, "t") {
                Err(_) => {}
                Ok(back) => panic!(
                    "bit flip at byte {byte} went undetected (decoded = snapshot: {})",
                    back == snap
                ),
            }
        }
    }
}
