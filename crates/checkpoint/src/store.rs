//! The on-disk checkpoint store: atomic writes, recovery scan, pruning.
//!
//! # Write-ordering invariants
//!
//! A snapshot becomes visible to recovery *only* through `rename(2)`,
//! which is atomic on POSIX filesystems. The protocol is:
//!
//! 1. serialize the snapshot to a buffer;
//! 2. write the buffer to `.ckpt-NNNNNNNNNN.psnap.tmp`;
//! 3. `fsync` the temp file (data durable before the name flips);
//! 4. `rename` to `ckpt-NNNNNNNNNN.psnap`;
//! 5. `fsync` the directory (the new name itself durable).
//!
//! A crash before step 4 leaves at most a stale `.tmp` file, which the
//! recovery scan ignores; a crash after step 4 leaves a complete,
//! checksummed snapshot. The only way a *committed* file can be bad is
//! hardware-level tearing or corruption — which the per-section CRCs
//! catch, making recovery fall back to the next-newest snapshot.
//!
//! Pruning keeps the newest K committed snapshots. K must be at least 2:
//! if the newest turns out torn, the previous one is the fallback.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::CheckpointError;
use crate::fault::{StorageFault, StorageFaultPlan};
use crate::snapshot::EngineSnapshot;

/// Committed snapshot filename for checkpoint ordinal `step`.
fn file_name(step: u64) -> String {
    format!("ckpt-{step:010}.psnap")
}

/// Parses `ckpt-NNNNNNNNNN.psnap` back to its step, rejecting
/// everything else (temp files, foreign files).
fn parse_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".psnap")?;
    if rest.len() != 10 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Outcome of a successful [`CheckpointStore::save`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveStats {
    /// Bytes in the committed snapshot file.
    pub bytes: u64,
    /// Final (post-rename) path.
    pub path: PathBuf,
}

/// Outcome of a recovery scan.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The newest loadable snapshot, if any file validated.
    pub snapshot: Option<EngineSnapshot>,
    /// Path the loaded snapshot came from.
    pub loaded_from: Option<PathBuf>,
    /// Candidates that were rejected, newest first, with the reason.
    /// Non-empty `skipped` with a loaded snapshot means the newest file
    /// was torn and recovery fell back — exactly the case the atomic
    /// write protocol exists to survive.
    pub skipped: Vec<(PathBuf, CheckpointError)>,
}

/// A directory of rolling snapshots for one (netlist, run) pair.
///
/// The store never trusts file contents: every load re-validates magic,
/// version, digest, and section CRCs. Step ordinals come from file
/// names only for ordering the scan; the authoritative step is inside
/// the (checksummed) META section.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    digest: u64,
    keep: usize,
    writes: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory for a netlist
    /// with structural `digest`. `keep` is clamped to at least 2 so a
    /// torn newest snapshot always has a fallback.
    pub fn open(dir: &Path, digest: u64, keep: usize) -> Result<CheckpointStore, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| CheckpointError::io("create-dir", dir, &e))?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            digest,
            keep: keep.max(2),
            writes: 0,
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `snap` crash-consistently, honoring `faults` for this
    /// write's ordinal. On success, prunes to the newest `keep`
    /// snapshots and clears stale temp files.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::InjectedCrash`] when a scheduled
    /// [`StorageFault`] fires (the caller treats this as the simulated
    /// machine dying), or [`CheckpointError::Io`] for real I/O failures.
    pub fn save(
        &mut self,
        snap: &EngineSnapshot,
        faults: &StorageFaultPlan,
    ) -> Result<SaveStats, CheckpointError> {
        let ordinal = self.writes;
        self.writes += 1;
        let fault = faults.fault_for(ordinal);

        let mut buf = snap.encode(self.digest);
        match fault {
            Some(StorageFault::TornWrite { at_byte }) => {
                // The rename happened but the tail of the data never hit
                // the disk: commit a truncated file, then "die".
                buf.truncate(at_byte.min(buf.len()));
            }
            Some(StorageFault::BitFlip { at_byte }) => {
                let i = at_byte % buf.len().max(1);
                buf[i] ^= 1;
            }
            _ => {}
        }

        let final_path = self.dir.join(file_name(snap.step));
        let tmp_path = self.dir.join(format!(".{}.tmp", file_name(snap.step)));

        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| CheckpointError::io("create", &tmp_path, &e))?;
        f.write_all(&buf)
            .map_err(|e| CheckpointError::io("write", &tmp_path, &e))?;

        if fault == Some(StorageFault::FsyncCrash) {
            // Died mid-fsync: temp exists, never renamed.
            return Err(CheckpointError::InjectedCrash { phase: "fsync" });
        }
        f.sync_all()
            .map_err(|e| CheckpointError::io("fsync", &tmp_path, &e))?;
        drop(f);

        if fault == Some(StorageFault::RenameCrash) {
            return Err(CheckpointError::InjectedCrash { phase: "rename" });
        }
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| CheckpointError::io("rename", &final_path, &e))?;
        sync_dir(&self.dir)?;

        if let Some(StorageFault::TornWrite { .. }) = fault {
            // The torn file is now committed; the machine dies here.
            return Err(CheckpointError::InjectedCrash { phase: "data-flush" });
        }

        self.prune();
        Ok(SaveStats {
            bytes: buf.len() as u64,
            path: final_path,
        })
    }

    /// Scans the directory and loads the newest snapshot that passes
    /// every validation, recording why newer candidates were skipped.
    ///
    /// An empty or absent directory is not an error: `snapshot` is
    /// simply `None` (the caller starts fresh).
    ///
    /// # Errors
    ///
    /// Only on directory-scan I/O failures; individual bad files are
    /// reported in [`Recovery::skipped`], never propagated.
    pub fn recover(&self) -> Result<Recovery, CheckpointError> {
        let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Recovery::default())
            }
            Err(e) => return Err(CheckpointError::io("read-dir", &self.dir, &e)),
        };
        for entry in entries {
            let entry = entry.map_err(|e| CheckpointError::io("read-dir", &self.dir, &e))?;
            let name = entry.file_name();
            if let Some(step) = name.to_str().and_then(parse_file_name) {
                candidates.push((step, entry.path()));
            }
        }
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));

        let mut out = Recovery::default();
        for (_, path) in candidates {
            match self.load(&path) {
                Ok(snap) => {
                    out.loaded_from = Some(path);
                    out.snapshot = Some(snap);
                    break;
                }
                Err(err) => out.skipped.push((path, err)),
            }
        }
        Ok(out)
    }

    /// Loads and fully validates one snapshot file.
    pub fn load(&self, path: &Path) -> Result<EngineSnapshot, CheckpointError> {
        let bytes = fs::read(path).map_err(|e| CheckpointError::io("read", path, &e))?;
        EngineSnapshot::decode(&bytes, self.digest, &path.display().to_string())
    }

    /// Number of committed snapshot files currently in the directory.
    pub fn num_snapshots(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.file_name().to_str().and_then(parse_file_name).is_some())
            .count()
    }

    /// Deletes all but the newest `keep` committed snapshots and any
    /// stale temp files. Best-effort: pruning failures never fail a
    /// checkpoint that already committed.
    fn prune(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut committed: Vec<(u64, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(step) = parse_file_name(name) {
                committed.push((step, entry.path()));
            } else if name.starts_with('.') && name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        committed.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (_, path) in committed.into_iter().skip(self.keep) {
            let _ = fs::remove_file(path);
        }
    }
}

/// Fsync a directory so a just-renamed entry is durable. Directories
/// cannot be opened for writing; a plain read open suffices for
/// `fsync` on Linux. Platforms where directory fsync is unsupported
/// (the error case) degrade gracefully — rename atomicity still holds.
fn sync_dir(dir: &Path) -> Result<(), CheckpointError> {
    match File::open(dir) {
        Ok(d) => {
            let _ = d.sync_all();
            Ok(())
        }
        Err(e) => Err(CheckpointError::io("open-dir", dir, &e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "parsim-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn snap(step: u64, time: u64) -> EngineSnapshot {
        EngineSnapshot {
            end_time: 100,
            time,
            step,
            seeds: [0, 0],
            values: vec![Value::bit(true)],
            last_scheduled: vec![Value::bit(true)],
            last_sched_time: vec![time],
            elem_states: vec![],
            pending: vec![],
            changes: vec![],
        }
    }

    #[test]
    fn save_then_recover_newest() {
        let dir = tmpdir("newest");
        let mut store = CheckpointStore::open(&dir, 1, 3).unwrap();
        let plan = StorageFaultPlan::new();
        store.save(&snap(1, 10), &plan).unwrap();
        store.save(&snap(2, 20), &plan).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.snapshot.unwrap().time, 20);
        assert!(rec.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_last_k_prunes() {
        let dir = tmpdir("prune");
        let mut store = CheckpointStore::open(&dir, 1, 2).unwrap();
        let plan = StorageFaultPlan::new();
        for step in 1..=5 {
            store.save(&snap(step, step * 10), &plan).unwrap();
        }
        assert_eq!(store.num_snapshots(), 2);
        let rec = store.recover().unwrap();
        assert_eq!(rec.snapshot.unwrap().step, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_newest_falls_back() {
        let dir = tmpdir("torn");
        let mut store = CheckpointStore::open(&dir, 1, 3).unwrap();
        store.save(&snap(1, 10), &StorageFaultPlan::new()).unwrap();
        let plan = StorageFaultPlan::new().fault_at(1, StorageFault::TornWrite { at_byte: 40 });
        let err = store.save(&snap(2, 20), &plan).unwrap_err();
        assert_eq!(err, CheckpointError::InjectedCrash { phase: "data-flush" });
        // Both files exist; the newest is torn; recovery lands on step 1.
        assert_eq!(store.num_snapshots(), 2);
        let rec = store.recover().unwrap();
        assert_eq!(rec.snapshot.unwrap().step, 1);
        assert_eq!(rec.skipped.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_and_rename_crashes_leave_previous_committed() {
        for (tag, fault, phase) in [
            ("fsync", StorageFault::FsyncCrash, "fsync"),
            ("rename", StorageFault::RenameCrash, "rename"),
        ] {
            let dir = tmpdir(tag);
            let mut store = CheckpointStore::open(&dir, 1, 3).unwrap();
            store.save(&snap(1, 10), &StorageFaultPlan::new()).unwrap();
            let plan = StorageFaultPlan::new().fault_at(1, fault);
            let err = store.save(&snap(2, 20), &plan).unwrap_err();
            assert_eq!(err, CheckpointError::InjectedCrash { phase });
            // The temp file never became visible.
            assert_eq!(store.num_snapshots(), 1);
            let rec = store.recover().unwrap();
            assert_eq!(rec.snapshot.unwrap().step, 1);
            assert!(rec.skipped.is_empty());
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn bit_flip_detected_on_recover() {
        let dir = tmpdir("flip");
        let mut store = CheckpointStore::open(&dir, 1, 3).unwrap();
        store.save(&snap(1, 10), &StorageFaultPlan::new()).unwrap();
        let plan = StorageFaultPlan::new().fault_at(1, StorageFault::BitFlip { at_byte: 60 });
        // Bit flips are silent: the save itself succeeds.
        store.save(&snap(2, 20), &plan).unwrap();
        let rec = store.recover().unwrap();
        assert_eq!(rec.snapshot.unwrap().step, 1);
        assert_eq!(rec.skipped.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_digest_is_skipped() {
        let dir = tmpdir("digest");
        let mut store = CheckpointStore::open(&dir, 1, 3).unwrap();
        store.save(&snap(1, 10), &StorageFaultPlan::new()).unwrap();
        let other = CheckpointStore::open(&dir, 2, 3).unwrap();
        let rec = other.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.skipped.len(), 1);
        assert!(matches!(
            rec.skipped[0].1,
            CheckpointError::DigestMismatch { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_to_nothing() {
        let dir = tmpdir("empty");
        let store = CheckpointStore::open(&dir, 1, 3).unwrap();
        let rec = store.recover().unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.skipped.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
