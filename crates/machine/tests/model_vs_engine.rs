//! Model/engine cross-validation: the virtual Multimax's models replay
//! the *same algorithms* as the real engines, so their work counters must
//! agree exactly.

use parsim_circuits::{
    feedback_chain, functional_multiplier, inverter_array, pipelined_cpu, shared_bus,
};
use parsim_core::{ChaoticAsync, EventDriven, SimConfig};
use parsim_logic::Time;
use parsim_machine::{model_async, trace_execution, MachineConfig};
use parsim_netlist::Netlist;

fn cases() -> Vec<(&'static str, Netlist, Time)> {
    vec![
        (
            "inv-array",
            inverter_array(8, 8, 2).unwrap().netlist,
            Time(150),
        ),
        (
            "functional",
            functional_multiplier(&[(9, 9), (500, 700)], 64).unwrap().netlist,
            Time(128),
        ),
        ("cpu", pipelined_cpu(8, 48).unwrap().netlist, Time(400)),
        (
            "feedback",
            feedback_chain(3, 8).unwrap().netlist,
            Time(200),
        ),
        ("bus", shared_bus(4, 8, 16).unwrap().netlist, Time(200)),
    ]
}

/// The trace twin counts exactly what the sequential engine counts.
#[test]
fn trace_counts_match_sequential_engine_everywhere() {
    for (name, netlist, end) in cases() {
        let real = EventDriven::run(&netlist, &SimConfig::new(end)).unwrap();
        let trace = trace_execution(&netlist, end);
        assert_eq!(real.metrics.events_processed, trace.total_events, "{name}");
        assert_eq!(real.metrics.evaluations, trace.total_evals, "{name}");
    }
}

/// Without lookahead, every engine and model performs exactly one
/// evaluation per (element, input-event-time) pair — so the sequential
/// engine, the real asynchronous engine, and the asynchronous model must
/// report identical evaluation counts.
#[test]
fn three_way_evaluation_count_invariant() {
    for (name, netlist, end) in cases() {
        let seq = EventDriven::run(&netlist, &SimConfig::new(end)).unwrap();
        let asy = ChaoticAsync::run(
            &netlist,
            &SimConfig::new(end).without_lookahead(),
        ).unwrap();
        let mut cfg = MachineConfig::multimax(1);
        cfg.lookahead = false;
        let model = model_async(&netlist, end, &cfg);
        assert_eq!(
            seq.metrics.evaluations, asy.metrics.evaluations,
            "{name}: seq vs async engine"
        );
        assert_eq!(
            asy.metrics.evaluations, model.evaluations,
            "{name}: async engine vs model"
        );
        assert_eq!(
            seq.metrics.events_processed, model.events,
            "{name}: event counts"
        );
    }
}

/// The invariant also holds under threads and processor counts — the
/// amount of work is schedule-independent.
#[test]
fn evaluation_counts_are_schedule_independent() {
    let arr = inverter_array(8, 8, 2).unwrap();
    let end = Time(150);
    let base = ChaoticAsync::run(
        &arr.netlist,
        &SimConfig::new(end).without_lookahead(),
    ).unwrap()
    .metrics
    .evaluations;
    for threads in [2, 4] {
        let r = ChaoticAsync::run(
            &arr.netlist,
            &SimConfig::new(end).without_lookahead().threads(threads),
        ).unwrap();
        assert_eq!(r.metrics.evaluations, base, "engine x{threads}");
    }
    for procs in [4, 16] {
        let mut cfg = MachineConfig::multimax(procs);
        cfg.lookahead = false;
        let m = model_async(&arr.netlist, end, &cfg);
        assert_eq!(m.evaluations, base, "model x{procs}");
    }
}
