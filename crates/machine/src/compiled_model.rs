//! Modeled execution of the unit-delay compiled-mode algorithm (§3).
//!
//! Every element is evaluated every time step; elements are statically
//! partitioned; a barrier ends each step. The per-evaluation cost carries
//! data-dependent noise ("the execution times, even for multiple
//! evaluations of the same model, are unpredictable"), which is what makes
//! the functional multiplier's heterogeneous ~100 elements balance poorly
//! (Fig. 3) while 5000 homogeneous gates balance almost perfectly.

use parsim_logic::Time;
use parsim_netlist::partition::{block, lpt, round_robin, Partition};
use parsim_netlist::Netlist;

use crate::cost::{memory_pressure, MachineConfig};
use crate::report::ModelReport;
use crate::sync_model::{apply_os_interrupts, element_costs, scaled};

/// Static partitioning strategy for the compiled-mode model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Element `e` to processor `e % P`.
    RoundRobin,
    /// Contiguous blocks.
    Block,
    /// Cost-balanced greedy (longest processing time first).
    Lpt,
}

/// Models the compiled-mode simulator for `end.ticks()` unit-delay steps.
///
/// # Examples
///
/// ```
/// use parsim_circuits::inverter_array;
/// use parsim_logic::Time;
/// use parsim_machine::{model_compiled, MachineConfig, PartitionStrategy};
///
/// let arr = inverter_array(32, 16, 1)?;
/// let r = model_compiled(
///     &arr.netlist,
///     Time(50),
///     &MachineConfig::multimax(4),
///     PartitionStrategy::Lpt,
/// );
/// assert!(r.utilization() > 0.8); // homogeneous gates balance well
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn model_compiled(
    netlist: &Netlist,
    end: Time,
    machine: &MachineConfig,
    strategy: PartitionStrategy,
) -> ModelReport {
    let p = machine.procs;
    let cost = &machine.cost;
    let costs = element_costs(netlist, cost);
    let evaluated: Vec<usize> = netlist
        .iter_elements()
        .filter(|(_, e)| !e.kind().is_generator())
        .map(|(id, _)| id.index())
        .collect();
    let eval_costs: Vec<u64> = evaluated.iter().map(|&e| costs[e]).collect();
    let partition: Partition = match strategy {
        PartitionStrategy::RoundRobin => round_robin(evaluated.len(), p),
        PartitionStrategy::Block => block(evaluated.len(), p),
        PartitionStrategy::Lpt => lpt(&eval_costs, p),
    };
    let penalties = machine.penalties(memory_pressure(netlist.num_elements()));
    let barrier = cost.barrier_base + cost.barrier_per_proc * p as u64;

    let steps = end.ticks();
    let mut busy = vec![0u64; p];
    let mut t = 0u64;
    let mut evaluations = 0u64;
    for step in 0..steps {
        let mut phase = vec![0u64; p];
        for (slot, &e) in evaluated.iter().enumerate() {
            let proc = partition.assignment()[slot] as usize;
            let c = scaled(costs[e], cost.eval_noise, e as u64, step);
            phase[proc] += ((c as f64) * penalties[proc]).ceil() as u64;
        }
        evaluations += evaluated.len() as u64;
        let span = phase.iter().copied().max().unwrap_or(0);
        t += span + barrier;
        for (b, w) in busy.iter_mut().zip(&phase) {
            *b += w;
        }
    }
    if p > 1 {
        t = apply_os_interrupts(t, machine);
    }
    ModelReport {
        procs: p,
        virtual_time: t,
        busy,
        events: 0,
        local_events: 0,
        remote_events: 0,
        evaluations,
        activations: evaluations,
        deadlock_recoveries: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_circuits::{functional_multiplier, inverter_array};

    #[test]
    fn homogeneous_gates_scale_nearly_linearly() {
        let arr = inverter_array(32, 16, 1).unwrap();
        let uni = model_compiled(
            &arr.netlist,
            Time(50),
            &MachineConfig::multimax(1),
            PartitionStrategy::RoundRobin,
        );
        let s8 = model_compiled(
            &arr.netlist,
            Time(50),
            &MachineConfig::multimax(8),
            PartitionStrategy::RoundRobin,
        )
        .speedup(&uni);
        assert!(s8 > 5.0, "gate-level compiled speed-up at 8 procs: {s8:.2}");
    }

    #[test]
    fn functional_multiplier_balances_poorly() {
        // Fig. 3: compiled mode shines on large homogeneous gate circuits
        // (here the ~2.5k-gate multiplier) but trails on the ~140-element
        // heterogeneous functional multiplier.
        let func_c = functional_multiplier(&[(5, 9)], 64).unwrap();
        let gate_c = parsim_circuits::gate_multiplier(16, &[(1234, 567)], 256).unwrap();
        let procs = 15;
        let speedup = |netlist: &parsim_netlist::Netlist| {
            let uni = model_compiled(
                netlist,
                Time(64),
                &MachineConfig::multimax(1),
                PartitionStrategy::RoundRobin,
            );
            model_compiled(
                netlist,
                Time(64),
                &MachineConfig::multimax(procs),
                PartitionStrategy::RoundRobin,
            )
            .speedup(&uni)
        };
        let s_func = speedup(&func_c.netlist);
        let s_gate = speedup(&gate_c.netlist);
        assert!(
            s_func < 0.85 * s_gate,
            "functional {s_func:.2} should trail gate-level {s_gate:.2}"
        );
        assert!(s_gate > 8.5, "gate-level compiled at 15 procs: {s_gate:.2}");
    }

    #[test]
    fn lpt_beats_round_robin_on_heterogeneous_elements() {
        let m = functional_multiplier(&[(5, 9)], 64).unwrap();
        let cfg = MachineConfig::multimax(8);
        let rr = model_compiled(&m.netlist, Time(64), &cfg, PartitionStrategy::RoundRobin);
        let lp = model_compiled(&m.netlist, Time(64), &cfg, PartitionStrategy::Lpt);
        assert!(lp.virtual_time <= rr.virtual_time);
    }

    #[test]
    fn compiled_work_is_steps_times_elements() {
        let arr = inverter_array(4, 4, 1).unwrap();
        let r = model_compiled(
            &arr.netlist,
            Time(10),
            &MachineConfig::multimax(2),
            PartitionStrategy::Block,
        );
        assert_eq!(r.evaluations, 16 * 10);
    }
}
