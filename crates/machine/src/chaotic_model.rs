//! Modeled execution of the asynchronous algorithm (§4) on the virtual
//! multiprocessor.
//!
//! A discrete-event simulation of the lock-free engine: virtual
//! processors pull element activations from their FIFO columns of the
//! n×n grid, each activation replays every input event its valid times
//! allow (batching), appends output events, extends validities, and
//! stimulates fan-out at most once. The model executes activations in
//! global start-time order, so available parallelism, pipelining on
//! feedback chains, and batching depth all emerge from the circuit itself.
//!
//! One deliberate approximation: an activation sees the effects of every
//! activation that *started* earlier in virtual time (a real machine would
//! only expose effects of *completed* ones). This slightly deepens event
//! batching but never changes functional results — the algorithm is
//! conservative either way.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parsim_logic::{evaluate, expand_generator, transition_delay, Bit, Delay, ElemState, ElementKind, Time, Value};
use parsim_netlist::Netlist;

use crate::cost::{memory_pressure, MachineConfig};
use crate::report::ModelReport;
use crate::sync_model::{element_costs, scaled};

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const DIRTY: u8 = 3;

struct NodeSim {
    events: Vec<(u64, Value)>,
    valid: u64,
}

struct ElemSim {
    kind: ElementKind,
    rise: Delay,
    fall: Delay,
    /// min(rise, fall): the validity increment.
    delay: u64,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    cursors: Vec<usize>,
    cur_vals: Vec<Value>,
    state: ElemState,
    last_out: Vec<Value>,
    last_te: Vec<u64>,
    lookahead_ok: bool,
    occurrence: u64,
}

/// Models the asynchronous simulator on the given virtual machine.
///
/// # Examples
///
/// ```
/// use parsim_circuits::inverter_array;
/// use parsim_logic::Time;
/// use parsim_machine::{model_async, MachineConfig};
///
/// let arr = inverter_array(8, 8, 1)?;
/// let r = model_async(&arr.netlist, Time(100), &MachineConfig::multimax(8));
/// // Deep batching: far fewer activations than evaluations.
/// assert!(r.activations * 4 < r.evaluations);
/// assert!(r.utilization() > 0.5);
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn model_async(netlist: &Netlist, end: Time, machine: &MachineConfig) -> ModelReport {
    let end = end.ticks();
    let p = machine.procs;
    let cost = &machine.cost;
    let costs = element_costs(netlist, cost);
    let penalties = machine.penalties(memory_pressure(netlist.num_elements()));

    // ---- circuit state ----------------------------------------------------
    let mut nodes: Vec<NodeSim> = netlist
        .nodes()
        .iter()
        .map(|n| NodeSim {
            events: vec![(0, Value::x(n.width()))],
            valid: 0,
        })
        .collect();
    let mut total_events = 0u64;
    for (i, nd) in netlist.nodes().iter().enumerate() {
        match nd.driver() {
            Some((drv, _)) if netlist.element(drv).kind().is_generator() => {
                let kind = netlist.element(drv).kind();
                nodes[i].events.clear();
                for (t, v) in expand_generator(kind, Time(end)) {
                    nodes[i].events.push((t.ticks(), v));
                    total_events += 1;
                }
                nodes[i].valid = end;
            }
            Some(_) => {}
            None => nodes[i].valid = end,
        }
    }
    let mut elems: Vec<ElemSim> = netlist
        .iter_elements()
        .map(|(_, e)| {
            let scalar = e.inputs().iter().all(|&i| netlist.node(i).width() == 1)
                && e.outputs().iter().all(|&o| netlist.node(o).width() == 1);
            ElemSim {
                kind: e.kind().clone(),
                rise: e.rise_delay(),
                fall: e.fall_delay(),
                delay: e.min_delay().ticks(),
                inputs: e.inputs().iter().map(|&n| n.index() as u32).collect(),
                outputs: e.outputs().iter().map(|&n| n.index() as u32).collect(),
                cursors: vec![0; e.inputs().len()],
                cur_vals: e
                    .inputs()
                    .iter()
                    .map(|&n| Value::x(netlist.node(n).width()))
                    .collect(),
                state: ElemState::init(e.kind()),
                last_out: e
                    .outputs()
                    .iter()
                    .map(|&o| Value::x(netlist.node(o).width()))
                    .collect(),
                last_te: vec![0; e.outputs().len()],
                lookahead_ok: scalar
                    && machine.lookahead
                    && e.kind().controlling().is_some(),
                occurrence: 0,
            }
        })
        .collect();

    // ---- scheduler state ---------------------------------------------------
    // Each processor's column, ordered by arrival (push) time in virtual
    // time; a sequence number keeps same-instant pushes FIFO. Real pushes
    // happen at run completion instants, so arrival order — not DES
    // processing order — is the faithful FIFO order.
    let mut queues: Vec<BinaryHeap<Reverse<(u64, u64, u32)>>> =
        (0..p).map(|_| BinaryHeap::new()).collect();
    let mut seq = 0u64;
    let mut act = vec![IDLE; netlist.num_elements()];
    let mut rr = 0usize;
    for (id, e) in netlist.iter_elements() {
        if e.kind().is_generator() {
            continue;
        }
        act[id.index()] = QUEUED;
        // Hash-scatter (see the engine): avoids structural alignment
        // between circuit generation order and processor assignment.
        let target = ((id.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32)
            % p as u64;
        queues[target as usize].push(Reverse((0, seq, id.index() as u32)));
        seq += 1;
    }

    let mut proc_free = vec![0u64; p];
    let mut busy = vec![0u64; p];
    let mut evaluations = 0u64;
    let mut activations = 0u64;
    let mut finish_max = 0u64;
    let mut deadlock_recoveries = 0u64;

    // Arena memory homes: an element's output chunks live in the slab
    // arena of its hash-scatter home processor (mirroring the engine's
    // partition-contiguous allocation). A processor evaluating a foreign
    // element writes its events into remote memory.
    let home: Vec<usize> = (0..elems.len())
        .map(|e| (((e as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % p as u64) as usize)
        .collect();
    let mut local_events = 0u64;
    let mut remote_events = 0u64;

    loop {
        // Pick the execution with the globally earliest start time.
        let mut best: Option<(usize, u64)> = None;
        for (q, queue) in queues.iter().enumerate() {
            if let Some(&Reverse((avail, _, _))) = queue.peek() {
                let start = proc_free[q].max(avail);
                if best.is_none_or(|(_, s)| start < s) {
                    best = Some((q, start));
                }
            }
        }
        let Some((q, start)) = best else {
            if machine.incremental_validity {
                break;
            }
            // Chandy–Misra deadlock handling: "the simulation is run
            // asynchronously until no more elements have events on all
            // their inputs (i.e. deadlock). To break the deadlock, the
            // clock-values of the elements are updated and the simulation
            // is restarted" (§1).
            // One clock-update pass per recovery round: each element's
            // output clocks advance by one delay past its input minimum —
            // just enough to unlock some work, so feedback circuits
            // deadlock again and again (the cost the paper eliminates).
            let mut any_change = false;
            for elem in &elems {
                if elem.inputs.is_empty() {
                    continue;
                }
                let mv = elem
                    .inputs
                    .iter()
                    .map(|&n| nodes[n as usize].valid)
                    .min()
                    .expect("nonempty inputs");
                let nv = mv.saturating_add(elem.delay).min(end);
                for &out in &elem.outputs {
                    let out = out as usize;
                    if nodes[out].valid < nv {
                        nodes[out].valid = nv;
                        any_change = true;
                    }
                }
            }
            if !any_change {
                break; // true completion: recovery unlocked nothing
            }
            deadlock_recoveries += 1;
            // A global stall: every processor waits for the detection and
            // the clock update (charged per element, serially).
            let recovery_cost =
                cost.barrier_base + elems.len() as u64 * cost.update_cost;
            let resume = proc_free.iter().copied().max().unwrap_or(0) + recovery_cost;
            for pf in proc_free.iter_mut() {
                *pf = resume;
            }
            // Restart: re-activate every element with processable events.
            for (ei, elem) in elems.iter().enumerate() {
                if act[ei] != IDLE || elem.kind.is_generator() {
                    continue;
                }
                let has_work = elem.inputs.iter().enumerate().any(|(i, &n)| {
                    let node = &nodes[n as usize];
                    node.events
                        .get(elem.cursors[i])
                        .is_some_and(|&(t, _)| t <= node.valid)
                });
                if has_work {
                    act[ei] = QUEUED;
                    queues[rr].push(Reverse((resume, seq, ei as u32)));
                    seq += 1;
                    rr = (rr + 1) % p;
                }
            }
            continue;
        };
        let Reverse((_, _, e)) = queues[q].pop().expect("nonempty queue");
        let e = e as usize;
        act[e] = RUNNING;
        activations += 1;

        // ---- execute the activation (the §4 element procedure) -----------
        let mut cycles = cost.queue_op + cost.eval_overhead;
        let mut touched = false;
        let mut extended = false;
        let min_valid = elems[e]
            .inputs
            .iter()
            .map(|&n| nodes[n as usize].valid)
            .min()
            .unwrap_or(end);

        loop {
            // Earliest replayable event time across inputs.
            let mut t_next = u64::MAX;
            for (i, &n) in elems[e].inputs.iter().enumerate() {
                let node = &nodes[n as usize];
                if let Some(&(t, _)) = node.events.get(elems[e].cursors[i]) {
                    if t <= min_valid && t < t_next {
                        t_next = t;
                    }
                }
            }
            if t_next == u64::MAX {
                break;
            }
            for i in 0..elems[e].inputs.len() {
                let n = elems[e].inputs[i] as usize;
                while let Some(&(t, v)) = nodes[n].events.get(elems[e].cursors[i]) {
                    if t > t_next {
                        break;
                    }
                    elems[e].cursors[i] += 1;
                    elems[e].cur_vals[i] = v;
                }
            }
            let elem = &mut elems[e];
            let out = evaluate(&elem.kind, &elem.cur_vals, &mut elem.state);
            elem.occurrence += 1;
            evaluations += 1;
            cycles += scaled(costs[e], cost.eval_noise, e as u64, elem.occurrence);
            // Mirror the engine's pipelining: validity advances and
            // fan-out is stimulated while the run is still producing.
            let known_through = (t_next + elem.delay).min(end);
            let (rise, fall) = (elem.rise, elem.fall);
            let ports: Vec<(usize, Value)> = out.iter().collect();
            for (port, v) in ports {
                let out_node = elems[e].outputs[port] as usize;
                let changed = elems[e].last_out[port] != v;
                if changed {
                    let td =
                        transition_delay(&elems[e].last_out[port], &v, rise, fall);
                    let te =
                        (t_next + td.ticks()).max(elems[e].last_te[port] + 1);
                    if te <= end {
                        // Kept events only (mirrors the engine).
                        elems[e].last_out[port] = v;
                        elems[e].last_te[port] = te;
                        nodes[out_node].events.push((te, v));
                        if !machine.incremental_validity && nodes[out_node].valid < te {
                            // Chandy–Misra mode: knowledge travels only on
                            // event messages (timestamp = te).
                            nodes[out_node].valid = te;
                            extended = true;
                        }
                        total_events += 1;
                        cycles += cost.update_cost;
                        if q == home[e] {
                            local_events += 1;
                            cycles += cost.local_mem_cost;
                        } else {
                            remote_events += 1;
                            cycles += cost.remote_mem_cost;
                        }
                        touched = true;
                    }
                }
                if machine.incremental_validity
                    && nodes[out_node].valid < known_through {
                        nodes[out_node].valid = known_through;
                        extended = true;
                    }
                if changed {
                    let pushed_at =
                        start + ((cycles as f64) * penalties[q]).ceil() as u64;
                    for &(consumer, _) in netlist.nodes()[out_node].fanout() {
                        let c = consumer.index();
                        match act[c] {
                            IDLE => {
                                act[c] = QUEUED;
                                let avail = pushed_at
                                    + machine.topology.latency(q, rr);
                                queues[rr].push(Reverse((avail, seq, c as u32)));
                                seq += 1;
                                rr = (rr + 1) % p;
                                cycles += cost.queue_op;
                            }
                            RUNNING => act[c] = DIRTY,
                            _ => {}
                        }
                    }
                }
            }
        }

        // ---- controlling-value lookahead ----------------------------------
        let mut effective_valid = min_valid;
        if elems[e].lookahead_ok {
            let ctrl = elems[e].kind.controlling().expect("lookahead_ok");
            loop {
                let mut pin_end = 0u64;
                let mut pinned = false;
                for (i, &n) in elems[e].inputs.iter().enumerate() {
                    if bit_of(&elems[e].cur_vals[i]) != Some(ctrl.input) {
                        continue;
                    }
                    let node = &nodes[n as usize];
                    let hold = match node.events.get(elems[e].cursors[i]) {
                        Some(&(t, _)) => t.saturating_sub(1),
                        None => node.valid,
                    };
                    pin_end = pin_end.max(hold);
                    pinned = true;
                }
                if !pinned || pin_end <= effective_valid {
                    break;
                }
                effective_valid = pin_end;
                let mut consumed = false;
                for i in 0..elems[e].inputs.len() {
                    let n = elems[e].inputs[i] as usize;
                    while let Some(&(t, v)) = nodes[n].events.get(elems[e].cursors[i]) {
                        if t > pin_end {
                            break;
                        }
                        elems[e].cursors[i] += 1;
                        elems[e].cur_vals[i] = v;
                        consumed = true;
                    }
                }
                if !consumed {
                    break;
                }
            }
        }

        // ---- validity extension (the paper's incremental clock values;
        // absent in the Chandy–Misra ablation) -------------------------------
        if machine.incremental_validity {
            let out_valid = effective_valid.saturating_add(elems[e].delay).min(end);
            for k in 0..elems[e].outputs.len() {
                let out = elems[e].outputs[k] as usize;
                if nodes[out].valid < out_valid {
                    nodes[out].valid = out_valid;
                    extended = true;
                }
            }
        }

        let dur = (((cycles) as f64) * penalties[q]).ceil() as u64;
        let finish = start + dur;
        busy[q] += dur;
        proc_free[q] = finish;
        finish_max = finish_max.max(finish);

        // ---- stimulate fan-out at most once -------------------------------
        if touched || extended {
            let outputs = elems[e].outputs.clone();
            for &out in &outputs {
                for &(consumer, _) in netlist.nodes()[out as usize].fanout() {
                    let c = consumer.index();
                    match act[c] {
                        IDLE => {
                            act[c] = QUEUED;
                            let avail = finish + machine.topology.latency(q, rr);
                            queues[rr].push(Reverse((avail, seq, c as u32)));
                            seq += 1;
                            rr = (rr + 1) % p;
                        }
                        RUNNING => act[c] = DIRTY,
                        _ => {}
                    }
                }
            }
        }
        if act[e] == DIRTY {
            act[e] = QUEUED;
            let avail = finish + machine.topology.latency(q, rr);
            queues[rr].push(Reverse((avail, seq, e as u32)));
            seq += 1;
            rr = (rr + 1) % p;
        } else {
            act[e] = IDLE;
        }
    }

    ModelReport {
        procs: p,
        virtual_time: finish_max,
        busy,
        events: total_events,
        local_events,
        remote_events,
        evaluations,
        activations,
        deadlock_recoveries,
    }
}

fn bit_of(v: &Value) -> Option<Bit> {
    if v.width() != 1 {
        return None;
    }
    match v.bit_at(0) {
        Bit::Zero => Some(Bit::Zero),
        Bit::One => Some(Bit::One),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync_model::{model_seq, model_sync};
    use parsim_circuits::{functional_multiplier, inverter_array};

    #[test]
    fn uniprocessor_async_beats_event_driven_by_one_to_three_x() {
        // §5: "the uniprocessor version of the asynchronous algorithm
        // ranges between 1 to 3 times faster than the event-driven
        // algorithm."
        let arr = inverter_array(16, 16, 1).unwrap();
        let seq = model_seq(&arr.netlist, Time(150), &MachineConfig::multimax(1).cost);
        let asy = model_async(&arr.netlist, Time(150), &MachineConfig::multimax(1));
        let ratio = seq.virtual_time as f64 / asy.virtual_time as f64;
        assert!(
            (1.0..=3.5).contains(&ratio),
            "uniprocessor async/event-driven ratio {ratio:.2}"
        );
    }

    #[test]
    fn batching_is_deep_on_pipeline_circuits() {
        let arr = inverter_array(8, 8, 1).unwrap();
        let r = model_async(&arr.netlist, Time(200), &MachineConfig::multimax(1));
        // Events per activation much greater than 1 (the whole point).
        let per_act = r.events as f64 / r.activations as f64;
        assert!(per_act > 3.0, "batching {per_act:.2}");
    }

    #[test]
    fn async_utilization_beats_sync_at_high_proc_counts() {
        // Fig. 5's core claim: at 16 processors the asynchronous algorithm
        // utilizes processors 10-20+ points better than the event-driven
        // one on the inverter array (toggled at a realistic rate, where
        // the event-driven algorithm starves).
        let arr = inverter_array(32, 16, 4).unwrap();
        let m16 = MachineConfig::multimax(16);
        let asy = model_async(&arr.netlist, Time(150), &m16);
        let sync = model_sync(&arr.netlist, Time(150), &m16);
        assert!(
            asy.utilization() > sync.utilization() + 0.10,
            "async {:.2} should beat sync {:.2} by 10+ points",
            asy.utilization(),
            sync.utilization()
        );
    }

    #[test]
    fn functional_multiplier_pipelines() {
        // Small circuit: the asynchronous algorithm still extracts some
        // concurrency by pipelining; speedups are modest but real.
        let m = functional_multiplier(&[(9, 11), (100, 200), (4_000, 3)], 64).unwrap();
        let uni = model_async(&m.netlist, Time(192), &MachineConfig::multimax(1));
        let s4 = model_async(&m.netlist, Time(192), &MachineConfig::multimax(4));
        let speedup = s4.speedup(&uni);
        assert!(speedup > 1.2, "pipelined speed-up {speedup:.2}");
    }

    #[test]
    fn remote_memory_cost_slows_unpartitioned_runs() {
        let arr = inverter_array(16, 16, 2).unwrap();
        let base = MachineConfig::multimax(8);
        let r = model_async(&arr.netlist, Time(150), &base);
        // Uniprocessor: every write is local to the single arena. (Home
        // attribution covers run-time pushes only; generator traces are
        // pre-expanded at build time, so the sum is below `events`.)
        let uni = model_async(&arr.netlist, Time(150), &MachineConfig::multimax(1));
        assert_eq!(uni.remote_events, 0);
        assert!(uni.local_events > 0);
        assert!(uni.local_events <= uni.events);
        // Multiprocessor with dynamic scheduling: most elements run away
        // from their home arena at some point.
        assert!(r.local_events + r.remote_events <= r.events);
        assert!(r.remote_events > 0, "8 procs must produce remote writes");
        // Charging remote writes stretches virtual time; the default
        // (0-cost) report is unchanged, so existing figures hold.
        let mut dear = base.clone();
        dear.cost.remote_mem_cost = 50;
        let slow = model_async(&arr.netlist, Time(150), &dear);
        // (Counts can shift slightly: charged cycles move finish times,
        // which feed back into the dynamic schedule.)
        assert!(slow.remote_events > 0);
        assert!(
            slow.virtual_time > r.virtual_time,
            "remote memory cost must show up in virtual time: {} vs {}",
            slow.virtual_time,
            r.virtual_time
        );
    }

    #[test]
    fn deterministic() {
        let arr = inverter_array(8, 8, 2).unwrap();
        let a = model_async(&arr.netlist, Time(100), &MachineConfig::multimax(5));
        let b = model_async(&arr.netlist, Time(100), &MachineConfig::multimax(5));
        assert_eq!(a.virtual_time, b.virtual_time);
        assert_eq!(a.busy, b.busy);
    }
}
