//! The virtual machine's cost model.

/// Per-operation costs in virtual cycles.
///
/// One virtual cycle ≈ the time to evaluate one inverter (the paper's
/// "inverter event" unit, scaled by `event_scale`). Defaults are chosen so
/// the modeled algorithms land in the paper's reported ranges; every knob
/// is public so experiments can perturb them.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed cost of dispatching one element evaluation (dequeue, fetch,
    /// call). The event-driven algorithm pays this per element per time
    /// step; the asynchronous algorithm amortizes it over a batch.
    pub eval_overhead: u64,
    /// Multiplier applied to an element's
    /// [`eval_cost`](parsim_logic::ElementKind::eval_cost) per evaluated
    /// event.
    pub event_scale: u64,
    /// Cost of one node update (read record, write value, scan fan-out).
    pub update_cost: u64,
    /// Cost of one distributed-queue operation (enqueue or dequeue).
    pub queue_op: u64,
    /// Extra serialization cost per operation on a *centralized* queue
    /// (lock acquisition); used only when
    /// [`MachineConfig::distributed_queues`] is false.
    pub central_queue_op: u64,
    /// Fixed barrier cost.
    pub barrier_base: u64,
    /// Per-processor barrier cost (linear arrival/release).
    pub barrier_per_proc: u64,
    /// Extra cost per stolen work item.
    pub steal_cost: u64,
    /// Cost of writing one event record into memory homed on the
    /// evaluating processor (the owner's slab arena). Zero by default:
    /// local writes ride the `update_cost` charge.
    pub local_mem_cost: u64,
    /// Cost of writing one event record into memory homed on *another*
    /// processor (a chunk owned by a different partition's arena, or the
    /// global heap). Sweeping this against `local_mem_cost` models the
    /// locality benefit of partition-contiguous arena placement.
    pub remote_mem_cost: u64,
    /// Cache-sharing slowdown factor for paired processors at full memory
    /// pressure: each member of a sharing pair runs `1 + penalty *
    /// pressure` times slower. At the default 0.6 a pair delivers only
    /// ~25% more throughput than a lone processor, which collapses the
    /// speed-up slope past 8 processors — the knee the paper reports as
    /// "the dip in performance when using more than eight processors".
    pub cache_share_penalty: f64,
    /// Relative amplitude of data-dependent evaluation-time noise for
    /// functional elements ("the execution times, even for multiple
    /// evaluations of the same model, are unpredictable").
    pub eval_noise: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            eval_overhead: 6,
            event_scale: 2,
            update_cost: 2,
            queue_op: 2,
            central_queue_op: 4,
            barrier_base: 20,
            barrier_per_proc: 6,
            steal_cost: 3,
            local_mem_cost: 0,
            remote_mem_cost: 0,
            cache_share_penalty: 0.6,
            eval_noise: 0.5,
        }
    }
}

/// Optional OS working-set-scan interference: the paper's pre-fix kernel
/// interrupted one process for 0.1–0.25 s every 2 s, stalling every
/// barrier-synchronized peer (§2).
#[derive(Debug, Clone, Copy)]
pub struct OsInterrupts {
    /// Virtual cycles between interrupts.
    pub period: u64,
    /// Stall length in virtual cycles.
    pub duration: u64,
}

/// The interconnect the virtual processors communicate over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// The Encore Multimax's shared bus: uniform access.
    SharedMemory,
    /// A binary hypercube (the paper's §6 porting target): a message from
    /// processor `a` to `b` pays `hop_cost` cycles per differing address
    /// bit before it becomes visible.
    Hypercube { hop_cost: u64 },
}

impl Topology {
    /// Message latency between two processors.
    pub fn latency(&self, from: usize, to: usize) -> u64 {
        match self {
            Topology::SharedMemory => 0,
            Topology::Hypercube { hop_cost } => {
                hop_cost * (from ^ to).count_ones() as u64
            }
        }
    }

    /// Cost of a barrier over `procs` processors on this interconnect
    /// (dimension-ordered reduce + broadcast on the hypercube).
    pub fn barrier_extra(&self, procs: usize) -> u64 {
        match self {
            Topology::SharedMemory => 0,
            Topology::Hypercube { hop_cost } => {
                let dims = usize::BITS - procs.next_power_of_two().leading_zeros() - 1;
                2 * hop_cost * u64::from(dims)
            }
        }
    }
}

/// The virtual multiprocessor configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Processor count (the paper sweeps 1..=16).
    pub procs: usize,
    /// Processor cards; two processors share a cache once `procs`
    /// exceeds `cards` (Encore Multimax: 8 cards).
    pub cards: usize,
    /// Per-operation costs.
    pub cost: CostModel,
    /// End-of-phase work stealing (§2's +15–20% utilization fix).
    pub work_stealing: bool,
    /// Distributed per-processor queues versus the §2 strawman of one
    /// central queue.
    pub distributed_queues: bool,
    /// OS interference, if modeling the unpatched kernel.
    pub os_interrupts: Option<OsInterrupts>,
    /// Enable the asynchronous model's controlling-value lookahead.
    pub lookahead: bool,
    /// The interconnect between virtual processors.
    pub topology: Topology,
    /// The paper's key difference from Chandy–Misra: valid times ratchet
    /// forward incrementally (`true`, no deadlock) versus advancing only
    /// when events flow (`false`, the classic scheme that deadlocks on
    /// feedback and needs global detection-and-recovery rounds).
    pub incremental_validity: bool,
}

impl MachineConfig {
    /// The Encore Multimax the paper used: 8 dual-processor cards, work
    /// stealing on, distributed queues, patched OS.
    pub fn multimax(procs: usize) -> MachineConfig {
        MachineConfig {
            procs,
            cards: 8,
            cost: CostModel::default(),
            work_stealing: true,
            distributed_queues: true,
            os_interrupts: None,
            lookahead: true,
            topology: Topology::SharedMemory,
            incremental_validity: true,
        }
    }

    /// A binary hypercube with `procs` nodes (no cache sharing — each
    /// node has private memory) and the given per-hop message cost.
    pub fn hypercube(procs: usize, hop_cost: u64) -> MachineConfig {
        MachineConfig {
            procs,
            cards: procs, // private memory: no cache pairing
            cost: CostModel::default(),
            work_stealing: false, // stealing needs shared memory
            distributed_queues: true,
            os_interrupts: None,
            lookahead: true,
            topology: Topology::Hypercube { hop_cost },
            incremental_validity: true,
        }
    }

    /// Per-processor slowdown multipliers from cache sharing: processors
    /// beyond the card count pair up, and both members of a pair slow
    /// down in proportion to the circuit's memory pressure (0..=1).
    pub fn penalties(&self, memory_pressure: f64) -> Vec<f64> {
        let shared_pairs = self.procs.saturating_sub(self.cards);
        let penalized = (2 * shared_pairs).min(self.procs);
        (0..self.procs)
            .map(|p| {
                if p < penalized {
                    1.0 + self.cost.cache_share_penalty * memory_pressure
                } else {
                    1.0
                }
            })
            .collect()
    }
}

/// Deterministic per-(element, occurrence) evaluation-time noise in
/// `[1 - amp, 1 + amp]`, via splitmix64.
pub(crate) fn noise(amp: f64, elem: u64, occurrence: u64) -> f64 {
    if amp == 0.0 {
        return 1.0;
    }
    let mut z = elem
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(occurrence)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + amp * (2.0 * unit - 1.0)
}

/// Memory pressure of a circuit relative to the paper's largest benchmark
/// (the ~5000-element gate multiplier saturates at 1.0).
pub(crate) fn memory_pressure(num_elements: usize) -> f64 {
    (num_elements as f64 / 5000.0).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multimax_defaults() {
        let m = MachineConfig::multimax(16);
        assert_eq!(m.procs, 16);
        assert_eq!(m.cards, 8);
        assert!(m.work_stealing && m.distributed_queues);
        assert!(m.os_interrupts.is_none());
    }

    #[test]
    fn penalties_kick_in_past_card_count() {
        let m = MachineConfig::multimax(8);
        assert!(m.penalties(1.0).iter().all(|&p| p == 1.0));
        let m = MachineConfig::multimax(10);
        let pen = m.penalties(1.0);
        assert_eq!(pen.iter().filter(|&&p| p > 1.0).count(), 4);
        let m = MachineConfig::multimax(16);
        let pen = m.penalties(1.0);
        assert!(pen.iter().all(|&p| p > 1.0), "all 16 share caches");
        // Zero pressure: no penalty even when sharing.
        assert!(m.penalties(0.0).iter().all(|&p| p == 1.0));
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        for e in 0..50 {
            for k in 0..50 {
                let a = noise(0.5, e, k);
                let b = noise(0.5, e, k);
                assert_eq!(a, b);
                assert!((0.5..=1.5).contains(&a), "{a}");
            }
        }
        assert_eq!(noise(0.0, 3, 4), 1.0);
        assert_ne!(noise(0.5, 1, 1), noise(0.5, 1, 2));
    }

    #[test]
    fn hypercube_latency_is_hamming_hops() {
        let t = Topology::Hypercube { hop_cost: 5 };
        assert_eq!(t.latency(0, 0), 0);
        assert_eq!(t.latency(0b000, 0b111), 15);
        assert_eq!(t.latency(5, 6), 10); // 101 ^ 110 = 011
        assert_eq!(Topology::SharedMemory.latency(0, 15), 0);
        // Barrier scales with the cube dimension.
        assert_eq!(t.barrier_extra(8), 2 * 5 * 3);
        assert_eq!(Topology::SharedMemory.barrier_extra(8), 0);
    }

    #[test]
    fn hypercube_config_disables_cache_pairing() {
        let m = MachineConfig::hypercube(16, 10);
        assert!(m.penalties(1.0).iter().all(|&p| p == 1.0));
        assert!(!m.work_stealing);
    }

    #[test]
    fn memory_pressure_saturates() {
        assert!(memory_pressure(100) < 0.1);
        assert_eq!(memory_pressure(5000), 1.0);
        assert_eq!(memory_pressure(50_000), 1.0);
    }
}
