//! Instrumented sequential execution: the event trace the machine models
//! replay.
//!
//! Runs the exact two-phase event-driven algorithm (same semantics as
//! `parsim_core::EventDriven`) and records, per active time step, how many
//! node updates occurred and which elements were evaluated. The modeled
//! machines schedule this trace under their cost models, so the available
//! parallelism per step — the quantity the paper's Figs. 1–2 hinge on —
//! is the *real* one for the circuit, not an assumption.

use std::collections::BTreeMap;

use parsim_logic::{evaluate, expand_generator, transition_delay, ElemState, Time, Value};
use parsim_netlist::Netlist;

/// One active time step of the trace.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Simulation time of the step.
    pub time: u64,
    /// Nodes changed in the update phase.
    pub updates: Vec<u32>,
    /// Elements evaluated in the evaluate phase.
    pub evals: Vec<u32>,
}

/// The full per-step execution trace of a circuit.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// Active steps in time order.
    pub steps: Vec<StepRecord>,
    /// Total node-change events.
    pub total_events: u64,
    /// Total element evaluations.
    pub total_evals: u64,
}

impl ExecutionTrace {
    /// Mean events per active step.
    pub fn mean_events_per_step(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.total_events as f64 / self.steps.len() as f64
        }
    }
}

/// Traces a circuit's event-driven execution through `end` (inclusive).
///
/// # Examples
///
/// ```
/// use parsim_circuits::inverter_array;
/// use parsim_logic::Time;
///
/// let arr = inverter_array(4, 4, 1)?;
/// let trace = parsim_machine::trace_execution(&arr.netlist, Time(50));
/// assert!(trace.total_events > 100);
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn trace_execution(netlist: &Netlist, end: Time) -> ExecutionTrace {
    let end = end.ticks();
    let mut values: Vec<Value> = netlist
        .nodes()
        .iter()
        .map(|n| Value::x(n.width()))
        .collect();
    let mut last_scheduled = values.clone();
    let mut last_sched_time = vec![0u64; netlist.num_nodes()];
    let mut states: Vec<ElemState> = netlist
        .elements()
        .iter()
        .map(|e| ElemState::init(e.kind()))
        .collect();
    let mut schedule: BTreeMap<u64, Vec<(usize, Value)>> = BTreeMap::new();
    for gen in netlist.generators() {
        let e = netlist.element(gen);
        let out = e.outputs()[0].index();
        for (t, v) in expand_generator(e.kind(), Time(end)) {
            schedule.entry(t.ticks()).or_default().push((out, v));
        }
    }
    schedule.entry(0).or_default();

    let mut stamp = vec![u64::MAX; netlist.num_elements()];
    let init_activated: Vec<usize> = netlist
        .iter_elements()
        .filter(|(_, e)| !e.kind().is_generator())
        .map(|(id, _)| id.index())
        .collect();
    for &e in &init_activated {
        stamp[e] = 0;
    }

    let mut steps = Vec::new();
    let mut total_events = 0u64;
    let mut total_evals = 0u64;
    let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
    while let Some((&t, _)) = schedule.first_key_value() {
        if t > end {
            break;
        }
        let updates = schedule.remove(&t).expect("key observed");
        let mut activated = if t == 0 {
            init_activated.clone()
        } else {
            Vec::new()
        };
        let mut changed_nodes: Vec<u32> = Vec::new();
        for (node, v) in updates {
            if values[node] == v {
                continue;
            }
            values[node] = v;
            changed_nodes.push(node as u32);
            for &(elem, _) in netlist.nodes()[node].fanout() {
                let e = elem.index();
                if stamp[e] != t {
                    stamp[e] = t;
                    activated.push(e);
                }
            }
        }
        let mut evals = Vec::with_capacity(activated.len());
        for e in activated {
            let elem = &netlist.elements()[e];
            inputs_buf.clear();
            inputs_buf.extend(elem.inputs().iter().map(|&n| values[n.index()]));
            let out = evaluate(elem.kind(), &inputs_buf, &mut states[e]);
            evals.push(e as u32);
            for (port, v) in out.iter() {
                let out_node = elem.outputs()[port].index();
                if last_scheduled[out_node] == v {
                    continue;
                }
                let td = transition_delay(
                    &last_scheduled[out_node],
                    &v,
                    elem.rise_delay(),
                    elem.fall_delay(),
                );
                let te = (t + td.ticks()).max(last_sched_time[out_node] + 1);
                if te <= end {
                    // Kept events only (mirrors the seq engine).
                    last_scheduled[out_node] = v;
                    last_sched_time[out_node] = te;
                    schedule.entry(te).or_default().push((out_node, v));
                }
            }
        }
        if !changed_nodes.is_empty() || !evals.is_empty() {
            total_events += changed_nodes.len() as u64;
            total_evals += evals.len() as u64;
            steps.push(StepRecord {
                time: t,
                updates: changed_nodes,
                evals,
            });
        }
    }
    ExecutionTrace {
        steps,
        total_events,
        total_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_circuits::inverter_array;

    #[test]
    fn inverter_array_trace_reaches_steady_state() {
        // 8 columns x 4 deep, toggling every tick: steady state carries
        // 40 node changes per tick (8 inputs + 32 inverter outputs) and 32
        // evaluations (every inverter).
        let arr = inverter_array(8, 4, 1).unwrap();
        let trace = trace_execution(&arr.netlist, Time(100));
        // Skip the fill-in prefix; check steady-state density.
        let tail: Vec<&StepRecord> = trace
            .steps
            .iter()
            .filter(|s| s.time >= 20 && s.time <= 90)
            .collect();
        assert!(!tail.is_empty());
        for s in &tail {
            assert_eq!(s.updates.len(), 40, "steady state at t={}", s.time);
            assert_eq!(s.evals.len(), 32);
        }
    }

    #[test]
    fn toggle_period_halves_density() {
        let fast = inverter_array(8, 4, 1).unwrap();
        let slow = inverter_array(8, 4, 2).unwrap();
        let tf = trace_execution(&fast.netlist, Time(200));
        let ts = trace_execution(&slow.netlist, Time(200));
        let df = tf.mean_events_per_step();
        let ds = ts.mean_events_per_step();
        assert!(
            df > 1.7 * ds,
            "density should roughly halve: fast {df:.1} slow {ds:.1}"
        );
    }

    #[test]
    fn totals_are_consistent() {
        let arr = inverter_array(4, 4, 1).unwrap();
        let trace = trace_execution(&arr.netlist, Time(60));
        let sum_events: u64 = trace.steps.iter().map(|s| s.updates.len() as u64).sum();
        let sum_evals: u64 = trace.steps.iter().map(|s| s.evals.len() as u64).sum();
        assert_eq!(sum_events, trace.total_events);
        assert_eq!(sum_evals, trace.total_evals);
    }
}
