//! Model execution reports.

use std::fmt;

/// The outcome of one modeled execution.
///
/// # Examples
///
/// ```
/// use parsim_machine::ModelReport;
///
/// let uni = ModelReport { procs: 1, virtual_time: 1000, busy: vec![1000], events: 10, local_events: 0, remote_events: 0, evaluations: 10, activations: 10, deadlock_recoveries: 0 };
/// let par = ModelReport { procs: 4, virtual_time: 300, busy: vec![250; 4], events: 10, local_events: 0, remote_events: 0, evaluations: 10, activations: 10, deadlock_recoveries: 0 };
/// assert!((par.speedup(&uni) - 3.333).abs() < 0.01);
/// assert!((par.utilization() - 0.833).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Virtual processor count.
    pub procs: usize,
    /// Virtual cycles from start to completion.
    pub virtual_time: u64,
    /// Busy cycles per processor.
    pub busy: Vec<u64>,
    /// Node-change events processed.
    pub events: u64,
    /// Events written into memory homed on the evaluating processor
    /// (the driver's home arena). Only the chaotic model attributes
    /// event homes; the barrier-synchronous models report zero.
    pub local_events: u64,
    /// Events written into memory homed on another processor.
    pub remote_events: u64,
    /// Element evaluations performed.
    pub evaluations: u64,
    /// Element activations (schedulings).
    pub activations: u64,
    /// Global deadlock detection-and-recovery rounds (always zero with
    /// the paper's incremental validity updates; nonzero only in the
    /// Chandy–Misra ablation).
    pub deadlock_recoveries: u64,
}

impl ModelReport {
    /// Mean processor utilization: busy cycles over `procs × time`.
    pub fn utilization(&self) -> f64 {
        if self.virtual_time == 0 {
            return 1.0;
        }
        let busy: u64 = self.busy.iter().sum();
        busy as f64 / (self.procs as f64 * self.virtual_time as f64)
    }

    /// Speed-up relative to a baseline run (usually the same algorithm at
    /// one processor, as the paper normalizes its figures).
    pub fn speedup(&self, baseline: &ModelReport) -> f64 {
        if self.virtual_time == 0 {
            return 1.0;
        }
        baseline.virtual_time as f64 / self.virtual_time as f64
    }

    /// Events per evaluation — the asynchronous algorithm's batching
    /// factor.
    pub fn events_per_evaluation(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.events as f64 / self.evaluations as f64
        }
    }

    /// Fraction of home-attributed events that landed in remote memory
    /// (0.0 when the model doesn't attribute homes).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_events + self.remote_events;
        if total == 0 {
            0.0
        } else {
            self.remote_events as f64 / total as f64
        }
    }
}

impl fmt::Display for ModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} procs: {} cycles, util {:.0}%, {} events / {} evals / {} activations",
            self.procs,
            self.virtual_time,
            self.utilization() * 100.0,
            self.events,
            self.evaluations,
            self.activations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_cases() {
        let r = ModelReport {
            procs: 2,
            virtual_time: 0,
            busy: vec![0, 0],
            events: 0,
            local_events: 0,
            remote_events: 0,
            evaluations: 0,
            activations: 0,
            deadlock_recoveries: 0,
        };
        assert_eq!(r.utilization(), 1.0);
        assert_eq!(r.speedup(&r), 1.0);
        assert_eq!(r.events_per_evaluation(), 0.0);
        assert_eq!(r.remote_fraction(), 0.0);
    }
}
