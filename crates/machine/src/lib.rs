//! A deterministic virtual Encore Multimax.
//!
//! The paper's evaluation ran on a 16-processor Encore Multimax (8 cards,
//! two processors per card sharing one cache). This host has a single
//! core, so wall-clock speed-up curves are physically unobtainable —
//! instead, this crate *simulates the multiprocessor*: it executes the
//! same scheduling decisions the real engines make (round-robin scatter,
//! end-of-phase work stealing, at-most-once activation, event batching)
//! while charging per-operation costs from a [`CostModel`], and reports
//! virtual execution time and per-processor utilization.
//!
//! Because the model runs the *actual algorithms* on the *actual event
//! traces* of the circuit, the paper's qualitative results emerge from
//! structure rather than curve fitting:
//!
//! - event starvation caps the synchronous algorithm's speed-up
//!   (Figs. 1–2),
//! - barrier costs grow with processor count,
//! - cache sharing beyond 8 processors produces the dip the paper
//!   attributes to the Multimax's dual-processor cards,
//! - compiled mode scales nearly linearly on homogeneous gate circuits
//!   but poorly on the ~100-element functional multiplier (Fig. 3),
//! - the asynchronous algorithm's batching amortizes scheduling overhead
//!   (the 1–3× uniprocessor advantage of §5) and its lack of barriers
//!   raises utilization (Figs. 4–5).
//!
//! # Examples
//!
//! ```
//! use parsim_circuits::inverter_array;
//! use parsim_logic::Time;
//! use parsim_machine::{model_async, model_sync, MachineConfig};
//!
//! let arr = inverter_array(8, 8, 1)?;
//! let uni = model_sync(&arr.netlist, Time(100), &MachineConfig::multimax(1));
//! let par = model_sync(&arr.netlist, Time(100), &MachineConfig::multimax(8));
//! assert!(par.speedup(&uni) > 2.0);
//! let a = model_async(&arr.netlist, Time(100), &MachineConfig::multimax(8));
//! assert!(a.utilization() > 0.5);
//! # Ok::<(), parsim_netlist::BuildError>(())
//! ```

mod chaotic_model;
mod compiled_model;
mod cost;
mod report;
mod sync_model;
mod trace;

pub use chaotic_model::model_async;
pub use compiled_model::{model_compiled, PartitionStrategy};
pub use cost::{CostModel, MachineConfig, OsInterrupts, Topology};
pub use report::ModelReport;
pub use sync_model::{model_seq, model_sync};
pub use trace::{trace_execution, ExecutionTrace, StepRecord};
