//! Modeled execution of the synchronous event-driven algorithm (and its
//! uniprocessor baseline).
//!
//! The model replays the circuit's real execution trace (see
//! [`trace_execution`](crate::trace_execution)) under the machine's cost
//! model: per step, node updates and element evaluations are scattered
//! round-robin across the virtual processors exactly as the engine
//! scatters them, idle processors steal from the back of the longest
//! remaining queue, the phases end with barriers, and (optionally) every
//! queue operation serializes through a central lock — reproducing the §2
//! strawman that capped speed-up at ~2.

use std::collections::VecDeque;

use parsim_logic::Time;
use parsim_netlist::Netlist;

use crate::cost::{memory_pressure, noise, CostModel, MachineConfig};
use crate::report::ModelReport;
use crate::trace::trace_execution;

/// Models the *uniprocessor* event-driven simulator (the paper's
/// normalization baseline): no barriers, no queue scatter — just the
/// sequential two-phase loop under the same per-operation costs.
pub fn model_seq(netlist: &Netlist, end: Time, cost: &CostModel) -> ModelReport {
    let trace = trace_execution(netlist, end);
    let costs = element_costs(netlist, cost);
    let mut occurrence = vec![0u64; netlist.num_elements()];
    let mut t = 0u64;
    for step in &trace.steps {
        t += step.updates.len() as u64 * (cost.update_cost + cost.queue_op);
        for &e in &step.evals {
            let e = e as usize;
            occurrence[e] += 1;
            t += cost.queue_op
                + cost.eval_overhead
                + scaled(costs[e], cost.eval_noise, e as u64, occurrence[e]);
        }
    }
    ModelReport {
        procs: 1,
        virtual_time: t,
        busy: vec![t],
        events: trace.total_events,
        local_events: 0,
        remote_events: 0,
        evaluations: trace.total_evals,
        activations: trace.total_evals,
        deadlock_recoveries: 0,
    }
}

/// Models the parallel synchronous event-driven simulator on the given
/// virtual machine.
///
/// # Examples
///
/// ```
/// use parsim_circuits::inverter_array;
/// use parsim_logic::Time;
/// use parsim_machine::{model_sync, MachineConfig};
///
/// let arr = inverter_array(8, 8, 1)?;
/// let r = model_sync(&arr.netlist, Time(80), &MachineConfig::multimax(4));
/// assert_eq!(r.procs, 4);
/// assert!(r.virtual_time > 0);
/// # Ok::<(), parsim_netlist::BuildError>(())
/// ```
pub fn model_sync(netlist: &Netlist, end: Time, machine: &MachineConfig) -> ModelReport {
    let trace = trace_execution(netlist, end);
    let cost = &machine.cost;
    let costs = element_costs(netlist, cost);
    let penalties = machine.penalties(memory_pressure(netlist.num_elements()));
    let p = machine.procs;
    let barrier = cost.barrier_base
        + cost.barrier_per_proc * p as u64
        + machine.topology.barrier_extra(p);
    // On a message-passing interconnect, every scattered item pays the
    // mean network latency on top of the queue operation.
    let mean_latency = if p > 1 {
        let total: u64 = (0..p)
            .flat_map(|a| (0..p).map(move |b| (a, b)))
            .map(|(a, b)| machine.topology.latency(a, b))
            .sum();
        total / (p as u64 * p as u64)
    } else {
        0
    };

    let mut occurrence = vec![0u64; netlist.num_elements()];
    let mut busy = vec![0u64; p];
    let mut t = 0u64;
    let mut update_costs: Vec<u64> = Vec::new();
    let mut eval_costs: Vec<u64> = Vec::new();
    for step in &trace.steps {
        // Update phase: apply node changes (each was dequeued from a
        // distributed queue) and push the resulting activations.
        update_costs.clear();
        update_costs.extend(
            step.updates
                .iter()
                .map(|_| cost.update_cost + cost.queue_op + mean_latency),
        );
        // Activation pushes are charged with the evaluation items (one
        // enqueue + one dequeue per activation).
        eval_costs.clear();
        eval_costs.extend(step.evals.iter().map(|&e| {
            let e = e as usize;
            occurrence[e] += 1;
            2 * cost.queue_op
                + mean_latency
                + cost.eval_overhead
                + scaled(costs[e], cost.eval_noise, e as u64, occurrence[e])
        }));

        // Without stealing, work is placed by *static ownership* (a block
        // partition — the paper's "static load-balancing" baseline);
        // otherwise it is scattered round-robin at insert time.
        let owners_updates: Option<Vec<usize>> = (!machine.work_stealing).then(|| {
            step.updates
                .iter()
                .map(|&n| block_owner(n as usize, netlist.num_nodes(), p))
                .collect()
        });
        let owners_evals: Option<Vec<usize>> = (!machine.work_stealing).then(|| {
            step.evals
                .iter()
                .map(|&e| block_owner(e as usize, netlist.num_elements(), p))
                .collect()
        });
        for (phase, owners) in [
            (&update_costs, owners_updates.as_deref()),
            (&eval_costs, owners_evals.as_deref()),
        ] {
            let (span, phase_busy) = schedule_phase_owned(phase, owners, machine, &penalties);
            t += span + barrier;
            for (b, pb) in busy.iter_mut().zip(&phase_busy) {
                *b += pb;
            }
        }
    }
    if p > 1 {
        t = apply_os_interrupts(t, machine);
    }
    ModelReport {
        procs: p,
        virtual_time: t,
        busy,
        events: trace.total_events,
        local_events: 0,
        remote_events: 0,
        evaluations: trace.total_evals,
        activations: trace.total_evals,
        deadlock_recoveries: 0,
    }
}

/// Greedy scheduling of one phase's work items over the virtual
/// processors.
///
/// Items are dealt round-robin into per-processor queues (the engine's
/// insert-time scatter). Each processor consumes its own queue; with work
/// stealing enabled, a processor whose queue is empty steals from the back
/// of the longest remaining queue at `steal_cost` extra. With a central
/// queue, every item first passes through a serially-owned lock.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn schedule_phase(
    items: &[u64],
    machine: &MachineConfig,
    penalties: &[f64],
) -> (u64, Vec<u64>) {
    schedule_phase_owned(items, None, machine, penalties)
}

/// [`schedule_phase`] with optional per-item static ownership (used by the
/// no-stealing baseline).
pub(crate) fn schedule_phase_owned(
    items: &[u64],
    owners: Option<&[usize]>,
    machine: &MachineConfig,
    penalties: &[f64],
) -> (u64, Vec<u64>) {
    let p = machine.procs;
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); p];
    for (i, &c) in items.iter().enumerate() {
        let target = owners.map_or(i % p, |o| o[i]);
        queues[target].push_back(c);
    }
    let mut t = vec![0u64; p];
    let mut queue_free = 0u64; // the central lock's next free time
    loop {
        // Earliest-available processor next (approximates real time
        // order).
        let me = (0..p).min_by_key(|&q| t[q]).expect("procs > 0");
        let (work, steal) = match queues[me].pop_front() {
            Some(w) => (w, 0),
            None => {
                let victim = (0..p)
                    .filter(|&v| !queues[v].is_empty())
                    .max_by_key(|&v| queues[v].len());
                match (victim, machine.work_stealing) {
                    (Some(v), true) => (
                        queues[v].pop_back().expect("nonempty victim"),
                        machine.cost.steal_cost,
                    ),
                    _ => {
                        // This processor is done; park it at the max so
                        // the argmin moves on. If all queues are empty we
                        // are finished.
                        if queues.iter().all(VecDeque::is_empty) {
                            break;
                        }
                        // No stealing: skip this processor permanently by
                        // advancing it past every possible finish time.
                        let remaining: u64 =
                            queues.iter().flat_map(|q| q.iter()).sum::<u64>();
                        let parked = t[me];
                        t[me] = parked + remaining + 1;
                        continue;
                    }
                }
            }
        };
        let mut start = t[me];
        if !machine.distributed_queues {
            // Central queue: serialize the dequeue through the lock.
            start = start.max(queue_free);
            queue_free = start + machine.cost.central_queue_op;
            start = queue_free;
        }
        let dur = (((work + steal) as f64) * penalties[me]).ceil() as u64;
        let finish = start + dur;
        t[me] = finish;
    }
    // Undo parking before reporting busy times.
    let mut busy = t.clone();
    if !machine.work_stealing {
        // Parked processors carried a sentinel; recompute busy as the sum
        // of their own executed work. Simplest: recompute by re-dealing.
        let mut own = vec![0u64; p];
        for (i, &c) in items.iter().enumerate() {
            let me = owners.map_or(i % p, |o| o[i]);
            own[me] += ((c as f64) * penalties[me]).ceil() as u64;
        }
        busy = own;
    }
    let span = busy.iter().copied().max().unwrap_or(0).max(
        if machine.work_stealing {
            *t.iter().max().unwrap_or(&0)
        } else {
            0
        },
    );
    (span, busy)
}

/// The block partition used as the static-ownership baseline.
pub(crate) fn block_owner(index: usize, total: usize, procs: usize) -> usize {
    let per = total.div_ceil(procs).max(1);
    (index / per).min(procs - 1)
}

pub(crate) fn element_costs(netlist: &Netlist, cost: &CostModel) -> Vec<u64> {
    netlist
        .elements()
        .iter()
        .map(|e| e.kind().eval_cost() * cost.event_scale)
        .collect()
}

pub(crate) fn scaled(base: u64, amp: f64, elem: u64, occ: u64) -> u64 {
    ((base as f64) * noise(amp, elem, occ)).ceil() as u64
}

pub(crate) fn apply_os_interrupts(t: u64, machine: &MachineConfig) -> u64 {
    match machine.os_interrupts {
        Some(os) if os.period > 0 => t + (t / os.period) * os.duration,
        _ => t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_circuits::inverter_array;

    fn machine(procs: usize) -> MachineConfig {
        MachineConfig::multimax(procs)
    }

    #[test]
    fn phase_scheduling_balances_with_stealing() {
        let m = machine(4);
        let pen = vec![1.0; 4];
        // One heavy item + many light: stealing should approach ideal.
        let mut items = vec![10u64; 40];
        items[0] = 50;
        let (span, busy) = schedule_phase(&items, &m, &pen);
        let total: u64 = busy.iter().sum();
        assert!(span >= total / 4);
        assert!(span < total / 2, "span {span} vs total {total}");
    }

    #[test]
    fn stealing_beats_static_on_imbalanced_rr_deal() {
        // Items dealt round-robin where one processor's share is heavy.
        let items: Vec<u64> = (0..40).map(|i| if i % 4 == 0 { 40 } else { 4 }).collect();
        let mut with = machine(4);
        with.work_stealing = true;
        let mut without = machine(4);
        without.work_stealing = false;
        let pen = vec![1.0; 4];
        let (span_with, _) = schedule_phase(&items, &with, &pen);
        let (span_without, _) = schedule_phase(&items, &without, &pen);
        assert!(
            span_with < span_without,
            "stealing {span_with} should beat static {span_without}"
        );
    }

    #[test]
    fn central_queue_serializes() {
        let items = vec![4u64; 64];
        let mut central = machine(8);
        central.distributed_queues = false;
        let distributed = machine(8);
        let pen = vec![1.0; 8];
        let (span_c, _) = schedule_phase(&items, &central, &pen);
        let (span_d, _) = schedule_phase(&items, &distributed, &pen);
        assert!(
            span_c > 2 * span_d,
            "central {span_c} should be far worse than distributed {span_d}"
        );
    }

    #[test]
    fn sync_model_speedup_grows_then_saturates() {
        let arr = inverter_array(16, 8, 1).unwrap();
        let uni = model_sync(&arr.netlist, Time(100), &machine(1));
        let s4 = model_sync(&arr.netlist, Time(100), &machine(4)).speedup(&uni);
        let s8 = model_sync(&arr.netlist, Time(100), &machine(8)).speedup(&uni);
        assert!(s4 > 2.0, "s4 = {s4:.2}");
        assert!(s8 > s4, "s8 {s8:.2} should exceed s4 {s4:.2}");
        assert!(s8 < 8.0, "sublinear: {s8:.2}");
    }

    #[test]
    fn cache_sharing_knee_past_eight_processors() {
        // On a memory-heavy circuit (pressure ~1) the speed-up slope
        // collapses once processors start sharing caches — the paper's
        // ">8 processors" dip. Compare the marginal speed-up of procs
        // 6->8 against 8->10.
        let arr = inverter_array(64, 78, 1).unwrap(); // ~4992 elements
        let uni = model_sync(&arr.netlist, Time(60), &machine(1));
        let s6 = model_sync(&arr.netlist, Time(60), &machine(6)).speedup(&uni);
        let s8 = model_sync(&arr.netlist, Time(60), &machine(8)).speedup(&uni);
        let s10 = model_sync(&arr.netlist, Time(60), &machine(10)).speedup(&uni);
        let slope_before = (s8 - s6) / 2.0;
        let slope_after = (s10 - s8) / 2.0;
        assert!(
            slope_after < 0.5 * slope_before,
            "slope should collapse past 8: before {slope_before:.2}/proc, after {slope_after:.2}/proc (s6 {s6:.2} s8 {s8:.2} s10 {s10:.2})"
        );
    }

    #[test]
    fn seq_model_counts_match_trace() {
        let arr = inverter_array(4, 4, 2).unwrap();
        let r = model_seq(&arr.netlist, Time(80), &CostModel::default());
        assert!(r.events > 0);
        assert_eq!(r.procs, 1);
        assert_eq!(r.busy[0], r.virtual_time);
    }

    #[test]
    fn os_interrupts_slow_things_down() {
        let arr = inverter_array(8, 8, 1).unwrap();
        let clean = model_sync(&arr.netlist, Time(100), &machine(4));
        let mut noisy_cfg = machine(4);
        noisy_cfg.os_interrupts = Some(crate::cost::OsInterrupts {
            period: 1000,
            duration: 800,
        });
        let noisy = model_sync(&arr.netlist, Time(100), &noisy_cfg);
        assert!(noisy.virtual_time > clean.virtual_time);
    }
}
