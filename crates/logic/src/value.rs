//! Four-state logic vectors.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A single four-state logic bit.
///
/// # Examples
///
/// ```
/// use parsim_logic::Bit;
///
/// assert_eq!(Bit::from(true), Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bit {
    /// Strong logic low.
    Zero,
    /// Strong logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'x',
            Bit::Z => 'z',
        };
        write!(f, "{c}")
    }
}

/// A four-state logic vector of 1 to 64 bits.
///
/// Uses the classic two-plane encoding: for each bit position the pair of
/// planes `(a, b)` encodes `0 = (0,0)`, `1 = (1,0)`, `Z = (0,1)`,
/// `X = (1,1)`. All boolean operations implement conservative four-state
/// semantics (a controlling value dominates an `X`; `Z` inputs are treated
/// as `X`), and arithmetic returns all-`X` whenever any input bit is
/// unknown, matching conventional gate/RTL-level simulator behavior.
///
/// Bits above `width` are always zero in both planes (a maintained
/// invariant all operations rely on).
///
/// # Examples
///
/// ```
/// use parsim_logic::Value;
///
/// let a = Value::from_u64(0b1100, 4);
/// let b = Value::from_u64(0b1010, 4);
/// assert_eq!(a.and(&b), Value::from_u64(0b1000, 4));
/// assert_eq!(a.and(&Value::x(4)).bit_at(3), parsim_logic::Bit::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value {
    width: u8,
    /// Plane a: set for `1` and `X` bits.
    a: u64,
    /// Plane b: set for `Z` and `X` bits.
    b: u64,
}

impl Value {
    /// Creates an all-zeros value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn zero(width: u8) -> Value {
        assert_width(width);
        Value { width, a: 0, b: 0 }
    }

    /// Creates an all-ones value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn ones(width: u8) -> Value {
        assert_width(width);
        Value {
            width,
            a: mask(width),
            b: 0,
        }
    }

    /// Creates an all-`X` (unknown) value of the given width.
    ///
    /// Every node starts at `X` at time zero, exactly as in the paper's
    /// example where node 4 "is only known to be X at time 0".
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn x(width: u8) -> Value {
        assert_width(width);
        let m = mask(width);
        Value { width, a: m, b: m }
    }

    /// Creates an all-`Z` (high impedance) value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn z(width: u8) -> Value {
        assert_width(width);
        Value {
            width,
            a: 0,
            b: mask(width),
        }
    }

    /// Creates a fully known value from the low `width` bits of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn from_u64(v: u64, width: u8) -> Value {
        assert_width(width);
        Value {
            width,
            a: v & mask(width),
            b: 0,
        }
    }

    /// Creates a single known bit.
    pub fn bit(b: bool) -> Value {
        Value::from_u64(b as u64, 1)
    }

    /// Creates a value from a slice of bits, index 0 being the LSB.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or longer than 64.
    pub fn from_bits(bits: &[Bit]) -> Value {
        assert!(!bits.is_empty() && bits.len() <= 64, "1..=64 bits required");
        let mut a = 0u64;
        let mut b = 0u64;
        for (i, bit) in bits.iter().enumerate() {
            let (pa, pb) = match bit {
                Bit::Zero => (0, 0),
                Bit::One => (1, 0),
                Bit::Z => (0, 1),
                Bit::X => (1, 1),
            };
            a |= pa << i;
            b |= pb << i;
        }
        Value {
            width: bits.len() as u8,
            a,
            b,
        }
    }

    /// The width in bits (1..=64).
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Returns the bit at `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn bit_at(&self, index: u8) -> Bit {
        assert!(index < self.width, "bit index out of range");
        match ((self.a >> index) & 1, (self.b >> index) & 1) {
            (0, 0) => Bit::Zero,
            (1, 0) => Bit::One,
            (0, 1) => Bit::Z,
            _ => Bit::X,
        }
    }

    /// True if every bit is a strong `0` or `1`.
    #[inline]
    pub fn is_fully_known(&self) -> bool {
        self.b == 0
    }

    /// True if any bit is `X` or `Z`.
    #[inline]
    pub fn has_unknown(&self) -> bool {
        self.b != 0
    }

    /// The numeric value, if fully known.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        if self.is_fully_known() {
            Some(self.a)
        } else {
            None
        }
    }

    /// Decomposes the value into its two encoding planes `(a, b)`.
    ///
    /// Plane `a` is set for `1` and `X` bits, plane `b` for `Z` and `X`
    /// bits. Together with [`Value::from_planes`] this is the bridge
    /// between scalar values and the word-parallel bit-plane kernels in
    /// [`packed`](crate::packed).
    #[inline]
    pub fn to_planes(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// Reassembles a value from its two encoding planes (see
    /// [`Value::to_planes`]). Bits above `width` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[inline]
    pub fn from_planes(width: u8, a: u64, b: u64) -> Value {
        assert_width(width);
        let m = mask(width);
        Value {
            width,
            a: a & m,
            b: b & m,
        }
    }

    /// Treats `Z` bits as `X`, producing a pure-logic view.
    ///
    /// Gate inputs cannot distinguish a floating wire from an unknown one.
    #[inline]
    pub fn to_logic(&self) -> Value {
        Value {
            width: self.width,
            a: self.a | self.b,
            b: self.b,
        }
    }

    /// Mask of known bit positions (strong 0 or 1).
    #[inline]
    fn known(&self) -> u64 {
        mask(self.width) & !self.b
    }

    /// Mask of known-one positions.
    #[inline]
    fn k1(&self) -> u64 {
        self.a & !self.b
    }

    /// Mask of known-zero positions.
    #[inline]
    fn k0(&self) -> u64 {
        self.known() & !self.a
    }

    /// Bitwise four-state AND.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn and(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        let zeros = self.k0() | rhs.k0();
        let ones = self.k1() & rhs.k1();
        Value::from_masks(self.width, zeros, ones)
    }

    /// Bitwise four-state OR.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn or(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        let ones = self.k1() | rhs.k1();
        let zeros = self.k0() & rhs.k0();
        Value::from_masks(self.width, zeros, ones)
    }

    /// Bitwise four-state XOR (unknown if either side is unknown).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xor(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        let known = self.known() & rhs.known();
        let v = (self.a ^ rhs.a) & known;
        let ones = v;
        let zeros = known & !v;
        Value::from_masks(self.width, zeros, ones)
    }

    /// Bitwise four-state NOT (`X`/`Z` stay unknown).
    pub fn not(&self) -> Value {
        let ones = self.k0();
        let zeros = self.k1();
        Value::from_masks(self.width, zeros, ones)
    }

    fn from_masks(width: u8, zeros: u64, ones: u64) -> Value {
        let m = mask(width);
        let unknown = m & !(zeros | ones);
        Value {
            width,
            a: (ones | unknown) & m,
            b: unknown,
        }
    }

    /// AND-reduction to a single bit.
    pub fn reduce_and(&self) -> Value {
        if self.k0() != 0 {
            Value::bit(false)
        } else if self.k1() == mask(self.width) {
            Value::bit(true)
        } else {
            Value::x(1)
        }
    }

    /// OR-reduction to a single bit.
    pub fn reduce_or(&self) -> Value {
        if self.k1() != 0 {
            Value::bit(true)
        } else if self.k0() == mask(self.width) {
            Value::bit(false)
        } else {
            Value::x(1)
        }
    }

    /// XOR-reduction to a single bit (`X` if any bit unknown).
    pub fn reduce_xor(&self) -> Value {
        if self.is_fully_known() {
            Value::bit(self.a.count_ones() % 2 == 1)
        } else {
            Value::x(1)
        }
    }

    /// Wrapping addition; all-`X` if either operand has unknown bits.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(x), Some(y)) => Value::from_u64(x.wrapping_add(y), self.width),
            _ => Value::x(self.width),
        }
    }

    /// Addition with carry-in, returning `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or `cin` is not 1 bit wide.
    pub fn add_carry(&self, rhs: &Value, cin: &Value) -> (Value, Value) {
        self.check_width(rhs);
        assert_eq!(cin.width, 1, "carry-in must be a single bit");
        match (self.to_u64(), rhs.to_u64(), cin.to_u64()) {
            (Some(x), Some(y), Some(c)) => {
                let wide = (x as u128) + (y as u128) + (c as u128);
                let sum = (wide as u64) & mask(self.width);
                let carry = (wide >> self.width) & 1;
                (
                    Value::from_u64(sum, self.width),
                    Value::from_u64(carry as u64, 1),
                )
            }
            _ => (Value::x(self.width), Value::x(1)),
        }
    }

    /// Wrapping subtraction; all-`X` if either operand has unknown bits.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn sub(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(x), Some(y)) => Value::from_u64(x.wrapping_sub(y), self.width),
            _ => Value::x(self.width),
        }
    }

    /// Multiplication producing a `out_width`-bit product (wrapping).
    ///
    /// All-`X` if either operand has unknown bits.
    ///
    /// # Panics
    ///
    /// Panics if `out_width` is 0 or greater than 64.
    pub fn mul(&self, rhs: &Value, out_width: u8) -> Value {
        assert_width(out_width);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(x), Some(y)) => Value::from_u64(x.wrapping_mul(y), out_width),
            _ => Value::x(out_width),
        }
    }

    /// Four-state equality comparison, returning a single bit.
    ///
    /// Known-unequal pairs force `0`; fully known equal vectors give `1`;
    /// anything else is `X`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn logic_eq(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        // A definitely-unequal bit: known in both and different.
        let both_known = self.known() & rhs.known();
        if (self.a ^ rhs.a) & both_known != 0 {
            Value::bit(false)
        } else if both_known == mask(self.width) {
            Value::bit(true)
        } else {
            Value::x(1)
        }
    }

    /// Unsigned less-than comparison, returning a single bit (`X` if either
    /// operand has unknown bits).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn logic_lt(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        match (self.to_u64(), rhs.to_u64()) {
            (Some(x), Some(y)) => Value::bit(x < y),
            _ => Value::x(1),
        }
    }

    /// Resolves two driver contributions on a shared bus, per bit:
    /// `Z` yields to any driven value, agreeing drivers keep their value,
    /// conflicting strong drivers (`0` vs `1`) produce `X`, and `X`
    /// contaminates everything except a pure `Z`.
    ///
    /// This is the standard wired-bus resolution table; the
    /// [`Resolver`](crate::ElementKind::Resolver) element folds it over
    /// all bus drivers.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use parsim_logic::Value;
    ///
    /// let driven = Value::from_u64(0b10, 2);
    /// let idle = Value::z(2);
    /// assert_eq!(driven.resolve(&idle), driven);
    /// assert_eq!(idle.resolve(&idle), idle);
    /// // Conflicting strong drivers short to X.
    /// assert_eq!(
    ///     Value::bit(true).resolve(&Value::bit(false)),
    ///     Value::x(1)
    /// );
    /// ```
    pub fn resolve(&self, rhs: &Value) -> Value {
        self.check_width(rhs);
        // Allocation-free plane arithmetic: a released (Z) driver yields to
        // the other side, agreeing strong drivers pass through, and every
        // other combination (X on either side, 0-vs-1 conflict) shorts to X.
        let m = mask(self.width);
        let (z1, z2) = (!self.a & self.b, !rhs.a & rhs.b);
        let (k1a, k1b) = (self.a & !self.b, rhs.a & !rhs.b);
        let (k0a, k0b) = (!self.a & !self.b & m, !rhs.a & !rhs.b & m);
        let ones = (k1a & (k1b | z2)) | (k1b & z1);
        let zeros = (k0a & (k0b | z2)) | (k0b & z1);
        let z_out = z1 & z2;
        let x_out = m & !(ones | zeros | z_out);
        Value {
            width: self.width,
            a: ones | x_out,
            b: z_out | x_out,
        }
    }

    /// Concatenates `high` above `self` (`self` stays the LSBs).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64.
    pub fn concat(&self, high: &Value) -> Value {
        let w = self.width as u16 + high.width as u16;
        assert!(w <= 64, "concatenated width exceeds 64");
        Value {
            width: w as u8,
            a: self.a | (high.a << self.width),
            b: self.b | (high.b << self.width),
        }
    }

    /// Extracts bits `[lo, lo+width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `self.width()` or `width` is 0.
    pub fn slice(&self, lo: u8, width: u8) -> Value {
        assert_width(width);
        assert!(
            lo as u16 + width as u16 <= self.width as u16,
            "slice out of range"
        );
        Value {
            width,
            a: (self.a >> lo) & mask(width),
            b: (self.b >> lo) & mask(width),
        }
    }

    /// True if this value represents a rising edge seen against `prev`
    /// (previous value known 0 or unknown treated as no edge unless 0→1).
    ///
    /// Only meaningful for single-bit values.
    pub fn is_rising_edge(prev: &Value, now: &Value) -> bool {
        prev.to_u64() == Some(0) && now.to_u64() == Some(1)
    }

    /// Renders as a binary string, MSB first (e.g. `10x1`), for VCD export.
    pub fn to_binary_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| match self.bit_at(i) {
                Bit::Zero => '0',
                Bit::One => '1',
                Bit::X => 'x',
                Bit::Z => 'z',
            })
            .collect()
    }

    #[inline]
    fn check_width(&self, rhs: &Value) {
        assert_eq!(
            self.width, rhs.width,
            "operand width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width, self.to_binary_string())
    }
}

/// Error returned when parsing a [`Value`] from text fails.
///
/// # Examples
///
/// ```
/// use parsim_logic::Value;
///
/// assert!("4'bq111".parse::<Value>().is_err());
/// assert_eq!("4'b1010".parse::<Value>().ok(), Some(Value::from_u64(10, 4)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    msg: String,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid logic value literal: {}", self.msg)
    }
}

impl Error for ParseValueError {}

impl FromStr for Value {
    type Err = ParseValueError;

    /// Parses `<width>'b<bits>`, `<width>'d<decimal>`, `<width>'h<hex>`, or
    /// the bare literals `0` and `1`.
    fn from_str(s: &str) -> Result<Value, ParseValueError> {
        let err = |msg: &str| ParseValueError {
            msg: format!("{msg} in `{s}`"),
        };
        match s {
            "0" => return Ok(Value::bit(false)),
            "1" => return Ok(Value::bit(true)),
            _ => {}
        }
        let (w, rest) = s.split_once('\'').ok_or_else(|| err("missing '"))?;
        let width: u8 = w.parse().map_err(|_| err("bad width"))?;
        if width == 0 || width > 64 {
            return Err(err("width must be 1..=64"));
        }
        let (base, digits) = rest.split_at(1);
        match base {
            "b" => {
                if digits.is_empty() || digits.len() > width as usize {
                    return Err(err("bad binary digit count"));
                }
                let mut bits = Vec::with_capacity(width as usize);
                for c in digits.chars().rev() {
                    bits.push(match c {
                        '0' => Bit::Zero,
                        '1' => Bit::One,
                        'x' | 'X' => Bit::X,
                        'z' | 'Z' => Bit::Z,
                        _ => return Err(err("bad binary digit")),
                    });
                }
                while bits.len() < width as usize {
                    bits.push(Bit::Zero);
                }
                Ok(Value::from_bits(&bits))
            }
            "d" => {
                let v: u64 = digits.parse().map_err(|_| err("bad decimal"))?;
                if width < 64 && v > mask(width) {
                    return Err(err("decimal does not fit width"));
                }
                Ok(Value::from_u64(v, width))
            }
            "h" => {
                let v = u64::from_str_radix(digits, 16).map_err(|_| err("bad hex"))?;
                if width < 64 && v > mask(width) {
                    return Err(err("hex does not fit width"));
                }
                Ok(Value::from_u64(v, width))
            }
            _ => Err(err("unknown base")),
        }
    }
}

#[inline]
fn mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[inline]
fn assert_width(width: u8) {
    assert!((1..=64).contains(&width), "width must be 1..=64");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = Value::from_u64(0b101, 3);
        assert_eq!(v.width(), 3);
        assert_eq!(v.bit_at(0), Bit::One);
        assert_eq!(v.bit_at(1), Bit::Zero);
        assert_eq!(v.bit_at(2), Bit::One);
        assert_eq!(v.to_u64(), Some(5));
        assert!(v.is_fully_known());
    }

    #[test]
    fn x_and_z_states() {
        let x = Value::x(4);
        let z = Value::z(4);
        assert!(x.has_unknown());
        assert_eq!(x.bit_at(2), Bit::X);
        assert_eq!(z.bit_at(0), Bit::Z);
        assert_eq!(z.to_logic().bit_at(0), Bit::X);
        assert_eq!(x.to_u64(), None);
    }

    #[test]
    fn and_controlling_zero_dominates_x() {
        let zero = Value::zero(1);
        let x = Value::x(1);
        assert_eq!(zero.and(&x), Value::bit(false));
        assert_eq!(x.and(&zero), Value::bit(false));
        assert_eq!(Value::bit(true).and(&x), Value::x(1));
    }

    #[test]
    fn or_controlling_one_dominates_x() {
        let one = Value::ones(1);
        let x = Value::x(1);
        assert_eq!(one.or(&x), Value::bit(true));
        assert_eq!(Value::bit(false).or(&x), Value::x(1));
    }

    #[test]
    fn xor_propagates_unknown() {
        let x = Value::x(1);
        assert_eq!(Value::bit(true).xor(&x), Value::x(1));
        assert_eq!(Value::bit(true).xor(&Value::bit(true)), Value::bit(false));
    }

    #[test]
    fn not_inverts_known_only() {
        assert_eq!(Value::from_u64(0b10, 2).not(), Value::from_u64(0b01, 2));
        assert_eq!(Value::x(2).not(), Value::x(2));
    }

    #[test]
    fn z_treated_as_x_by_gates() {
        let z = Value::z(1).to_logic();
        assert_eq!(Value::bit(false).and(&z), Value::bit(false));
        assert_eq!(Value::bit(true).and(&z), Value::x(1));
    }

    #[test]
    fn reductions() {
        assert_eq!(Value::from_u64(0b111, 3).reduce_and(), Value::bit(true));
        assert_eq!(Value::from_u64(0b110, 3).reduce_and(), Value::bit(false));
        assert_eq!(Value::from_u64(0, 3).reduce_or(), Value::bit(false));
        assert_eq!(Value::from_u64(0b100, 3).reduce_or(), Value::bit(true));
        assert_eq!(Value::from_u64(0b101, 3).reduce_xor(), Value::bit(false));
        assert_eq!(Value::x(3).reduce_xor(), Value::x(1));
        // Controlling bits decide reductions even with X present.
        let with_x = Value::from_bits(&[Bit::Zero, Bit::X, Bit::X]);
        assert_eq!(with_x.reduce_and(), Value::bit(false));
        let with_x1 = Value::from_bits(&[Bit::One, Bit::X, Bit::X]);
        assert_eq!(with_x1.reduce_or(), Value::bit(true));
    }

    #[test]
    fn arithmetic_known() {
        let a = Value::from_u64(200, 8);
        let b = Value::from_u64(100, 8);
        assert_eq!(a.add(&b).to_u64(), Some(44)); // wraps mod 256
        assert_eq!(a.sub(&b).to_u64(), Some(100));
        let (sum, cout) = a.add_carry(&b, &Value::bit(false));
        assert_eq!(sum.to_u64(), Some(44));
        assert_eq!(cout.to_u64(), Some(1));
        assert_eq!(
            Value::from_u64(7, 3).mul(&Value::from_u64(6, 3), 6).to_u64(),
            Some(42)
        );
    }

    #[test]
    fn arithmetic_unknown_poisons() {
        let a = Value::x(8);
        let b = Value::from_u64(1, 8);
        assert_eq!(a.add(&b), Value::x(8));
        assert_eq!(b.mul(&a, 16), Value::x(16));
    }

    #[test]
    fn comparisons() {
        let a = Value::from_u64(3, 4);
        let b = Value::from_u64(5, 4);
        assert_eq!(a.logic_eq(&b), Value::bit(false));
        assert_eq!(a.logic_eq(&a), Value::bit(true));
        assert_eq!(a.logic_lt(&b), Value::bit(true));
        // Known-different bit forces inequality even with X elsewhere.
        let half_x = Value::from_bits(&[Bit::Zero, Bit::X, Bit::Zero, Bit::Zero]);
        let one = Value::from_u64(1, 4);
        assert_eq!(half_x.logic_eq(&one), Value::bit(false));
        // Fully compatible but unknown: X.
        let x = Value::x(4);
        assert_eq!(x.logic_eq(&one), Value::x(1));
    }

    #[test]
    fn concat_and_slice() {
        let lo = Value::from_u64(0b01, 2);
        let hi = Value::from_u64(0b11, 2);
        let v = lo.concat(&hi);
        assert_eq!(v.width(), 4);
        assert_eq!(v.to_u64(), Some(0b1101));
        assert_eq!(v.slice(2, 2), hi);
        assert_eq!(v.slice(0, 2), lo);
    }

    #[test]
    fn edge_detection() {
        assert!(Value::is_rising_edge(&Value::bit(false), &Value::bit(true)));
        assert!(!Value::is_rising_edge(&Value::bit(true), &Value::bit(true)));
        assert!(!Value::is_rising_edge(&Value::x(1), &Value::bit(true)));
    }

    #[test]
    fn parse_round_trip() {
        for s in ["4'b10x1", "1'b1", "8'd255", "16'hbeef", "0", "1"] {
            let v: Value = s.parse().unwrap();
            let again: Value = v.to_string().parse().unwrap();
            assert_eq!(v, again, "round-trip failed for {s}");
        }
        assert!("4'd16".parse::<Value>().is_err());
        assert!("65'b1".parse::<Value>().is_err());
        assert!("4'b".parse::<Value>().is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Value::from_u64(0b10, 2).to_string(), "2'b10");
        assert_eq!(Value::x(1).to_string(), "1'bx");
    }

    #[test]
    fn width_64_mask_is_correct() {
        let v = Value::from_u64(u64::MAX, 64);
        assert_eq!(v.to_u64(), Some(u64::MAX));
        assert_eq!(v.add(&Value::from_u64(1, 64)).to_u64(), Some(0));
    }
}
