//! The element evaluation kernel shared by all four simulation engines.

use crate::kind::ElementKind;
use crate::time::Time;
use crate::value::Value;

/// Per-element internal state.
///
/// Combinational elements carry no state; flip-flops and latches store
/// their output plus (for edge-triggered elements) the last observed
/// clock value so that edges can be detected idempotently no matter how
/// often an engine re-evaluates the element with unchanged inputs;
/// memories store their cell array as well.
///
/// # Examples
///
/// ```
/// use parsim_logic::{ElemState, ElementKind};
///
/// let st = ElemState::init(&ElementKind::Dff { width: 4 });
/// assert!(matches!(st, ElemState::Edge { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElemState {
    /// No internal state (combinational elements and generators).
    None,
    /// A stored output value (latches).
    Stored(Value),
    /// Stored output plus last clock sample (edge-triggered flip-flops).
    Edge { q: Value, last_clk: Value },
    /// Memory cells plus registered read output and last clock sample.
    Mem {
        cells: Vec<Value>,
        q: Value,
        last_clk: Value,
    },
}

impl ElemState {
    /// The correct initial state for an element of the given kind.
    ///
    /// Sequential outputs start at all-`X`, matching the paper's
    /// initialization where everything is "only known to be X at time 0".
    pub fn init(kind: &ElementKind) -> ElemState {
        match kind {
            ElementKind::Dff { width } | ElementKind::DffR { width } => ElemState::Edge {
                q: Value::x(*width),
                last_clk: Value::x(1),
            },
            ElementKind::Latch { width } => ElemState::Stored(Value::x(*width)),
            ElementKind::Memory { addr_bits, width } => ElemState::Mem {
                cells: vec![Value::x(*width); 1usize << *addr_bits],
                q: Value::x(*width),
                last_clk: Value::x(1),
            },
            _ => ElemState::None,
        }
    }
}

/// The outputs produced by one element evaluation (at most two ports).
///
/// # Examples
///
/// ```
/// use parsim_logic::{evaluate, ElemState, ElementKind, Value};
///
/// let mut st = ElemState::None;
/// let a = Value::from_u64(9, 8);
/// let b = Value::from_u64(250, 8);
/// let out = evaluate(
///     &ElementKind::Adder { width: 8 },
///     &[a, b, Value::bit(false)],
///     &mut st,
/// );
/// assert_eq!(out.len(), 2);
/// assert_eq!(out.get(0).to_u64(), Some(3)); // 259 mod 256
/// assert_eq!(out.get(1).to_u64(), Some(1)); // carry out
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outputs {
    vals: [Value; 2],
    len: u8,
}

impl Outputs {
    /// A single-output result.
    pub fn one(v: Value) -> Outputs {
        Outputs {
            vals: [v, v],
            len: 1,
        }
    }

    /// A two-output result.
    pub fn two(a: Value, b: Value) -> Outputs {
        Outputs { vals: [a, b], len: 2 }
    }

    /// The number of populated output ports (1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no outputs are populated (never the case for valid elements).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value on output port `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn get(&self, idx: usize) -> Value {
        assert!(idx < self.len(), "output index out of range");
        self.vals[idx]
    }

    /// Iterates over `(port, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Value)> + '_ {
        (0..self.len()).map(move |i| (i, self.vals[i]))
    }
}

/// Evaluates one element given its current input values, updating internal
/// state, and returns the values now driven on its outputs.
///
/// This kernel is deliberately *pure with respect to time*: all timing
/// (delays, scheduling) is the engines' business, which is what lets the
/// same models run under the synchronous event-driven, compiled-mode, and
/// asynchronous algorithms unchanged.
///
/// Generator elements are **not** evaluated through this function — they are
/// pre-expanded for all simulation time by [`expand_generator`] (§4 step 1
/// of the paper). Calling `evaluate` on a generator returns its initial
/// value so that engines which sweep every element stay well-defined.
///
/// # Panics
///
/// Panics if `inputs` has the wrong arity or mismatched widths for the
/// element kind; netlist validation prevents both for well-formed circuits.
pub fn evaluate(kind: &ElementKind, inputs: &[Value], state: &mut ElemState) -> Outputs {
    match kind {
        ElementKind::And => Outputs::one(fold_logic(inputs, Value::and)),
        ElementKind::Or => Outputs::one(fold_logic(inputs, Value::or)),
        ElementKind::Nand => Outputs::one(fold_logic(inputs, Value::and).not()),
        ElementKind::Nor => Outputs::one(fold_logic(inputs, Value::or).not()),
        ElementKind::Xor => Outputs::one(fold_logic(inputs, Value::xor)),
        ElementKind::Xnor => Outputs::one(fold_logic(inputs, Value::xor).not()),
        ElementKind::Not => Outputs::one(inputs[0].to_logic().not()),
        ElementKind::Buf => Outputs::one(inputs[0].to_logic()),
        ElementKind::Mux { width } => {
            let sel = inputs[0].to_logic();
            let a = inputs[1];
            let b = inputs[2];
            let out = match sel.to_u64() {
                Some(0) => a,
                Some(_) => b,
                None => {
                    if a == b {
                        a
                    } else {
                        Value::x(*width)
                    }
                }
            };
            Outputs::one(out)
        }
        ElementKind::Dff { .. } => {
            let clk = inputs[0];
            let d = inputs[1];
            let ElemState::Edge { q, last_clk } = state else {
                panic!("dff evaluated with non-edge state");
            };
            if Value::is_rising_edge(last_clk, &clk) {
                *q = d;
            }
            *last_clk = clk;
            Outputs::one(*q)
        }
        ElementKind::DffR { width } => {
            let clk = inputs[0];
            let d = inputs[1];
            let rst = inputs[2].to_logic();
            let ElemState::Edge { q, last_clk } = state else {
                panic!("dffr evaluated with non-edge state");
            };
            if rst.to_u64() == Some(1) {
                *q = Value::zero(*width);
            } else if Value::is_rising_edge(last_clk, &clk) && rst.to_u64() == Some(0) {
                *q = d;
            }
            *last_clk = clk;
            Outputs::one(*q)
        }
        ElementKind::Latch { width } => {
            let en = inputs[0].to_logic();
            let d = inputs[1];
            let ElemState::Stored(q) = state else {
                panic!("latch evaluated with non-stored state");
            };
            match en.to_u64() {
                Some(1) => *q = d,
                Some(_) => {}
                None => {
                    if *q != d {
                        *q = Value::x(*width);
                    }
                }
            }
            Outputs::one(*q)
        }
        ElementKind::Adder { .. } => {
            let (sum, cout) = inputs[0].add_carry(&inputs[1], &inputs[2]);
            Outputs::two(sum, cout)
        }
        ElementKind::Subtractor { .. } => Outputs::one(inputs[0].sub(&inputs[1])),
        ElementKind::Multiplier { width } => {
            let out_w = width.saturating_mul(2).min(64);
            Outputs::one(inputs[0].mul(&inputs[1], out_w))
        }
        ElementKind::Comparator { .. } => Outputs::two(
            inputs[0].logic_eq(&inputs[1]),
            inputs[0].logic_lt(&inputs[1]),
        ),
        ElementKind::Memory { width, .. } => {
            let clk = inputs[0];
            let we = inputs[1].to_logic();
            let addr = inputs[2].to_logic();
            let wdata = inputs[3];
            let ElemState::Mem { cells, q, last_clk } = state else {
                panic!("memory evaluated with non-memory state");
            };
            if Value::is_rising_edge(last_clk, &clk) {
                // Read-first: the old cell value appears on rdata.
                *q = match addr.to_u64() {
                    Some(a) => cells[a as usize],
                    None => Value::x(*width),
                };
                // Then the write, with conservative X handling.
                match (we.to_u64(), addr.to_u64()) {
                    (Some(1), Some(a)) => cells[a as usize] = wdata,
                    (Some(_), _) => {} // we = 0: no write
                    (None, Some(a)) => cells[a as usize] = Value::x(*width),
                    (None, None) => {
                        for c in cells.iter_mut() {
                            *c = Value::x(*width);
                        }
                    }
                }
                if we.to_u64() == Some(1) && addr.to_u64().is_none() {
                    // Writing to an unknown address poisons everything.
                    for c in cells.iter_mut() {
                        *c = Value::x(*width);
                    }
                }
            }
            *last_clk = clk;
            Outputs::one(*q)
        }
        ElementKind::TriBuf { width } => {
            let en = inputs[0].to_logic();
            Outputs::one(match en.to_u64() {
                Some(1) => inputs[1],
                Some(_) => Value::z(*width),
                None => Value::x(*width),
            })
        }
        ElementKind::Resolver { .. } => {
            let mut acc = inputs[0];
            for v in &inputs[1..] {
                acc = acc.resolve(v);
            }
            Outputs::one(acc)
        }
        ElementKind::Slice { lo, width, .. } => Outputs::one(inputs[0].slice(*lo, *width)),
        ElementKind::ZeroExt {
            in_width,
            out_width,
        } => Outputs::one(if out_width > in_width {
            inputs[0].concat(&Value::zero(out_width - in_width))
        } else {
            inputs[0]
        }),
        ElementKind::Shl {
            out_width, amount, ..
        } => {
            let padded = if *amount > 0 {
                Value::zero(*amount).concat(&inputs[0])
            } else {
                inputs[0]
            };
            let out = if padded.width() > *out_width {
                padded.slice(0, *out_width)
            } else if padded.width() < *out_width {
                padded.concat(&Value::zero(*out_width - padded.width()))
            } else {
                padded
            };
            Outputs::one(out)
        }
        // Generators: engines use `expand_generator`; return the t=0 value.
        _ => Outputs::one(generator_initial(kind)),
    }
}

fn fold_logic(inputs: &[Value], op: fn(&Value, &Value) -> Value) -> Value {
    let mut acc = inputs[0].to_logic();
    for v in &inputs[1..] {
        acc = op(&acc, &v.to_logic());
    }
    acc
}

fn generator_initial(kind: &ElementKind) -> Value {
    match kind {
        ElementKind::Clock { offset, .. } => Value::bit(*offset == 0),
        ElementKind::Pulse { at, .. } => Value::bit(*at == 0),
        ElementKind::Pattern { values, .. } => values[0],
        ElementKind::Vector { changes } => {
            if changes[0].0 == 0 {
                changes[0].1
            } else {
                Value::x(changes[0].1.width())
            }
        }
        ElementKind::Lfsr { width, seed, .. } => Value::from_u64(*seed, *width),
        ElementKind::Const { value } => *value,
        _ => unreachable!("not a generator"),
    }
}

/// Expands a generator element into its full event schedule up to and
/// including `end_time` — the paper's §4 step 1 ("evaluate all generator
/// and constant nodes for all time").
///
/// The returned list always starts with the value at time zero, is strictly
/// increasing in time, and never contains two consecutive equal values.
///
/// # Panics
///
/// Panics if `kind` is not a generator (see
/// [`ElementKind::is_generator`]), or if a periodic generator has a zero
/// period.
///
/// # Examples
///
/// ```
/// use parsim_logic::{expand_generator, ElementKind, Time, Value};
///
/// let clk = ElementKind::Clock { half_period: 5, offset: 5 };
/// let ev = expand_generator(&clk, Time(20));
/// assert_eq!(
///     ev,
///     vec![
///         (Time(0), Value::bit(false)),
///         (Time(5), Value::bit(true)),
///         (Time(10), Value::bit(false)),
///         (Time(15), Value::bit(true)),
///         (Time(20), Value::bit(false)),
///     ]
/// );
/// ```
pub fn expand_generator(kind: &ElementKind, end_time: Time) -> Vec<(Time, Value)> {
    assert!(kind.is_generator(), "expand_generator on non-generator");
    let end = end_time.ticks();
    let mut events: Vec<(Time, Value)> = Vec::new();
    let mut push = |t: u64, v: Value| {
        if let Some((lt, lv)) = events.last() {
            if lt.ticks() == t {
                events.pop();
                if let Some((_, prev)) = events.last() {
                    if *prev == v {
                        return;
                    }
                }
            } else if *lv == v {
                return;
            }
        }
        events.push((Time(t), v));
    };
    match kind {
        ElementKind::Clock {
            half_period,
            offset,
        } => {
            assert!(*half_period >= 1, "clock half_period must be >= 1");
            push(0, Value::bit(false));
            let mut level = false;
            let mut t = *offset;
            while t <= end {
                level = !level;
                push(t, Value::bit(level));
                t = t.saturating_add(*half_period);
                if t == u64::MAX {
                    break;
                }
            }
        }
        ElementKind::Pulse { at, width } => {
            push(0, Value::bit(false));
            if *at <= end {
                push(*at, Value::bit(true));
                let fall = at.saturating_add(*width);
                if fall <= end {
                    push(fall, Value::bit(false));
                }
            }
        }
        ElementKind::Pattern { period, values } => {
            assert!(*period >= 1, "pattern period must be >= 1");
            assert!(!values.is_empty(), "pattern must have values");
            let mut k = 0u64;
            loop {
                let t = k.saturating_mul(*period);
                if t > end {
                    break;
                }
                push(t, values[(k % values.len() as u64) as usize]);
                k += 1;
            }
        }
        ElementKind::Lfsr {
            width,
            period,
            seed,
        } => {
            assert!(*period >= 1, "lfsr period must be >= 1");
            let mut state = if *seed == 0 { 0xace1_u64 } else { *seed };
            let m = if *width >= 64 {
                u64::MAX
            } else {
                (1u64 << *width) - 1
            };
            let mut t = 0u64;
            loop {
                push(t, Value::from_u64(state & m, *width));
                // x^64 + x^63 + x^61 + x^60 + 1 Fibonacci LFSR.
                let bit = (state ^ (state >> 1) ^ (state >> 3) ^ (state >> 4)) & 1;
                state = (state >> 1) | (bit << 63);
                t = t.saturating_add(*period);
                if t > end || t == u64::MAX {
                    break;
                }
            }
        }
        ElementKind::Vector { changes } => {
            assert!(
                changes.windows(2).all(|w| w[0].0 < w[1].0),
                "vector changes must be strictly increasing in time"
            );
            // Before the first change the node is unknown (unless the
            // vector starts at t=0).
            if changes[0].0 > 0 {
                push(0, Value::x(changes[0].1.width()));
            }
            for &(t, v) in changes.iter() {
                if t > end {
                    break;
                }
                push(t, v);
            }
        }
        ElementKind::Const { value } => push(0, *value),
        _ => unreachable!(),
    }
    events
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::value::Bit;

    fn eval(kind: &ElementKind, inputs: &[Value]) -> Value {
        let mut st = ElemState::init(kind);
        evaluate(kind, inputs, &mut st).get(0)
    }

    #[test]
    fn basic_gates() {
        let t = Value::bit(true);
        let f = Value::bit(false);
        assert_eq!(eval(&ElementKind::And, &[t, t, t]), t);
        assert_eq!(eval(&ElementKind::And, &[t, f, t]), f);
        assert_eq!(eval(&ElementKind::Or, &[f, f]), f);
        assert_eq!(eval(&ElementKind::Nand, &[t, t]), f);
        assert_eq!(eval(&ElementKind::Nor, &[f, f]), t);
        assert_eq!(eval(&ElementKind::Xor, &[t, f]), t);
        assert_eq!(eval(&ElementKind::Xnor, &[t, f]), f);
        assert_eq!(eval(&ElementKind::Not, &[t]), f);
        assert_eq!(eval(&ElementKind::Buf, &[t]), t);
    }

    #[test]
    fn wide_gates_are_bitwise() {
        let a = Value::from_u64(0b1100, 4);
        let b = Value::from_u64(0b1010, 4);
        assert_eq!(eval(&ElementKind::And, &[a, b]).to_u64(), Some(0b1000));
        assert_eq!(eval(&ElementKind::Nor, &[a, b]).to_u64(), Some(0b0001));
    }

    #[test]
    fn mux_selects_and_merges() {
        let a = Value::from_u64(3, 4);
        let b = Value::from_u64(9, 4);
        let mux = ElementKind::Mux { width: 4 };
        assert_eq!(eval(&mux, &[Value::bit(false), a, b]), a);
        assert_eq!(eval(&mux, &[Value::bit(true), a, b]), b);
        assert_eq!(eval(&mux, &[Value::x(1), a, b]), Value::x(4));
        assert_eq!(eval(&mux, &[Value::x(1), a, a]), a);
    }

    #[test]
    fn dff_captures_on_rising_edge_only() {
        let dff = ElementKind::Dff { width: 4 };
        let mut st = ElemState::init(&dff);
        let d1 = Value::from_u64(5, 4);
        let d2 = Value::from_u64(9, 4);
        // Initial: X clock, output X.
        let q = evaluate(&dff, &[Value::bit(false), d1], &mut st).get(0);
        assert_eq!(q, Value::x(4)); // no edge from X->0
        let q = evaluate(&dff, &[Value::bit(true), d1], &mut st).get(0);
        assert_eq!(q, d1); // 0 -> 1 edge captures
        let q = evaluate(&dff, &[Value::bit(true), d2], &mut st).get(0);
        assert_eq!(q, d1); // data change while clock high: hold
        let q = evaluate(&dff, &[Value::bit(false), d2], &mut st).get(0);
        assert_eq!(q, d1); // falling edge: hold
        let q = evaluate(&dff, &[Value::bit(true), d2], &mut st).get(0);
        assert_eq!(q, d2); // next rising edge captures new data
    }

    #[test]
    fn dff_edge_detection_is_idempotent() {
        let dff = ElementKind::Dff { width: 1 };
        let mut st = ElemState::init(&dff);
        evaluate(&dff, &[Value::bit(false), Value::bit(true)], &mut st);
        evaluate(&dff, &[Value::bit(true), Value::bit(true)], &mut st);
        let q1 = evaluate(&dff, &[Value::bit(true), Value::bit(false)], &mut st).get(0);
        let q2 = evaluate(&dff, &[Value::bit(true), Value::bit(false)], &mut st).get(0);
        assert_eq!(q1, q2, "re-evaluation with same inputs must not re-trigger");
    }

    #[test]
    fn dffr_async_reset_dominates() {
        let dffr = ElementKind::DffR { width: 2 };
        let mut st = ElemState::init(&dffr);
        let d = Value::from_u64(3, 2);
        let q =
            evaluate(&dffr, &[Value::bit(false), d, Value::bit(true)], &mut st).get(0);
        assert_eq!(q.to_u64(), Some(0));
        evaluate(&dffr, &[Value::bit(false), d, Value::bit(false)], &mut st);
        let q =
            evaluate(&dffr, &[Value::bit(true), d, Value::bit(false)], &mut st).get(0);
        assert_eq!(q, d);
    }

    #[test]
    fn latch_transparent_and_opaque() {
        let latch = ElementKind::Latch { width: 2 };
        let mut st = ElemState::init(&latch);
        let d1 = Value::from_u64(2, 2);
        let d2 = Value::from_u64(1, 2);
        let q = evaluate(&latch, &[Value::bit(true), d1], &mut st).get(0);
        assert_eq!(q, d1);
        let q = evaluate(&latch, &[Value::bit(false), d2], &mut st).get(0);
        assert_eq!(q, d1, "opaque latch holds");
        let q = evaluate(&latch, &[Value::bit(true), d2], &mut st).get(0);
        assert_eq!(q, d2);
    }

    #[test]
    fn functional_blocks() {
        let mut st = ElemState::None;
        let out = evaluate(
            &ElementKind::Comparator { width: 4 },
            &[Value::from_u64(3, 4), Value::from_u64(7, 4)],
            &mut st,
        );
        assert_eq!(out.get(0), Value::bit(false)); // eq
        assert_eq!(out.get(1), Value::bit(true)); // lt
        let p = evaluate(
            &ElementKind::Multiplier { width: 3 },
            &[Value::from_u64(5, 3), Value::from_u64(7, 3)],
            &mut st,
        );
        assert_eq!(p.get(0).to_u64(), Some(35));
        let d = evaluate(
            &ElementKind::Subtractor { width: 8 },
            &[Value::from_u64(5, 8), Value::from_u64(7, 8)],
            &mut st,
        );
        assert_eq!(d.get(0).to_u64(), Some(254));
    }

    #[test]
    fn memory_read_first_semantics() {
        let mem = ElementKind::Memory {
            addr_bits: 2,
            width: 8,
        };
        let mut st = ElemState::init(&mem);
        let lo = Value::bit(false);
        let hi = Value::bit(true);
        let a1 = Value::from_u64(1, 2);
        let d9 = Value::from_u64(9, 8);
        let d7 = Value::from_u64(7, 8);
        // Write 9 to cell 1 on the first edge (rdata shows the old X).
        evaluate(&mem, &[lo, hi, a1, d9], &mut st);
        let q = evaluate(&mem, &[hi, hi, a1, d9], &mut st).get(0);
        assert_eq!(q, Value::x(8), "read-first: old value appears");
        // Next edge, same address, write 7: rdata shows 9.
        evaluate(&mem, &[lo, hi, a1, d7], &mut st);
        let q = evaluate(&mem, &[hi, hi, a1, d7], &mut st).get(0);
        assert_eq!(q.to_u64(), Some(9));
        // Read-only edge: rdata shows 7.
        evaluate(&mem, &[lo, lo, a1, d9], &mut st);
        let q = evaluate(&mem, &[hi, lo, a1, d9], &mut st).get(0);
        assert_eq!(q.to_u64(), Some(7));
        // Other cells are untouched (still X).
        let a0 = Value::from_u64(0, 2);
        evaluate(&mem, &[lo, lo, a0, d9], &mut st);
        let q = evaluate(&mem, &[hi, lo, a0, d9], &mut st).get(0);
        assert_eq!(q, Value::x(8));
    }

    #[test]
    fn memory_unknowns_poison_conservatively() {
        let mem = ElementKind::Memory {
            addr_bits: 1,
            width: 4,
        };
        let mut st = ElemState::init(&mem);
        let lo = Value::bit(false);
        let hi = Value::bit(true);
        let a0 = Value::from_u64(0, 1);
        let d = Value::from_u64(5, 4);
        // Establish a known cell.
        evaluate(&mem, &[lo, hi, a0, d], &mut st);
        evaluate(&mem, &[hi, hi, a0, d], &mut st);
        // Write with unknown address: every cell poisons.
        evaluate(&mem, &[lo, hi, Value::x(1), d], &mut st);
        evaluate(&mem, &[hi, hi, Value::x(1), d], &mut st);
        evaluate(&mem, &[lo, lo, a0, d], &mut st);
        let q = evaluate(&mem, &[hi, lo, a0, d], &mut st).get(0);
        assert_eq!(q, Value::x(4), "unknown-address write poisons");
    }

    #[test]
    fn tristate_and_resolver() {
        let tb = ElementKind::TriBuf { width: 4 };
        let d = Value::from_u64(0b1010, 4);
        assert_eq!(eval(&tb, &[Value::bit(true), d]), d);
        assert_eq!(eval(&tb, &[Value::bit(false), d]), Value::z(4));
        assert_eq!(eval(&tb, &[Value::x(1), d]), Value::x(4));
        let res = ElementKind::Resolver { width: 4 };
        // One driver active, others floating: the bus carries its value.
        assert_eq!(eval(&res, &[d, Value::z(4), Value::z(4)]), d);
        // All floating: the bus floats.
        assert_eq!(eval(&res, &[Value::z(4), Value::z(4)]), Value::z(4));
        // Two drivers fighting: conflicting bits short to X.
        let other = Value::from_u64(0b1100, 4);
        let fight = eval(&res, &[d, other]);
        assert_eq!(fight.bit_at(3), Bit::One); // both drive 1
        assert_eq!(fight.bit_at(0), Bit::Zero); // both drive 0
        assert_eq!(fight.bit_at(1), Bit::X); // 1 vs 0
        assert_eq!(fight.bit_at(2), Bit::X); // 0 vs 1
    }

    #[test]
    fn wiring_elements() {
        let v = Value::from_u64(0b1011_0110, 8);
        assert_eq!(
            eval(
                &ElementKind::Slice {
                    in_width: 8,
                    lo: 2,
                    width: 3
                },
                &[v]
            )
            .to_u64(),
            Some(0b101)
        );
        let z = eval(
            &ElementKind::ZeroExt {
                in_width: 8,
                out_width: 12,
            },
            &[v],
        );
        assert_eq!(z.width(), 12);
        assert_eq!(z.to_u64(), Some(0b1011_0110));
        let s = eval(
            &ElementKind::Shl {
                in_width: 8,
                out_width: 12,
                amount: 3,
            },
            &[v],
        );
        assert_eq!(s.to_u64(), Some(0b1011_0110 << 3));
        // Truncating shift.
        let s = eval(
            &ElementKind::Shl {
                in_width: 8,
                out_width: 8,
                amount: 4,
            },
            &[v],
        );
        assert_eq!(s.to_u64(), Some((0b1011_0110 << 4) & 0xff));
        // X bits ride along through wiring.
        let x = eval(
            &ElementKind::ZeroExt {
                in_width: 1,
                out_width: 4,
            },
            &[Value::x(1)],
        );
        assert_eq!(x.bit_at(0), Bit::X);
        assert_eq!(x.bit_at(3), Bit::Zero);
    }

    #[test]
    fn clock_expansion() {
        let clk = ElementKind::Clock {
            half_period: 10,
            offset: 0,
        };
        let ev = expand_generator(&clk, Time(25));
        assert_eq!(
            ev,
            vec![
                (Time(0), Value::bit(true)),
                (Time(10), Value::bit(false)),
                (Time(20), Value::bit(true)),
            ]
        );
    }

    #[test]
    fn pulse_expansion() {
        let p = ElementKind::Pulse { at: 5, width: 3 };
        let ev = expand_generator(&p, Time(100));
        assert_eq!(
            ev,
            vec![
                (Time(0), Value::bit(false)),
                (Time(5), Value::bit(true)),
                (Time(8), Value::bit(false)),
            ]
        );
    }

    #[test]
    fn pattern_expansion_cycles_and_dedups() {
        let vals: Arc<[Value]> = vec![
            Value::from_u64(1, 2),
            Value::from_u64(1, 2),
            Value::from_u64(2, 2),
        ]
        .into();
        let pat = ElementKind::Pattern {
            period: 10,
            values: vals,
        };
        let ev = expand_generator(&pat, Time(45));
        // t=0: 1, t=10: 1 (dedup), t=20: 2, t=30: 1, t=40: 1 (dedup)
        assert_eq!(
            ev,
            vec![
                (Time(0), Value::from_u64(1, 2)),
                (Time(20), Value::from_u64(2, 2)),
                (Time(30), Value::from_u64(1, 2)),
            ]
        );
    }

    #[test]
    fn lfsr_expansion_is_deterministic_and_in_range() {
        let l = ElementKind::Lfsr {
            width: 4,
            period: 3,
            seed: 42,
        };
        let a = expand_generator(&l, Time(60));
        let b = expand_generator(&l, Time(60));
        assert_eq!(a, b);
        assert!(a.iter().all(|(_, v)| v.to_u64().unwrap() < 16));
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn const_expansion() {
        let c = ElementKind::Const {
            value: Value::from_u64(9, 4),
        };
        assert_eq!(
            expand_generator(&c, Time(1000)),
            vec![(Time(0), Value::from_u64(9, 4))]
        );
    }

    #[test]
    fn events_strictly_increase_and_never_repeat_value() {
        for kind in [
            ElementKind::Clock {
                half_period: 7,
                offset: 3,
            },
            ElementKind::Lfsr {
                width: 2,
                period: 5,
                seed: 1,
            },
        ] {
            let ev = expand_generator(&kind, Time(200));
            assert!(ev.windows(2).all(|w| w[0].0 < w[1].0), "{kind:?}");
            assert!(ev.windows(2).all(|w| w[0].1 != w[1].1), "{kind:?}");
            assert_eq!(ev[0].0, Time::ZERO);
        }
    }

    #[test]
    fn x_propagates_through_gates() {
        let x = Value::x(1);
        assert_eq!(eval(&ElementKind::Xor, &[x, Value::bit(true)]), x);
        assert_eq!(eval(&ElementKind::And, &[x, Value::bit(false)]), Value::bit(false));
        assert_eq!(eval(&ElementKind::Or, &[x, Value::bit(true)]), Value::bit(true));
    }

    #[test]
    fn controlling_bit_matches_kind_table() {
        // An AND with a 0 input yields the declared controlling output.
        let c = ElementKind::And.controlling().unwrap();
        let out = eval(&ElementKind::And, &[Value::bit(false), Value::x(1)]);
        assert_eq!(out.bit_at(0), c.output);
        let c = ElementKind::Nand.controlling().unwrap();
        let out = eval(&ElementKind::Nand, &[Value::bit(false), Value::x(1)]);
        assert_eq!(out.bit_at(0), c.output);
        assert_eq!(c.input, Bit::Zero);
    }
}
