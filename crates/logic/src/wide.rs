//! Width-generic bit-plane lane kernels: `64·W` stimulus lanes per word.
//!
//! [`packed`](crate::packed) fixes the lane word at one `u64` per plane
//! (64 lanes). This module generalizes the same two-plane encoding to
//! [`WideLanes<W>`]: `W` consecutive `u64` words per plane, giving
//! 64/128/256/512 lanes for `W` ∈ {1, 2, 4, 8}. Every kernel here is
//! *bit-identical* per lane to [`evaluate`](crate::evaluate) — the wide
//! compiled-mode batch engine in `parsim-core` relies on that equivalence
//! exactly as it does for the 64-lane kernels.
//!
//! Lane masks generalize from `u64` to [`LaneMask<W>`] (`[u64; W]`, word
//! `l / 64`, bit `l % 64` for lane `l`), so a batch whose lane count is
//! not a multiple of the word width simply masks the ragged tail.
//!
//! # SIMD dispatch
//!
//! The hot combinational kernels ([`load_logic`], [`fold_and`],
//! [`fold_or`], [`fold_xor`], [`not_inplace`]) have explicit
//! `core::arch::x86_64` implementations — SSE2 for `W = 2`, AVX2 for
//! `W = 4`, AVX-512F for `W = 8` — selected once per process by
//! [`simd_level`] (`is_x86_feature_detected!`, cached). The portable
//! `[u64; W]` loops in [`portable`] are always compiled and always
//! correct; intrinsics are a pure codegen upgrade, never a semantic
//! fork, and `PARSIM_FORCE_PORTABLE=1` pins the portable path for A/B
//! testing. Sequential/mux kernels interleave mask words with plane
//! words and stay portable (LLVM vectorizes the fixed-`W` loops well).
//!
//! Encoding per lane (same convention as [`Value`] and
//! [`Lanes`](crate::packed::Lanes)):
//!
//! | state | a | b |
//! |-------|---|---|
//! | `0`   | 0 | 0 |
//! | `1`   | 1 | 0 |
//! | `Z`   | 0 | 1 |
//! | `X`   | 1 | 1 |

use std::sync::OnceLock;

use crate::value::Value;

/// Lane widths (in stimulus lanes) supported by the wide kernels.
pub const LANE_WIDTHS: [usize; 4] = [64, 128, 256, 512];

/// One bit position of a logic vector across `64·W` simulation lanes.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideLanes<const W: usize> {
    /// Plane `a`: set for `1` and `X` lanes. Lane `l` is word `l / 64`,
    /// bit `l % 64`.
    pub a: [u64; W],
    /// Plane `b`: set for `Z` and `X` lanes.
    pub b: [u64; W],
}

/// A per-lane bitmask over `64·W` lanes (same word/bit layout as the
/// planes of [`WideLanes<W>`]).
pub type LaneMask<const W: usize> = [u64; W];

impl<const W: usize> Default for WideLanes<W> {
    fn default() -> WideLanes<W> {
        WideLanes::ZERO
    }
}

impl<const W: usize> WideLanes<W> {
    /// All lanes `X` (the reset state of every node).
    pub const X: WideLanes<W> = WideLanes {
        a: [!0; W],
        b: [!0; W],
    };
    /// All lanes `0`.
    pub const ZERO: WideLanes<W> = WideLanes {
        a: [0; W],
        b: [0; W],
    };
    /// All lanes `1`.
    pub const ONE: WideLanes<W> = WideLanes {
        a: [!0; W],
        b: [0; W],
    };
    /// All lanes `Z`.
    pub const Z: WideLanes<W> = WideLanes {
        a: [0; W],
        b: [!0; W],
    };

    /// Z lanes become X; mirrors [`Value::to_logic`] per lane.
    #[inline]
    pub fn to_logic(self) -> WideLanes<W> {
        let mut out = self;
        for w in 0..W {
            out.a[w] |= self.b[w];
        }
        out
    }

    /// Lanes that are a known `1` (raw view).
    #[inline]
    pub fn k1(self) -> LaneMask<W> {
        let mut m = [0u64; W];
        for (w, word) in m.iter_mut().enumerate() {
            *word = self.a[w] & !self.b[w];
        }
        m
    }

    /// Lanes that are a known `0` (raw view).
    #[inline]
    pub fn k0(self) -> LaneMask<W> {
        let mut m = [0u64; W];
        for (w, word) in m.iter_mut().enumerate() {
            *word = !self.a[w] & !self.b[w];
        }
        m
    }

    /// Lanes where `self` differs from `other` in either plane.
    #[inline]
    pub fn diff(self, other: WideLanes<W>) -> LaneMask<W> {
        let mut m = [0u64; W];
        for (w, word) in m.iter_mut().enumerate() {
            *word = (self.a[w] ^ other.a[w]) | (self.b[w] ^ other.b[w]);
        }
        m
    }

    /// Builds lanes from known-zero and known-one masks; uncovered lanes
    /// are `X`.
    #[inline]
    pub fn from_masks(zeros: LaneMask<W>, ones: LaneMask<W>) -> WideLanes<W> {
        let mut out = WideLanes::ZERO;
        for w in 0..W {
            let unknown = !(zeros[w] | ones[w]);
            out.a[w] = ones[w] | unknown;
            out.b[w] = unknown;
        }
        out
    }

    /// Per-lane select: lanes in `mask` read from `t`, the rest from `e`.
    #[inline]
    pub fn select(mask: &LaneMask<W>, t: WideLanes<W>, e: WideLanes<W>) -> WideLanes<W> {
        let mut out = WideLanes::ZERO;
        for (w, &m) in mask.iter().enumerate() {
            out.a[w] = (t.a[w] & m) | (e.a[w] & !m);
            out.b[w] = (t.b[w] & m) | (e.b[w] & !m);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Lane-mask helpers.
// ---------------------------------------------------------------------------

/// The empty mask.
#[inline]
pub fn mask_none<const W: usize>() -> LaneMask<W> {
    [0; W]
}

/// The full mask (all `64·W` lanes).
#[inline]
pub fn mask_all<const W: usize>() -> LaneMask<W> {
    [!0; W]
}

/// The first `n` lanes set (`n ≤ 64·W`); the ragged-tail mask for a
/// chunk carrying fewer stimulus lanes than the word holds.
#[inline]
pub fn mask_first<const W: usize>(n: usize) -> LaneMask<W> {
    debug_assert!(n <= 64 * W);
    let mut m = [0u64; W];
    for (w, word) in m.iter_mut().enumerate() {
        let lo = w * 64;
        if n >= lo + 64 {
            *word = !0;
        } else if n > lo {
            *word = (1u64 << (n - lo)) - 1;
        }
    }
    m
}

/// A mask with only lane `lane` set.
#[inline]
pub fn mask_lane<const W: usize>(lane: u32) -> LaneMask<W> {
    debug_assert!((lane as usize) < 64 * W);
    let mut m = [0u64; W];
    m[lane as usize / 64] = 1u64 << (lane % 64);
    m
}

/// True when any lane is set.
#[inline]
pub fn mask_any<const W: usize>(m: &LaneMask<W>) -> bool {
    m.iter().any(|&w| w != 0)
}

/// Number of set lanes.
#[inline]
pub fn mask_count<const W: usize>(m: &LaneMask<W>) -> u32 {
    m.iter().map(|w| w.count_ones()).sum()
}

/// Word-wise AND of two masks.
#[inline]
pub fn mask_and<const W: usize>(x: &LaneMask<W>, y: &LaneMask<W>) -> LaneMask<W> {
    let mut m = [0u64; W];
    for w in 0..W {
        m[w] = x[w] & y[w];
    }
    m
}

/// Word-wise OR of two masks, accumulated in place.
#[inline]
pub fn mask_or_assign<const W: usize>(acc: &mut LaneMask<W>, m: &LaneMask<W>) {
    for w in 0..W {
        acc[w] |= m[w];
    }
}

/// Calls `f(lane)` for every set lane, ascending.
#[inline]
pub fn for_each_lane<const W: usize>(m: &LaneMask<W>, mut f: impl FnMut(u32)) {
    for (w, &word) in m.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let lane = (w * 64) as u32 + bits.trailing_zeros();
            bits &= bits - 1;
            f(lane);
        }
    }
}

// ---------------------------------------------------------------------------
// Scatter / gather / masked copies.
// ---------------------------------------------------------------------------

/// Lanes where `old` and `new` differ in any bit of the vector.
#[inline]
pub fn changed_mask<const W: usize>(old: &[WideLanes<W>], new: &[WideLanes<W>]) -> LaneMask<W> {
    debug_assert_eq!(old.len(), new.len());
    let mut m = [0u64; W];
    for (o, n) in old.iter().zip(new) {
        mask_or_assign(&mut m, &o.diff(*n));
    }
    m
}

/// Copies `src` into `dst` only in the lanes of `mask`.
#[inline]
pub fn write_masked<const W: usize>(
    dst: &mut [WideLanes<W>],
    src: &[WideLanes<W>],
    mask: &LaneMask<W>,
) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = WideLanes::select(mask, *s, *d);
    }
}

/// Writes the bits of `v` into lane `lane` of `dst` (`dst.len()` must be
/// `v.width()`).
#[inline]
pub fn scatter<const W: usize>(dst: &mut [WideLanes<W>], lane: u32, v: &Value) {
    debug_assert_eq!(dst.len(), v.width() as usize);
    debug_assert!((lane as usize) < 64 * W);
    let (a, b) = v.to_planes();
    let word = lane as usize / 64;
    let bit = 1u64 << (lane % 64);
    for (i, d) in dst.iter_mut().enumerate() {
        d.a[word] = (d.a[word] & !bit) | (u64::from((a >> i) & 1 == 1) * bit);
        d.b[word] = (d.b[word] & !bit) | (u64::from((b >> i) & 1 == 1) * bit);
    }
}

/// Reads lane `lane` of `src` back as a scalar [`Value`] of width
/// `src.len()`.
#[inline]
pub fn gather<const W: usize>(src: &[WideLanes<W>], lane: u32) -> Value {
    debug_assert!((lane as usize) < 64 * W);
    let word = lane as usize / 64;
    let shift = lane % 64;
    let mut a = 0u64;
    let mut b = 0u64;
    for (i, s) in src.iter().enumerate() {
        a |= ((s.a[word] >> shift) & 1) << i;
        b |= ((s.b[word] >> shift) & 1) << i;
    }
    Value::from_planes(src.len() as u8, a, b)
}

/// Replicates `v` into all `64·W` lanes of `dst`.
#[inline]
pub fn broadcast<const W: usize>(dst: &mut [WideLanes<W>], v: &Value) {
    debug_assert_eq!(dst.len(), v.width() as usize);
    let (a, b) = v.to_planes();
    for (i, d) in dst.iter_mut().enumerate() {
        *d = WideLanes {
            a: [if (a >> i) & 1 == 1 { !0 } else { 0 }; W],
            b: [if (b >> i) & 1 == 1 { !0 } else { 0 }; W],
        };
    }
}

// ---------------------------------------------------------------------------
// Portable kernels. Always compiled, always the semantic reference; the
// dispatched entry points below fall back here whenever no intrinsic
// implementation applies.
// ---------------------------------------------------------------------------

/// The portable `[u64; W]` implementations of the dispatched kernels.
///
/// Exposed so tests (and the `PARSIM_FORCE_PORTABLE` CI leg) can compare
/// the intrinsic paths against these word-loop references directly.
pub mod portable {
    use super::{LaneMask, WideLanes};

    /// `out = src.to_logic()` — the first fold step and the `Buf` kernel.
    #[inline]
    pub fn load_logic<const W: usize>(out: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        debug_assert_eq!(out.len(), src.len());
        for (o, s) in out.iter_mut().zip(src) {
            *o = s.to_logic();
        }
    }

    /// `acc = acc AND src.to_logic()` (acc already a logic view).
    #[inline]
    pub fn fold_and<const W: usize>(acc: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        debug_assert_eq!(acc.len(), src.len());
        for (a, s) in acc.iter_mut().zip(src) {
            let s = s.to_logic();
            let zeros = join(a.k0(), s.k0(), |x, y| x | y);
            let ones = join(a.k1(), s.k1(), |x, y| x & y);
            *a = WideLanes::from_masks(zeros, ones);
        }
    }

    /// `acc = acc OR src.to_logic()` (acc already a logic view).
    #[inline]
    pub fn fold_or<const W: usize>(acc: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        debug_assert_eq!(acc.len(), src.len());
        for (a, s) in acc.iter_mut().zip(src) {
            let s = s.to_logic();
            let zeros = join(a.k0(), s.k0(), |x, y| x & y);
            let ones = join(a.k1(), s.k1(), |x, y| x | y);
            *a = WideLanes::from_masks(zeros, ones);
        }
    }

    /// `acc = acc XOR src.to_logic()` (acc already a logic view).
    #[inline]
    pub fn fold_xor<const W: usize>(acc: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        debug_assert_eq!(acc.len(), src.len());
        for (a, s) in acc.iter_mut().zip(src) {
            let s = s.to_logic();
            let mut zeros = [0u64; W];
            let mut ones = [0u64; W];
            for w in 0..W {
                let known = !a.b[w] & !s.b[w];
                ones[w] = (a.a[w] ^ s.a[w]) & known;
                zeros[w] = known & !ones[w];
            }
            *a = WideLanes::from_masks(zeros, ones);
        }
    }

    /// Four-state complement in place; mirrors [`Value::not`] per lane.
    ///
    /// [`Value::not`]: crate::Value::not
    #[inline]
    pub fn not_inplace<const W: usize>(v: &mut [WideLanes<W>]) {
        for l in v.iter_mut() {
            *l = WideLanes::from_masks(l.k1(), l.k0());
        }
    }

    #[inline(always)]
    fn join<const W: usize>(
        x: LaneMask<W>,
        y: LaneMask<W>,
        f: impl Fn(u64, u64) -> u64,
    ) -> LaneMask<W> {
        let mut m = [0u64; W];
        for w in 0..W {
            m[w] = f(x[w], y[w]);
        }
        m
    }
}

// ---------------------------------------------------------------------------
// Runtime SIMD detection.
// ---------------------------------------------------------------------------

/// The widest intrinsic tier the running CPU supports.
///
/// Ordered: every tier implies the ones below it, so dispatch tests use
/// `>=`. [`SimdLevel::lane_width`] is the natural word width of the tier
/// — the lane count the batch engine packs per chunk word by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable `u64` words only (also forced by `PARSIM_FORCE_PORTABLE`).
    Scalar,
    /// 128-bit `core::arch` path (`W = 2`).
    Sse2,
    /// 256-bit `core::arch` path (`W = 4`).
    Avx2,
    /// 512-bit `core::arch` path (`W = 8`).
    Avx512,
}

impl SimdLevel {
    /// The stimulus-lane count of this tier's natural word.
    pub fn lane_width(self) -> usize {
        match self {
            SimdLevel::Scalar => 64,
            SimdLevel::Sse2 => 128,
            SimdLevel::Avx2 => 256,
            SimdLevel::Avx512 => 512,
        }
    }

    /// Short human/JSON-friendly name.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "u64",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// Detects (once, cached) the intrinsic tier to dispatch to.
///
/// Setting `PARSIM_FORCE_PORTABLE` to anything but `0`/empty pins
/// [`SimdLevel::Scalar`], so the portable word loops serve every width —
/// the CI leg for hosts without AVX uses this together with
/// `PARSIM_FORCE_LANE_WIDTH=64`.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(detect_simd_level)
}

fn detect_simd_level() -> SimdLevel {
    if std::env::var("PARSIM_FORCE_PORTABLE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
    {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if is_x86_feature_detected!("sse2") {
            return SimdLevel::Sse2;
        }
    }
    SimdLevel::Scalar
}

/// The widest lane count one kernel word evaluates on this host:
/// [`simd_level`]`().lane_width()`.
pub fn native_lane_width() -> usize {
    simd_level().lane_width()
}

// ---------------------------------------------------------------------------
// Dispatched kernels: intrinsic when (W, detected tier) line up, portable
// otherwise. `W` is a compile-time constant, so each monomorphization
// keeps exactly one live branch plus the cached-level test.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn cast<const A: usize, const B: usize>(s: &[WideLanes<A>]) -> &[WideLanes<B>] {
    assert_eq!(A, B);
    // SAFETY: A == B, so WideLanes<A> and WideLanes<B> are the same type.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast(), s.len()) }
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn cast_mut<const A: usize, const B: usize>(s: &mut [WideLanes<A>]) -> &mut [WideLanes<B>] {
    assert_eq!(A, B);
    // SAFETY: A == B, so WideLanes<A> and WideLanes<B> are the same type.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast(), s.len()) }
}

macro_rules! dispatch_binary {
    ($name:ident, $sse2:ident, $avx2:ident, $avx512:ident) => {
        #[doc = concat!(
            "Dispatched [`portable::", stringify!($name),
            "`]: intrinsic path when the width matches the detected tier."
        )]
        #[inline]
        pub fn $name<const W: usize>(acc: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
            #[cfg(target_arch = "x86_64")]
            {
                if W == 2 && simd_level() >= SimdLevel::Sse2 {
                    // SAFETY: tier checked at runtime just above.
                    return unsafe { simd::$sse2(cast_mut::<W, 2>(acc), cast::<W, 2>(src)) };
                }
                if W == 4 && simd_level() >= SimdLevel::Avx2 {
                    // SAFETY: tier checked at runtime just above.
                    return unsafe { simd::$avx2(cast_mut::<W, 4>(acc), cast::<W, 4>(src)) };
                }
                if W == 8 && simd_level() >= SimdLevel::Avx512 {
                    // SAFETY: tier checked at runtime just above.
                    return unsafe { simd::$avx512(cast_mut::<W, 8>(acc), cast::<W, 8>(src)) };
                }
            }
            portable::$name(acc, src);
        }
    };
}

dispatch_binary!(load_logic, load_logic_sse2, load_logic_avx2, load_logic_avx512);
dispatch_binary!(fold_and, fold_and_sse2, fold_and_avx2, fold_and_avx512);
dispatch_binary!(fold_or, fold_or_sse2, fold_or_avx2, fold_or_avx512);
dispatch_binary!(fold_xor, fold_xor_sse2, fold_xor_avx2, fold_xor_avx512);

/// Dispatched [`portable::not_inplace`]: intrinsic path when the width
/// matches the detected tier.
#[inline]
pub fn not_inplace<const W: usize>(v: &mut [WideLanes<W>]) {
    #[cfg(target_arch = "x86_64")]
    {
        if W == 2 && simd_level() >= SimdLevel::Sse2 {
            // SAFETY: tier checked at runtime just above.
            return unsafe { simd::not_inplace_sse2(cast_mut::<W, 2>(v)) };
        }
        if W == 4 && simd_level() >= SimdLevel::Avx2 {
            // SAFETY: tier checked at runtime just above.
            return unsafe { simd::not_inplace_avx2(cast_mut::<W, 4>(v)) };
        }
        if W == 8 && simd_level() >= SimdLevel::Avx512 {
            // SAFETY: tier checked at runtime just above.
            return unsafe { simd::not_inplace_avx512(cast_mut::<W, 8>(v)) };
        }
    }
    portable::not_inplace(v);
}

// ---------------------------------------------------------------------------
// Mux / sequential kernels (portable only: they interleave lane masks
// with plane words, and run far less often than the fold kernels).
// ---------------------------------------------------------------------------

/// 2:1 mux; mirrors [`packed::mux`](crate::packed::mux) at width `W`.
#[inline]
pub fn mux<const W: usize>(
    out: &mut [WideLanes<W>],
    sel: WideLanes<W>,
    a: &[WideLanes<W>],
    b: &[WideLanes<W>],
) {
    debug_assert!(out.len() == a.len() && a.len() == b.len());
    let sl = sel.to_logic();
    let s1 = sl.k1();
    let s0 = sl.k0();
    let sx = sl.b;
    // Lanes where the whole a and b vectors agree (bitwise, raw encoding).
    let eqv = changed_mask(a, b);
    for ((o, av), bv) in out.iter_mut().zip(a).zip(b) {
        for w in 0..W {
            let eq = !eqv[w];
            o.a[w] = (s0[w] & av.a[w]) | (s1[w] & bv.a[w]) | (sx[w] & ((eq & av.a[w]) | !eq));
            o.b[w] = (s0[w] & av.b[w]) | (s1[w] & bv.b[w]) | (sx[w] & ((eq & av.b[w]) | !eq));
        }
    }
}

/// Lanes where `(prev, now)` is a rising edge: previous clock a known 0
/// and current clock a known 1.
#[inline]
pub fn rising_mask<const W: usize>(prev: WideLanes<W>, now: WideLanes<W>) -> LaneMask<W> {
    mask_and(&prev.k0(), &now.k1())
}

/// D flip-flop step; mirrors [`packed::dff`](crate::packed::dff).
#[inline]
pub fn dff<const W: usize>(
    q: &mut [WideLanes<W>],
    last_clk: &mut WideLanes<W>,
    clk: WideLanes<W>,
    d: &[WideLanes<W>],
) {
    debug_assert_eq!(q.len(), d.len());
    let edge = rising_mask(*last_clk, clk);
    for (qv, dv) in q.iter_mut().zip(d) {
        *qv = WideLanes::select(&edge, *dv, *qv);
    }
    *last_clk = clk;
}

/// D flip-flop with synchronous reset; mirrors
/// [`packed::dffr`](crate::packed::dffr).
#[inline]
pub fn dffr<const W: usize>(
    q: &mut [WideLanes<W>],
    last_clk: &mut WideLanes<W>,
    clk: WideLanes<W>,
    d: &[WideLanes<W>],
    rst: WideLanes<W>,
) {
    debug_assert_eq!(q.len(), d.len());
    let rl = rst.to_logic();
    let r1 = rl.k1();
    let edge = mask_and(&rising_mask(*last_clk, clk), &rl.k0());
    for (qv, dv) in q.iter_mut().zip(d) {
        *qv = WideLanes::select(&edge, *dv, *qv);
        for (w, &r) in r1.iter().enumerate() {
            qv.a[w] &= !r;
            qv.b[w] &= !r;
        }
    }
    *last_clk = clk;
}

/// Transparent latch step; mirrors [`packed::latch`](crate::packed::latch).
#[inline]
pub fn latch<const W: usize>(q: &mut [WideLanes<W>], en: WideLanes<W>, d: &[WideLanes<W>]) {
    debug_assert_eq!(q.len(), d.len());
    let el = en.to_logic();
    let e1 = el.k1();
    let ex = el.b;
    let eqv = changed_mask(q, d);
    for (qv, dv) in q.iter_mut().zip(d) {
        for w in 0..W {
            let e0 = !(e1[w] | ex[w]);
            let eq = !eqv[w];
            qv.a[w] = (e1[w] & dv.a[w]) | (e0 & qv.a[w]) | (ex[w] & ((eq & qv.a[w]) | !eq));
            qv.b[w] = (e1[w] & dv.b[w]) | (e0 & qv.b[w]) | (ex[w] & ((eq & qv.b[w]) | !eq));
        }
    }
}

/// Tri-state buffer; mirrors [`packed::tribuf`](crate::packed::tribuf).
#[inline]
pub fn tribuf<const W: usize>(out: &mut [WideLanes<W>], en: WideLanes<W>, d: &[WideLanes<W>]) {
    debug_assert_eq!(out.len(), d.len());
    let el = en.to_logic();
    let e1 = el.k1();
    let ex = el.b;
    for (o, dv) in out.iter_mut().zip(d) {
        for w in 0..W {
            let e0 = !(e1[w] | ex[w]);
            o.a[w] = (e1[w] & dv.a[w]) | ex[w];
            o.b[w] = (e1[w] & dv.b[w]) | e0 | ex[w];
        }
    }
}

// ---------------------------------------------------------------------------
// Explicit core::arch implementations of the hot kernels, one tier per
// supported width. The generic bodies are written once against a tiny
// vector-ops trait; the `#[target_feature]` wrappers monomorphize them
// inside a feature-enabled context so every helper inlines to raw SIMD.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod simd {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::WideLanes;
    use core::arch::x86_64::*;

    /// Minimal bitwise vector-ops surface the kernels need. Every method
    /// is `unsafe` because the intrinsics require their CPU feature; the
    /// `#[target_feature]` wrapper functions below are the only callers.
    trait V: Copy {
        unsafe fn load(p: *const u64) -> Self;
        unsafe fn store(self, p: *mut u64);
        unsafe fn and(self, o: Self) -> Self;
        unsafe fn or(self, o: Self) -> Self;
        unsafe fn xor(self, o: Self) -> Self;
        /// `!self & o` (the Intel `andnot` operand order).
        unsafe fn andnot(self, o: Self) -> Self;
        unsafe fn ones() -> Self;
        #[inline(always)]
        unsafe fn not(self) -> Self {
            self.xor(Self::ones())
        }
    }

    #[derive(Clone, Copy)]
    struct Sse2V(__m128i);

    impl V for Sse2V {
        #[inline(always)]
        unsafe fn load(p: *const u64) -> Self {
            Sse2V(_mm_loadu_si128(p.cast()))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut u64) {
            _mm_storeu_si128(p.cast(), self.0)
        }
        #[inline(always)]
        unsafe fn and(self, o: Self) -> Self {
            Sse2V(_mm_and_si128(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn or(self, o: Self) -> Self {
            Sse2V(_mm_or_si128(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn xor(self, o: Self) -> Self {
            Sse2V(_mm_xor_si128(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn andnot(self, o: Self) -> Self {
            Sse2V(_mm_andnot_si128(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn ones() -> Self {
            Sse2V(_mm_set1_epi64x(-1))
        }
    }

    #[derive(Clone, Copy)]
    struct Avx2V(__m256i);

    impl V for Avx2V {
        #[inline(always)]
        unsafe fn load(p: *const u64) -> Self {
            Avx2V(_mm256_loadu_si256(p.cast()))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut u64) {
            _mm256_storeu_si256(p.cast(), self.0)
        }
        #[inline(always)]
        unsafe fn and(self, o: Self) -> Self {
            Avx2V(_mm256_and_si256(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn or(self, o: Self) -> Self {
            Avx2V(_mm256_or_si256(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn xor(self, o: Self) -> Self {
            Avx2V(_mm256_xor_si256(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn andnot(self, o: Self) -> Self {
            Avx2V(_mm256_andnot_si256(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn ones() -> Self {
            Avx2V(_mm256_set1_epi64x(-1))
        }
    }

    #[derive(Clone, Copy)]
    struct Avx512V(__m512i);

    impl V for Avx512V {
        #[inline(always)]
        unsafe fn load(p: *const u64) -> Self {
            Avx512V(_mm512_loadu_si512(p.cast()))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut u64) {
            _mm512_storeu_si512(p.cast(), self.0)
        }
        #[inline(always)]
        unsafe fn and(self, o: Self) -> Self {
            Avx512V(_mm512_and_si512(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn or(self, o: Self) -> Self {
            Avx512V(_mm512_or_si512(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn xor(self, o: Self) -> Self {
            Avx512V(_mm512_xor_si512(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn andnot(self, o: Self) -> Self {
            Avx512V(_mm512_andnot_si512(self.0, o.0))
        }
        #[inline(always)]
        unsafe fn ones() -> Self {
            Avx512V(_mm512_set1_epi64(-1))
        }
    }

    #[inline(always)]
    unsafe fn load_logic_impl<T: V, const W: usize>(out: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        for (o, s) in out.iter_mut().zip(src) {
            let sa = T::load(s.a.as_ptr());
            let sb = T::load(s.b.as_ptr());
            sa.or(sb).store(o.a.as_mut_ptr());
            sb.store(o.b.as_mut_ptr());
        }
    }

    #[inline(always)]
    unsafe fn fold_and_impl<T: V, const W: usize>(acc: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        for (a, s) in acc.iter_mut().zip(src) {
            let aa = T::load(a.a.as_ptr());
            let ab = T::load(a.b.as_ptr());
            let sa = T::load(s.a.as_ptr());
            let sb = T::load(s.b.as_ptr());
            let sla = sa.or(sb); // logic-view a of src
            let zeros = aa.or(ab).not().or(sla.not());
            let ones = ab.andnot(aa).and(sb.andnot(sla));
            let unknown = zeros.or(ones).not();
            ones.or(unknown).store(a.a.as_mut_ptr());
            unknown.store(a.b.as_mut_ptr());
        }
    }

    #[inline(always)]
    unsafe fn fold_or_impl<T: V, const W: usize>(acc: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        for (a, s) in acc.iter_mut().zip(src) {
            let aa = T::load(a.a.as_ptr());
            let ab = T::load(a.b.as_ptr());
            let sa = T::load(s.a.as_ptr());
            let sb = T::load(s.b.as_ptr());
            let sla = sa.or(sb);
            let zeros = aa.or(ab).not().and(sla.not());
            let ones = ab.andnot(aa).or(sb.andnot(sla));
            let unknown = zeros.or(ones).not();
            ones.or(unknown).store(a.a.as_mut_ptr());
            unknown.store(a.b.as_mut_ptr());
        }
    }

    #[inline(always)]
    unsafe fn fold_xor_impl<T: V, const W: usize>(acc: &mut [WideLanes<W>], src: &[WideLanes<W>]) {
        for (a, s) in acc.iter_mut().zip(src) {
            let aa = T::load(a.a.as_ptr());
            let ab = T::load(a.b.as_ptr());
            let sa = T::load(s.a.as_ptr());
            let sb = T::load(s.b.as_ptr());
            let sla = sa.or(sb);
            let known = ab.or(sb).not();
            let ones = aa.xor(sla).and(known);
            let nk = known.not();
            ones.or(nk).store(a.a.as_mut_ptr());
            nk.store(a.b.as_mut_ptr());
        }
    }

    #[inline(always)]
    unsafe fn not_inplace_impl<T: V, const W: usize>(v: &mut [WideLanes<W>]) {
        for l in v.iter_mut() {
            let la = T::load(l.a.as_ptr());
            let lb = T::load(l.b.as_ptr());
            // from_masks(k1, k0): new a = (!a & !b) | b, new b unchanged.
            la.or(lb).not().or(lb).store(l.a.as_mut_ptr());
        }
    }

    macro_rules! binary_tiers {
        ($impl_fn:ident, $sse2:ident, $avx2:ident, $avx512:ident) => {
            #[target_feature(enable = "sse2")]
            pub(super) unsafe fn $sse2(acc: &mut [WideLanes<2>], src: &[WideLanes<2>]) {
                $impl_fn::<Sse2V, 2>(acc, src)
            }
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $avx2(acc: &mut [WideLanes<4>], src: &[WideLanes<4>]) {
                $impl_fn::<Avx2V, 4>(acc, src)
            }
            #[target_feature(enable = "avx512f")]
            pub(super) unsafe fn $avx512(acc: &mut [WideLanes<8>], src: &[WideLanes<8>]) {
                $impl_fn::<Avx512V, 8>(acc, src)
            }
        };
    }

    binary_tiers!(load_logic_impl, load_logic_sse2, load_logic_avx2, load_logic_avx512);
    binary_tiers!(fold_and_impl, fold_and_sse2, fold_and_avx2, fold_and_avx512);
    binary_tiers!(fold_or_impl, fold_or_sse2, fold_or_avx2, fold_or_avx512);
    binary_tiers!(fold_xor_impl, fold_xor_sse2, fold_xor_avx2, fold_xor_avx512);

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn not_inplace_sse2(v: &mut [WideLanes<2>]) {
        not_inplace_impl::<Sse2V, 2>(v)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn not_inplace_avx2(v: &mut [WideLanes<4>]) {
        not_inplace_impl::<Avx2V, 4>(v)
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn not_inplace_avx512(v: &mut [WideLanes<8>]) {
        not_inplace_impl::<Avx512V, 8>(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, ElemState};
    use crate::kind::ElementKind;
    use crate::value::Bit;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const STATES: [Bit; 4] = [Bit::Zero, Bit::One, Bit::X, Bit::Z];

    fn rand_value(rng: &mut SmallRng, width: u8) -> Value {
        let bits: Vec<Bit> = (0..width).map(|_| STATES[rng.gen_range(0..4)]).collect();
        Value::from_bits(&bits)
    }

    /// Random stimulus in every lane; checks the dispatched kernel, the
    /// portable kernel, and the scalar evaluator lane by lane.
    fn check_gate_all_lanes<const W: usize>(kind: ElementKind, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = 5usize;
        let mut xs = vec![WideLanes::<W>::ZERO; w];
        let mut ys = vec![WideLanes::<W>::ZERO; w];
        let mut scalar = Vec::new();
        for lane in 0..(64 * W) as u32 {
            let x = rand_value(&mut rng, w as u8);
            let y = rand_value(&mut rng, w as u8);
            scatter(&mut xs, lane, &x);
            scatter(&mut ys, lane, &y);
            scalar.push((x, y));
        }
        let run = |portable_only: bool| -> Vec<WideLanes<W>> {
            let mut out = vec![WideLanes::<W>::ZERO; w];
            if portable_only {
                portable::load_logic(&mut out, &xs);
            } else {
                load_logic(&mut out, &xs);
            }
            match (&kind, portable_only) {
                (ElementKind::And | ElementKind::Nand, true) => portable::fold_and(&mut out, &ys),
                (ElementKind::And | ElementKind::Nand, false) => fold_and(&mut out, &ys),
                (ElementKind::Or | ElementKind::Nor, true) => portable::fold_or(&mut out, &ys),
                (ElementKind::Or | ElementKind::Nor, false) => fold_or(&mut out, &ys),
                (_, true) => portable::fold_xor(&mut out, &ys),
                (_, false) => fold_xor(&mut out, &ys),
            }
            if matches!(
                kind,
                ElementKind::Nand | ElementKind::Nor | ElementKind::Xnor
            ) {
                if portable_only {
                    portable::not_inplace(&mut out);
                } else {
                    not_inplace(&mut out);
                }
            }
            out
        };
        let dispatched = run(false);
        let reference = run(true);
        assert_eq!(
            dispatched, reference,
            "{kind:?} W={W}: dispatched != portable"
        );
        for (lane, (x, y)) in scalar.iter().enumerate() {
            let expect = evaluate(&kind, &[*x, *y], &mut ElemState::None).get(0);
            assert_eq!(
                gather(&dispatched, lane as u32),
                expect,
                "{kind:?} W={W} lane {lane}"
            );
        }
    }

    #[test]
    fn gates_match_scalar_at_every_width() {
        for kind in [
            ElementKind::And,
            ElementKind::Nand,
            ElementKind::Or,
            ElementKind::Nor,
            ElementKind::Xor,
            ElementKind::Xnor,
        ] {
            check_gate_all_lanes::<1>(kind.clone(), 7);
            check_gate_all_lanes::<2>(kind.clone(), 11);
            check_gate_all_lanes::<4>(kind.clone(), 13);
            check_gate_all_lanes::<8>(kind, 17);
        }
    }

    fn check_seq_all_lanes<const W: usize>(seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = 3usize;
        let lanes = 64 * W;
        for kind in [
            ElementKind::Dff { width: w as u8 },
            ElementKind::DffR { width: w as u8 },
            ElementKind::Latch { width: w as u8 },
        ] {
            let mut q = vec![WideLanes::<W>::X; w];
            let mut last_clk = WideLanes::<W>::X;
            let mut states: Vec<ElemState> =
                (0..lanes).map(|_| ElemState::init(&kind)).collect();
            for _step in 0..60 {
                let mut clks = [WideLanes::<W>::ZERO; 1];
                let mut rsts = [WideLanes::<W>::ZERO; 1];
                let mut ds = vec![WideLanes::<W>::ZERO; w];
                let mut scalar = Vec::new();
                for lane in 0..lanes as u32 {
                    let c = Value::from_bits(&[STATES[rng.gen_range(0..4)]]);
                    let r = Value::from_bits(&[STATES[rng.gen_range(0..4)]]);
                    let d = rand_value(&mut rng, w as u8);
                    scatter(&mut clks, lane, &c);
                    scatter(&mut rsts, lane, &r);
                    scatter(&mut ds, lane, &d);
                    scalar.push((c, d, r));
                }
                match kind {
                    ElementKind::Dff { .. } => dff(&mut q, &mut last_clk, clks[0], &ds),
                    ElementKind::DffR { .. } => {
                        dffr(&mut q, &mut last_clk, clks[0], &ds, rsts[0])
                    }
                    _ => latch(&mut q, clks[0], &ds),
                }
                for (lane, (c, d, r)) in scalar.iter().enumerate() {
                    let inputs: Vec<Value> = match kind {
                        ElementKind::DffR { .. } => vec![*c, *d, *r],
                        _ => vec![*c, *d],
                    };
                    let expect = evaluate(&kind, &inputs, &mut states[lane]).get(0);
                    assert_eq!(
                        gather(&q, lane as u32),
                        expect,
                        "{kind:?} W={W} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_kernels_match_scalar_at_every_width() {
        check_seq_all_lanes::<1>(19);
        check_seq_all_lanes::<2>(23);
        check_seq_all_lanes::<4>(29);
        check_seq_all_lanes::<8>(31);
    }

    fn check_mux_tribuf<const W: usize>(seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = 4usize;
        let lanes = 64 * W;
        for _ in 0..20 {
            let mut sels = [WideLanes::<W>::ZERO; 1];
            let mut avs = vec![WideLanes::<W>::ZERO; w];
            let mut bvs = vec![WideLanes::<W>::ZERO; w];
            let mut scalar = Vec::new();
            for lane in 0..lanes as u32 {
                let s = Value::from_bits(&[STATES[rng.gen_range(0..4)]]);
                let a = rand_value(&mut rng, w as u8);
                let b = if rng.gen_bool(0.4) {
                    a
                } else {
                    rand_value(&mut rng, w as u8)
                };
                scatter(&mut sels, lane, &s);
                scatter(&mut avs, lane, &a);
                scatter(&mut bvs, lane, &b);
                scalar.push((s, a, b));
            }
            let mut out = vec![WideLanes::<W>::ZERO; w];
            mux(&mut out, sels[0], &avs, &bvs);
            let mk = ElementKind::Mux { width: w as u8 };
            for (lane, (s, a, b)) in scalar.iter().enumerate() {
                let expect = evaluate(&mk, &[*s, *a, *b], &mut ElemState::None).get(0);
                assert_eq!(gather(&out, lane as u32), expect, "mux W={W} lane {lane}");
            }
            let mut tout = vec![WideLanes::<W>::ZERO; w];
            tribuf(&mut tout, sels[0], &avs);
            let tk = ElementKind::TriBuf { width: w as u8 };
            for (lane, (s, a, _)) in scalar.iter().enumerate() {
                let expect = evaluate(&tk, &[*s, *a], &mut ElemState::None).get(0);
                assert_eq!(
                    gather(&tout, lane as u32),
                    expect,
                    "tribuf W={W} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn mux_and_tribuf_match_scalar_at_every_width() {
        check_mux_tribuf::<1>(37);
        check_mux_tribuf::<2>(41);
        check_mux_tribuf::<4>(43);
        check_mux_tribuf::<8>(47);
    }

    fn check_scatter_gather<const W: usize>() {
        let mut rng = SmallRng::seed_from_u64(53);
        let mut arr = vec![WideLanes::<W>::X; 5];
        let mut vals = Vec::new();
        for lane in 0..(64 * W) as u32 {
            let v = rand_value(&mut rng, 5);
            scatter(&mut arr, lane, &v);
            vals.push(v);
        }
        for (lane, v) in vals.iter().enumerate() {
            assert_eq!(gather(&arr, lane as u32), *v, "W={W} lane {lane}");
        }
        let mut all = vec![WideLanes::<W>::ZERO; 5];
        let v = rand_value(&mut rng, 5);
        broadcast(&mut all, &v);
        for lane in 0..(64 * W) as u32 {
            assert_eq!(gather(&all, lane), v);
        }
    }

    #[test]
    fn scatter_gather_round_trips_at_every_width() {
        check_scatter_gather::<1>();
        check_scatter_gather::<2>();
        check_scatter_gather::<4>();
        check_scatter_gather::<8>();
    }

    #[test]
    fn wide_matches_packed_at_w1() {
        // WideLanes<1> and packed::Lanes implement the same kernels; spot
        // check them against each other on random operands.
        use crate::packed;
        let mut rng = SmallRng::seed_from_u64(59);
        let w = 6usize;
        let mut xs_w = vec![WideLanes::<1>::ZERO; w];
        let mut ys_w = vec![WideLanes::<1>::ZERO; w];
        let mut xs_p = vec![packed::Lanes::ZERO; w];
        let mut ys_p = vec![packed::Lanes::ZERO; w];
        for lane in 0..64u32 {
            let x = rand_value(&mut rng, w as u8);
            let y = rand_value(&mut rng, w as u8);
            scatter(&mut xs_w, lane, &x);
            scatter(&mut ys_w, lane, &y);
            packed::scatter(&mut xs_p, lane, &x);
            packed::scatter(&mut ys_p, lane, &y);
        }
        let mut out_w = vec![WideLanes::<1>::ZERO; w];
        load_logic(&mut out_w, &xs_w);
        fold_and(&mut out_w, &ys_w);
        not_inplace(&mut out_w);
        let mut out_p = vec![packed::Lanes::ZERO; w];
        packed::load_logic(&mut out_p, &xs_p);
        packed::fold_and(&mut out_p, &ys_p);
        packed::not_inplace(&mut out_p);
        for lane in 0..64u32 {
            assert_eq!(gather(&out_w, lane), packed::gather(&out_p, lane));
        }
    }

    #[test]
    fn mask_helpers() {
        assert_eq!(mask_first::<2>(0), [0, 0]);
        assert_eq!(mask_first::<2>(1), [1, 0]);
        assert_eq!(mask_first::<2>(64), [!0, 0]);
        assert_eq!(mask_first::<2>(65), [!0, 1]);
        assert_eq!(mask_first::<2>(128), [!0, !0]);
        assert_eq!(mask_first::<4>(63), [(1u64 << 63) - 1, 0, 0, 0]);
        assert_eq!(mask_count(&mask_first::<8>(513 - 512)), 1);
        assert_eq!(mask_lane::<2>(70), [0, 1 << 6]);
        assert!(mask_any(&mask_lane::<4>(255)));
        assert!(!mask_any(&mask_none::<4>()));
        assert_eq!(mask_count(&mask_all::<8>()), 512);
        let mut seen = Vec::new();
        for_each_lane(&mask_lane::<2>(70), |l| seen.push(l));
        for_each_lane(&mask_lane::<2>(3), |l| seen.push(l));
        assert_eq!(seen, vec![70, 3]);
    }

    #[test]
    fn changed_and_write_masked() {
        let mut a = vec![WideLanes::<2>::ZERO; 2];
        let mut b = vec![WideLanes::<2>::ZERO; 2];
        let v = Value::from_bits(&[Bit::One, Bit::Zero]);
        scatter(&mut a, 100, &v);
        assert_eq!(changed_mask(&a, &b), mask_lane::<2>(100));
        write_masked(&mut b, &a, &mask_lane::<2>(100));
        assert_eq!(changed_mask(&a, &b), mask_none::<2>());
        // Writes outside the mask must not leak.
        let snapshot = b.clone();
        let mut src = vec![WideLanes::<2>::ONE; 2];
        scatter(&mut src, 100, &Value::from_bits(&[Bit::Zero, Bit::Zero]));
        write_masked(&mut b, &src, &mask_lane::<2>(5));
        assert_eq!(gather(&b, 100), gather(&snapshot, 100));
        assert_eq!(gather(&b, 5), gather(&src, 5));
    }

    #[test]
    fn simd_level_is_consistent() {
        let level = simd_level();
        assert_eq!(level.lane_width(), native_lane_width());
        assert!(LANE_WIDTHS.contains(&level.lane_width()));
        assert!(!level.name().is_empty());
        // Cached: a second call returns the same tier.
        assert_eq!(simd_level(), level);
    }
}
