//! The catalog of element models known to the simulators.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::value::{Bit, Value};

/// Every element model the simulators understand.
///
/// The catalog spans the paper's three abstraction levels: scalar gates
/// (gate level), sequential primitives, and functional/RTL blocks such as
/// the 8-bit adders and 3-bit multipliers that make up the paper's
/// functional-level multiplier. Generators ("gen" in the paper's Fig. 4
/// example) have no inputs and are pre-expanded for all simulation time at
/// initialization, exactly as §4 step 1 prescribes.
///
/// Gates are width-generic: all inputs and the output share one width, so an
/// `And` over 16-bit buses is a bitwise AND.
///
/// # Examples
///
/// ```
/// use parsim_logic::ElementKind;
///
/// let adder = ElementKind::Adder { width: 8 };
/// assert_eq!(adder.num_outputs(), 2); // sum and carry-out
/// assert!(adder.eval_cost() > ElementKind::Not.eval_cost());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKind {
    /// N-ary AND; inputs and output share `width` bits.
    And,
    /// N-ary OR.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (left fold).
    Xor,
    /// N-ary XNOR.
    Xnor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
    /// 2:1 multiplexer; inputs `sel(1), a(width), b(width)`; output `width`.
    /// `sel = 0` selects `a`.
    Mux { width: u8 },
    /// Rising-edge D flip-flop; inputs `clk(1), d(width)`; output `q(width)`.
    Dff { width: u8 },
    /// D flip-flop with asynchronous active-high reset; inputs
    /// `clk(1), d(width), rst(1)`; output `q(width)`.
    DffR { width: u8 },
    /// Transparent latch; inputs `en(1), d(width)`; output `q(width)`.
    Latch { width: u8 },
    /// Ripple-model adder; inputs `a(width), b(width), cin(1)`; outputs
    /// `sum(width), cout(1)`.
    Adder { width: u8 },
    /// Subtractor; inputs `a(width), b(width)`; output `diff(width)`.
    Subtractor { width: u8 },
    /// Multiplier; inputs `a(width), b(width)`; output `p(2*width)`.
    Multiplier { width: u8 },
    /// Unsigned comparator; inputs `a(width), b(width)`; outputs
    /// `eq(1), lt(1)`.
    Comparator { width: u8 },
    /// Synchronous memory with registered read-first output: inputs
    /// `clk(1), we(1), addr(addr_bits), wdata(width)`; output
    /// `rdata(width)`. On each rising clock edge the addressed cell is
    /// read into `rdata`, then written from `wdata` when `we = 1`.
    /// Unknown addresses or write enables conservatively poison the
    /// affected cells to `X`.
    Memory { addr_bits: u8, width: u8 },
    /// Tristate buffer: inputs `en(1), d(width)`; output follows `d`
    /// while `en = 1`, floats at `Z` while `en = 0`, and is `X` for an
    /// unknown enable.
    TriBuf { width: u8 },
    /// Wired-bus resolver: n driver inputs of `width` bits each; output
    /// is their per-bit resolution ([`Value::resolve`]).
    Resolver { width: u8 },
    /// Bus slice (pure wiring): input `in(in_width)`; output the bits
    /// `[lo, lo + width)`.
    Slice { in_width: u8, lo: u8, width: u8 },
    /// Zero extension (pure wiring): input `in(in_width)`; output
    /// `out(out_width)` with high bits zero.
    ZeroExt { in_width: u8, out_width: u8 },
    /// Constant left shift (pure wiring): input `in(in_width)`; output
    /// `out(out_width) = in << amount`, truncated to `out_width`.
    Shl {
        in_width: u8,
        out_width: u8,
        amount: u8,
    },
    /// Clock generator: output is 0 until `offset`, then toggles every
    /// `half_period` ticks (first toggle at `offset`).
    Clock { half_period: u64, offset: u64 },
    /// One-shot pulse: 0, then 1 during `[at, at + width)`.
    Pulse { at: u64, width: u64 },
    /// Cyclic pattern generator: emits `values[k % len]` at `t = k * period`.
    Pattern { period: u64, values: Arc<[Value]> },
    /// Explicit timed stimulus: emits each `(time, value)` change once, in
    /// order — the test-vector generator behind
    /// [`TestBench`](https://docs.rs/parsim-core)-style directed tests.
    Vector { changes: Arc<[(u64, Value)]> },
    /// Pseudo-random generator: a 64-bit Fibonacci LFSR stepped every
    /// `period` ticks, emitting its low `width` bits.
    Lfsr { width: u8, period: u64, seed: u64 },
    /// Constant driver.
    Const { value: Value },
}

/// How many inputs an element accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n` inputs.
    Exact(usize),
    /// At least `n` inputs (n-ary gates).
    AtLeast(usize),
}

/// A controlling-value rule used by the asynchronous engine's lookahead
/// optimization (§4: "if e2 is an AND gate and node 2 is 0 ... node 3 will
/// be 0 ... and any events on node 4 ... can be ignored").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Controlling {
    /// The input bit value that pins the output.
    pub input: Bit,
    /// The output bit produced while any input holds the controlling value.
    pub output: Bit,
}

impl ElementKind {
    /// True for generator elements (no inputs; pre-expanded at init).
    pub fn is_generator(&self) -> bool {
        matches!(
            self,
            ElementKind::Clock { .. }
                | ElementKind::Pulse { .. }
                | ElementKind::Pattern { .. }
                | ElementKind::Vector { .. }
                | ElementKind::Lfsr { .. }
                | ElementKind::Const { .. }
        )
    }

    /// True for elements with internal state (flip-flops, latches,
    /// memories).
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            ElementKind::Dff { .. }
                | ElementKind::DffR { .. }
                | ElementKind::Latch { .. }
                | ElementKind::Memory { .. }
        )
    }

    /// The number of output ports.
    pub fn num_outputs(&self) -> usize {
        match self {
            ElementKind::Adder { .. } | ElementKind::Comparator { .. } => 2,
            _ => 1,
        }
    }

    /// The width of output port `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_outputs()`.
    pub fn output_width(&self, idx: usize) -> u8 {
        assert!(idx < self.num_outputs(), "output index out of range");
        match self {
            ElementKind::Mux { width }
            | ElementKind::Dff { width }
            | ElementKind::DffR { width }
            | ElementKind::Latch { width }
            | ElementKind::TriBuf { width }
            | ElementKind::Resolver { width }
            | ElementKind::Memory { width, .. }
            | ElementKind::Subtractor { width } => *width,
            ElementKind::Adder { width }
                if idx == 0 => {
                    *width
                }
            ElementKind::Multiplier { width } => width.saturating_mul(2).min(64),
            ElementKind::Comparator { .. } => 1,
            ElementKind::Slice { width, .. } => *width,
            ElementKind::ZeroExt { out_width, .. } | ElementKind::Shl { out_width, .. } => {
                *out_width
            }
            ElementKind::Pattern { values, .. } => values[0].width(),
            ElementKind::Vector { changes } => changes[0].1.width(),
            ElementKind::Lfsr { width, .. } => *width,
            ElementKind::Const { value } => value.width(),
            ElementKind::Clock { .. } | ElementKind::Pulse { .. } => 1,
            // Width-generic gates: resolved by the netlist from the nodes.
            _ => 1,
        }
    }

    /// True for gates whose output width follows their node widths rather
    /// than being fixed by the kind itself.
    pub fn is_width_generic(&self) -> bool {
        matches!(
            self,
            ElementKind::And
                | ElementKind::Or
                | ElementKind::Nand
                | ElementKind::Nor
                | ElementKind::Xor
                | ElementKind::Xnor
                | ElementKind::Not
                | ElementKind::Buf
        )
    }

    /// The accepted input arity.
    pub fn input_arity(&self) -> Arity {
        match self {
            ElementKind::And
            | ElementKind::Or
            | ElementKind::Nand
            | ElementKind::Nor
            | ElementKind::Xor
            | ElementKind::Xnor => Arity::AtLeast(2),
            ElementKind::Not
            | ElementKind::Buf
            | ElementKind::Slice { .. }
            | ElementKind::ZeroExt { .. }
            | ElementKind::Shl { .. } => Arity::Exact(1),
            ElementKind::Mux { .. } | ElementKind::DffR { .. } | ElementKind::Adder { .. } => {
                Arity::Exact(3)
            }
            ElementKind::Memory { .. } => Arity::Exact(4),
            ElementKind::Dff { .. }
            | ElementKind::Latch { .. }
            | ElementKind::TriBuf { .. }
            | ElementKind::Subtractor { .. }
            | ElementKind::Multiplier { .. }
            | ElementKind::Comparator { .. } => Arity::Exact(2),
            ElementKind::Resolver { .. } => Arity::AtLeast(2),
            _ => Arity::Exact(0), // generators
        }
    }

    /// Checks an input count against [`Self::input_arity`].
    ///
    /// # Errors
    ///
    /// Returns [`PortCountError`] when the count is not accepted.
    pub fn check_arity(&self, n_inputs: usize) -> Result<(), PortCountError> {
        let ok = match self.input_arity() {
            Arity::Exact(n) => n_inputs == n,
            Arity::AtLeast(n) => n_inputs >= n,
        };
        if ok {
            Ok(())
        } else {
            Err(PortCountError {
                kind: format!("{self:?}"),
                expected: self.input_arity(),
                got: n_inputs,
            })
        }
    }

    /// The controlling-value rule for this element, if it has one.
    ///
    /// Used by the asynchronous engine to extend output valid times past
    /// unknown inputs while another input pins the output.
    pub fn controlling(&self) -> Option<Controlling> {
        match self {
            ElementKind::And => Some(Controlling {
                input: Bit::Zero,
                output: Bit::Zero,
            }),
            ElementKind::Nand => Some(Controlling {
                input: Bit::Zero,
                output: Bit::One,
            }),
            ElementKind::Or => Some(Controlling {
                input: Bit::One,
                output: Bit::One,
            }),
            ElementKind::Nor => Some(Controlling {
                input: Bit::One,
                output: Bit::Zero,
            }),
            _ => None,
        }
    }

    /// Relative evaluation cost in "inverter events", the paper's unit
    /// ("elements at the higher levels of abstraction will have execution
    /// times ranging from 1 to 100 inverter-events").
    ///
    /// Used by the LPT partitioner and by the virtual-machine cost model.
    pub fn eval_cost(&self) -> u64 {
        match self {
            ElementKind::Not | ElementKind::Buf => 1,
            ElementKind::And | ElementKind::Or | ElementKind::Nand | ElementKind::Nor => 1,
            ElementKind::Xor | ElementKind::Xnor => 2,
            ElementKind::Mux { .. } => 2,
            ElementKind::Dff { .. } | ElementKind::Latch { .. } => 2,
            ElementKind::DffR { .. } => 3,
            ElementKind::Adder { width } | ElementKind::Subtractor { width } => {
                2 + (*width as u64) / 2
            }
            ElementKind::Multiplier { width } => 4 + 2 * (*width as u64),
            ElementKind::Comparator { width } => 2 + (*width as u64) / 4,
            ElementKind::Slice { .. } | ElementKind::ZeroExt { .. } | ElementKind::Shl { .. } => 1,
            ElementKind::TriBuf { .. } => 1,
            ElementKind::Resolver { width } => 1 + (*width as u64) / 8,
            ElementKind::Memory { addr_bits, width } => {
                5 + (*width as u64) / 4 + *addr_bits as u64
            }
            ElementKind::Clock { .. }
            | ElementKind::Pulse { .. }
            | ElementKind::Pattern { .. }
            | ElementKind::Vector { .. }
            | ElementKind::Lfsr { .. }
            | ElementKind::Const { .. } => 1,
        }
    }

    /// A short lowercase mnemonic used by the netlist text format.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            ElementKind::And => "and",
            ElementKind::Or => "or",
            ElementKind::Nand => "nand",
            ElementKind::Nor => "nor",
            ElementKind::Xor => "xor",
            ElementKind::Xnor => "xnor",
            ElementKind::Not => "not",
            ElementKind::Buf => "buf",
            ElementKind::Mux { .. } => "mux",
            ElementKind::Dff { .. } => "dff",
            ElementKind::DffR { .. } => "dffr",
            ElementKind::Latch { .. } => "latch",
            ElementKind::Adder { .. } => "add",
            ElementKind::Subtractor { .. } => "sub",
            ElementKind::Multiplier { .. } => "mul",
            ElementKind::Comparator { .. } => "cmp",
            ElementKind::Memory { .. } => "mem",
            ElementKind::TriBuf { .. } => "tribuf",
            ElementKind::Resolver { .. } => "res",
            ElementKind::Slice { .. } => "slice",
            ElementKind::ZeroExt { .. } => "zext",
            ElementKind::Shl { .. } => "shl",
            ElementKind::Clock { .. } => "clock",
            ElementKind::Pulse { .. } => "pulse",
            ElementKind::Pattern { .. } => "pattern",
            ElementKind::Vector { .. } => "vector",
            ElementKind::Lfsr { .. } => "lfsr",
            ElementKind::Const { .. } => "const",
        }
    }
}

impl fmt::Display for ElementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when an element is connected to the wrong number of
/// inputs.
///
/// # Examples
///
/// ```
/// use parsim_logic::ElementKind;
///
/// assert!(ElementKind::Not.check_arity(2).is_err());
/// assert!(ElementKind::And.check_arity(4).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortCountError {
    kind: String,
    expected: Arity,
    got: usize,
}

impl fmt::Display for PortCountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let expected = match self.expected {
            Arity::Exact(n) => format!("exactly {n}"),
            Arity::AtLeast(n) => format!("at least {n}"),
        };
        write!(
            f,
            "element {} expects {expected} inputs, got {}",
            self.kind, self.got
        )
    }
}

impl Error for PortCountError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_checks() {
        assert!(ElementKind::And.check_arity(2).is_ok());
        assert!(ElementKind::And.check_arity(5).is_ok());
        assert!(ElementKind::And.check_arity(1).is_err());
        assert!(ElementKind::Not.check_arity(1).is_ok());
        assert!(ElementKind::Adder { width: 8 }.check_arity(3).is_ok());
        assert!(ElementKind::Adder { width: 8 }.check_arity(2).is_err());
        assert!(ElementKind::Clock {
            half_period: 5,
            offset: 0
        }
        .check_arity(0)
        .is_ok());
    }

    #[test]
    fn output_shapes() {
        let adder = ElementKind::Adder { width: 8 };
        assert_eq!(adder.num_outputs(), 2);
        assert_eq!(adder.output_width(0), 8);
        assert_eq!(adder.output_width(1), 1);
        let mul = ElementKind::Multiplier { width: 3 };
        assert_eq!(mul.output_width(0), 6);
    }

    #[test]
    fn generator_classification() {
        assert!(ElementKind::Const {
            value: Value::bit(true)
        }
        .is_generator());
        assert!(!ElementKind::And.is_generator());
        assert!(ElementKind::Dff { width: 1 }.is_sequential());
        assert!(!ElementKind::And.is_sequential());
    }

    #[test]
    fn controlling_values() {
        let c = ElementKind::And.controlling().unwrap();
        assert_eq!(c.input, Bit::Zero);
        assert_eq!(c.output, Bit::Zero);
        let c = ElementKind::Nor.controlling().unwrap();
        assert_eq!(c.input, Bit::One);
        assert_eq!(c.output, Bit::Zero);
        assert!(ElementKind::Xor.controlling().is_none());
    }

    #[test]
    fn costs_scale_with_abstraction_level() {
        // The paper: functional elements cost 1..100 inverter events.
        let inv = ElementKind::Not.eval_cost();
        let add8 = ElementKind::Adder { width: 8 }.eval_cost();
        let mul3 = ElementKind::Multiplier { width: 3 }.eval_cost();
        assert_eq!(inv, 1);
        assert!(add8 > inv && mul3 > inv);
        assert!(mul3 <= 100 && add8 <= 100);
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(ElementKind::Nand.mnemonic(), "nand");
        assert_eq!(ElementKind::Dff { width: 4 }.to_string(), "dff");
    }
}
