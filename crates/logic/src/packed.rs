//! Word-parallel bit-plane kernels: 64 independent stimulus lanes per word.
//!
//! A [`Value`] stores one logic vector as two planes `(a, b)` with one bit
//! per *vector bit*. This module transposes that layout: a [`Lanes`] word
//! holds one *vector bit* across 64 independent simulations, so a node of
//! width `w` is `w` consecutive `Lanes`. Four-state logic then evaluates as
//! plain word-wide boolean algebra — one AND over two `Lanes` words performs
//! 64 four-state AND operations at once.
//!
//! The per-element kernels here ([`fold_and`], [`mux`], [`dff`], …) are
//! written to be *bit-identical* to [`evaluate`](crate::evaluate) applied to
//! each lane separately; the compiled-mode batch engine in `parsim-core`
//! relies on that equivalence, and the tests in this module check it
//! exhaustively for one-bit operands and statistically for wide ones.
//!
//! Encoding per lane (same two-plane convention as [`Value`]):
//!
//! | state | a | b |
//! |-------|---|---|
//! | `0`   | 0 | 0 |
//! | `1`   | 1 | 0 |
//! | `Z`   | 0 | 1 |
//! | `X`   | 1 | 1 |

use crate::value::Value;

/// One bit position of a logic vector across 64 simulation lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Lanes {
    /// Plane `a`: set for `1` and `X` lanes.
    pub a: u64,
    /// Plane `b`: set for `Z` and `X` lanes.
    pub b: u64,
}

impl Lanes {
    /// All 64 lanes `X` (the reset state of every node).
    pub const X: Lanes = Lanes { a: !0, b: !0 };
    /// All 64 lanes `0`.
    pub const ZERO: Lanes = Lanes { a: 0, b: 0 };
    /// All 64 lanes `1`.
    pub const ONE: Lanes = Lanes { a: !0, b: 0 };
    /// All 64 lanes `Z`.
    pub const Z: Lanes = Lanes { a: 0, b: !0 };

    /// Z lanes become X; mirrors [`Value::to_logic`] per lane.
    #[inline]
    pub fn to_logic(self) -> Lanes {
        Lanes {
            a: self.a | self.b,
            b: self.b,
        }
    }

    /// Lanes that are a known `1` (raw view).
    #[inline]
    pub fn k1(self) -> u64 {
        self.a & !self.b
    }

    /// Lanes that are a known `0` (raw view).
    #[inline]
    pub fn k0(self) -> u64 {
        !self.a & !self.b
    }

    /// Lanes where `self` differs from `other` in either plane.
    #[inline]
    pub fn diff(self, other: Lanes) -> u64 {
        (self.a ^ other.a) | (self.b ^ other.b)
    }

    /// Builds lanes from known-zero and known-one masks; uncovered lanes
    /// are `X`. Mirrors the plane arithmetic of `Value::from_masks`.
    #[inline]
    pub fn from_masks(zeros: u64, ones: u64) -> Lanes {
        let unknown = !(zeros | ones);
        Lanes {
            a: ones | unknown,
            b: unknown,
        }
    }

    /// Per-lane select: lanes in `mask` read from `t`, the rest from `e`.
    #[inline]
    pub fn select(mask: u64, t: Lanes, e: Lanes) -> Lanes {
        Lanes {
            a: (t.a & mask) | (e.a & !mask),
            b: (t.b & mask) | (e.b & !mask),
        }
    }
}

/// Lanes where `old` and `new` differ in any bit of the vector.
#[inline]
pub fn changed_mask(old: &[Lanes], new: &[Lanes]) -> u64 {
    debug_assert_eq!(old.len(), new.len());
    let mut m = 0u64;
    for (o, n) in old.iter().zip(new) {
        m |= o.diff(*n);
    }
    m
}

/// Copies `src` into `dst` only in the lanes of `mask`.
#[inline]
pub fn write_masked(dst: &mut [Lanes], src: &[Lanes], mask: u64) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = Lanes::select(mask, *s, *d);
    }
}

/// Writes the bits of `v` into lane `lane` of `dst` (`dst.len()` must be
/// `v.width()`).
#[inline]
pub fn scatter(dst: &mut [Lanes], lane: u32, v: &Value) {
    debug_assert_eq!(dst.len(), v.width() as usize);
    let (a, b) = v.to_planes();
    let bit = 1u64 << lane;
    for (i, d) in dst.iter_mut().enumerate() {
        d.a = (d.a & !bit) | (((a >> i) & 1) << lane);
        d.b = (d.b & !bit) | (((b >> i) & 1) << lane);
    }
}

/// Reads lane `lane` of `src` back as a scalar [`Value`] of width
/// `src.len()`.
#[inline]
pub fn gather(src: &[Lanes], lane: u32) -> Value {
    let mut a = 0u64;
    let mut b = 0u64;
    for (i, s) in src.iter().enumerate() {
        a |= ((s.a >> lane) & 1) << i;
        b |= ((s.b >> lane) & 1) << i;
    }
    Value::from_planes(src.len() as u8, a, b)
}

/// Replicates `v` into all 64 lanes of `dst`.
#[inline]
pub fn broadcast(dst: &mut [Lanes], v: &Value) {
    debug_assert_eq!(dst.len(), v.width() as usize);
    let (a, b) = v.to_planes();
    for (i, d) in dst.iter_mut().enumerate() {
        d.a = if (a >> i) & 1 == 1 { !0 } else { 0 };
        d.b = if (b >> i) & 1 == 1 { !0 } else { 0 };
    }
}

// ---------------------------------------------------------------------------
// Gate kernels. All gate inputs pass through the logic view first, exactly
// like `fold_logic` in the scalar evaluator: Z participates as X.
// ---------------------------------------------------------------------------

/// `out = src.to_logic()` — the first fold step and the `Buf` kernel.
#[inline]
pub fn load_logic(out: &mut [Lanes], src: &[Lanes]) {
    debug_assert_eq!(out.len(), src.len());
    for (o, s) in out.iter_mut().zip(src) {
        *o = s.to_logic();
    }
}

/// `acc = acc AND src.to_logic()` (acc already a logic view).
#[inline]
pub fn fold_and(acc: &mut [Lanes], src: &[Lanes]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, s) in acc.iter_mut().zip(src) {
        let s = s.to_logic();
        *a = Lanes::from_masks(a.k0() | s.k0(), a.k1() & s.k1());
    }
}

/// `acc = acc OR src.to_logic()` (acc already a logic view).
#[inline]
pub fn fold_or(acc: &mut [Lanes], src: &[Lanes]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, s) in acc.iter_mut().zip(src) {
        let s = s.to_logic();
        *a = Lanes::from_masks(a.k0() & s.k0(), a.k1() | s.k1());
    }
}

/// `acc = acc XOR src.to_logic()` (acc already a logic view).
#[inline]
pub fn fold_xor(acc: &mut [Lanes], src: &[Lanes]) {
    debug_assert_eq!(acc.len(), src.len());
    for (a, s) in acc.iter_mut().zip(src) {
        let s = s.to_logic();
        let known = !a.b & !s.b;
        let ones = (a.a ^ s.a) & known;
        *a = Lanes::from_masks(known & !ones, ones);
    }
}

/// Four-state complement in place; mirrors [`Value::not`] per lane.
#[inline]
pub fn not_inplace(v: &mut [Lanes]) {
    for l in v.iter_mut() {
        *l = Lanes::from_masks(l.k1(), l.k0());
    }
}

// ---------------------------------------------------------------------------
// Mux / sequential kernels. These mirror the corresponding arms of
// `evaluate` exactly, including the X-merge rules.
// ---------------------------------------------------------------------------

/// 2:1 mux: `sel == 0` picks `a` verbatim, `sel == 1` picks `b` verbatim;
/// unknown select passes the operands through only where they agree on the
/// whole vector, else `X`.
#[inline]
pub fn mux(out: &mut [Lanes], sel: Lanes, a: &[Lanes], b: &[Lanes]) {
    debug_assert!(out.len() == a.len() && a.len() == b.len());
    let sl = sel.to_logic();
    let s1 = sl.k1();
    let s0 = sl.k0();
    let sx = sl.b;
    // Lanes where the whole a and b vectors agree (bitwise, raw encoding).
    let eqv = !changed_mask(a, b);
    for ((o, av), bv) in out.iter_mut().zip(a).zip(b) {
        o.a = (s0 & av.a) | (s1 & bv.a) | (sx & ((eqv & av.a) | !eqv));
        o.b = (s0 & av.b) | (s1 & bv.b) | (sx & ((eqv & av.b) | !eqv));
    }
}

/// Lanes where `(prev, now)` is a rising edge: previous clock a known 0 and
/// current clock a known 1 — the raw-view rule of [`Value::is_rising_edge`].
#[inline]
pub fn rising_mask(prev: Lanes, now: Lanes) -> u64 {
    prev.k0() & now.k1()
}

/// D flip-flop step: captures `d` into `q` on rising-edge lanes and records
/// the clock. The caller copies `q` out afterwards.
#[inline]
pub fn dff(q: &mut [Lanes], last_clk: &mut Lanes, clk: Lanes, d: &[Lanes]) {
    debug_assert_eq!(q.len(), d.len());
    let edge = rising_mask(*last_clk, clk);
    for (qv, dv) in q.iter_mut().zip(d) {
        *qv = Lanes::select(edge, *dv, *qv);
    }
    *last_clk = clk;
}

/// D flip-flop with synchronous reset: a known-1 reset forces `q` to zero,
/// a rising edge with known-0 reset captures `d`, and an unknown reset
/// holds (no capture, no clear) — matching the `DffR` arm of `evaluate`.
#[inline]
pub fn dffr(q: &mut [Lanes], last_clk: &mut Lanes, clk: Lanes, d: &[Lanes], rst: Lanes) {
    debug_assert_eq!(q.len(), d.len());
    let rl = rst.to_logic();
    let r1 = rl.k1();
    let edge = rising_mask(*last_clk, clk) & rl.k0();
    for (qv, dv) in q.iter_mut().zip(d) {
        *qv = Lanes::select(edge, *dv, *qv);
        qv.a &= !r1;
        qv.b &= !r1;
    }
    *last_clk = clk;
}

/// Transparent latch step: known-1 enable is transparent, known-0 holds,
/// unknown enable holds only if `q` already equals `d` (else `q` poisons to
/// `X`), matching the `Latch` arm of `evaluate`.
#[inline]
pub fn latch(q: &mut [Lanes], en: Lanes, d: &[Lanes]) {
    debug_assert_eq!(q.len(), d.len());
    let el = en.to_logic();
    let e1 = el.k1();
    let ex = el.b;
    let e0 = !(e1 | ex);
    let eqv = !changed_mask(q, d);
    for (qv, dv) in q.iter_mut().zip(d) {
        qv.a = (e1 & dv.a) | (e0 & qv.a) | (ex & ((eqv & qv.a) | !eqv));
        qv.b = (e1 & dv.b) | (e0 & qv.b) | (ex & ((eqv & qv.b) | !eqv));
    }
}

/// Tri-state buffer: known-1 enable passes `d` verbatim, known-0 releases
/// to `Z`, unknown enable outputs `X`.
#[inline]
pub fn tribuf(out: &mut [Lanes], en: Lanes, d: &[Lanes]) {
    debug_assert_eq!(out.len(), d.len());
    let el = en.to_logic();
    let e1 = el.k1();
    let ex = el.b;
    let e0 = !(e1 | ex);
    for (o, dv) in out.iter_mut().zip(d) {
        o.a = (e1 & dv.a) | ex;
        o.b = (e1 & dv.b) | e0 | ex;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, ElemState};
    use crate::kind::ElementKind;
    use crate::value::Bit;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const STATES: [Bit; 4] = [Bit::Zero, Bit::One, Bit::X, Bit::Z];

    fn bitv(b: Bit) -> Value {
        Value::from_bits(&[b])
    }

    fn rand_value(rng: &mut SmallRng, width: u8) -> Value {
        let bits: Vec<Bit> = (0..width).map(|_| STATES[rng.gen_range(0..4)]).collect();
        Value::from_bits(&bits)
    }

    /// Packs one scalar pair per lane (16 lanes: every 4-state combination)
    /// and checks the fold kernel against the scalar evaluator lane by lane.
    fn check_gate_exhaustive_1bit(kind: ElementKind) {
        let mut xs = [Lanes::ZERO; 1];
        let mut ys = [Lanes::ZERO; 1];
        let mut pairs = Vec::new();
        for (i, &x) in STATES.iter().enumerate() {
            for (j, &y) in STATES.iter().enumerate() {
                let lane = (i * 4 + j) as u32;
                scatter(&mut xs, lane, &bitv(x));
                scatter(&mut ys, lane, &bitv(y));
                pairs.push((lane, bitv(x), bitv(y)));
            }
        }
        let mut out = [Lanes::ZERO; 1];
        load_logic(&mut out, &xs);
        match kind {
            ElementKind::And | ElementKind::Nand => fold_and(&mut out, &ys),
            ElementKind::Or | ElementKind::Nor => fold_or(&mut out, &ys),
            ElementKind::Xor | ElementKind::Xnor => fold_xor(&mut out, &ys),
            _ => unreachable!(),
        }
        if matches!(
            kind,
            ElementKind::Nand | ElementKind::Nor | ElementKind::Xnor
        ) {
            not_inplace(&mut out);
        }
        for (lane, x, y) in pairs {
            let expect = evaluate(&kind, &[x, y], &mut ElemState::None).get(0);
            assert_eq!(
                gather(&out, lane),
                expect,
                "{kind:?} lane {lane} ({x} op {y})"
            );
        }
    }

    #[test]
    fn gates_match_scalar_for_every_state_pair() {
        for kind in [
            ElementKind::And,
            ElementKind::Nand,
            ElementKind::Or,
            ElementKind::Nor,
            ElementKind::Xor,
            ElementKind::Xnor,
        ] {
            check_gate_exhaustive_1bit(kind);
        }
    }

    #[test]
    fn unary_gates_match_scalar_for_every_state() {
        let mut src = [Lanes::ZERO; 1];
        for (i, &x) in STATES.iter().enumerate() {
            scatter(&mut src, i as u32, &bitv(x));
        }
        for kind in [ElementKind::Not, ElementKind::Buf] {
            let mut out = [Lanes::ZERO; 1];
            load_logic(&mut out, &src);
            if kind == ElementKind::Not {
                not_inplace(&mut out);
            }
            for (i, &x) in STATES.iter().enumerate() {
                let expect = evaluate(&kind, &[bitv(x)], &mut ElemState::None).get(0);
                assert_eq!(gather(&out, i as u32), expect, "{kind:?} on {x}");
            }
        }
    }

    #[test]
    fn wide_gates_match_scalar_on_random_lanes() {
        let mut rng = SmallRng::seed_from_u64(11);
        for kind in [ElementKind::And, ElementKind::Xor, ElementKind::Nor] {
            let w = 7usize;
            let mut xs = vec![Lanes::ZERO; w];
            let mut ys = vec![Lanes::ZERO; w];
            let mut scalar = Vec::new();
            for lane in 0..64u32 {
                let x = rand_value(&mut rng, w as u8);
                let y = rand_value(&mut rng, w as u8);
                scatter(&mut xs, lane, &x);
                scatter(&mut ys, lane, &y);
                scalar.push((x, y));
            }
            let mut out = vec![Lanes::ZERO; w];
            load_logic(&mut out, &xs);
            match kind {
                ElementKind::And => fold_and(&mut out, &ys),
                ElementKind::Xor => fold_xor(&mut out, &ys),
                ElementKind::Nor => {
                    fold_or(&mut out, &ys);
                    not_inplace(&mut out);
                }
                _ => unreachable!(),
            }
            for (lane, (x, y)) in scalar.iter().enumerate() {
                let expect = evaluate(&kind, &[*x, *y], &mut ElemState::None).get(0);
                assert_eq!(gather(&out, lane as u32), expect, "{kind:?} lane {lane}");
            }
        }
    }

    #[test]
    fn mux_matches_scalar_including_unknown_select() {
        let mut rng = SmallRng::seed_from_u64(23);
        let w = 4usize;
        for _ in 0..40 {
            let mut sels = [Lanes::ZERO; 1];
            let mut avs = vec![Lanes::ZERO; w];
            let mut bvs = vec![Lanes::ZERO; w];
            let mut scalar = Vec::new();
            for lane in 0..64u32 {
                let s = bitv(STATES[rng.gen_range(0..4)]);
                // Bias towards equal a/b so the X-merge agree path is hit.
                let a = rand_value(&mut rng, w as u8);
                let b = if rng.gen_bool(0.4) {
                    a
                } else {
                    rand_value(&mut rng, w as u8)
                };
                scatter(&mut sels, lane, &s);
                scatter(&mut avs, lane, &a);
                scatter(&mut bvs, lane, &b);
                scalar.push((s, a, b));
            }
            let mut out = vec![Lanes::ZERO; w];
            mux(&mut out, sels[0], &avs, &bvs);
            let kind = ElementKind::Mux { width: w as u8 };
            for (lane, (s, a, b)) in scalar.iter().enumerate() {
                let expect = evaluate(&kind, &[*s, *a, *b], &mut ElemState::None).get(0);
                assert_eq!(gather(&out, lane as u32), expect, "mux lane {lane}");
            }
        }
    }

    #[test]
    fn dff_sequences_match_scalar() {
        let mut rng = SmallRng::seed_from_u64(37);
        let w = 3usize;
        let kind = ElementKind::Dff { width: w as u8 };
        let mut q = vec![Lanes::X; w];
        let mut last_clk = Lanes::X;
        let mut states: Vec<ElemState> = (0..64).map(|_| ElemState::init(&kind)).collect();
        for _step in 0..200 {
            let mut clks = [Lanes::ZERO; 1];
            let mut ds = vec![Lanes::ZERO; w];
            let mut scalar = Vec::new();
            for lane in 0..64u32 {
                let c = bitv(STATES[rng.gen_range(0..4)]);
                let d = rand_value(&mut rng, w as u8);
                scatter(&mut clks, lane, &c);
                scatter(&mut ds, lane, &d);
                scalar.push((c, d));
            }
            dff(&mut q, &mut last_clk, clks[0], &ds);
            for (lane, (c, d)) in scalar.iter().enumerate() {
                let expect = evaluate(&kind, &[*c, *d], &mut states[lane]).get(0);
                assert_eq!(gather(&q, lane as u32), expect, "dff lane {lane}");
            }
        }
    }

    #[test]
    fn dffr_sequences_match_scalar() {
        let mut rng = SmallRng::seed_from_u64(41);
        let w = 2usize;
        let kind = ElementKind::DffR { width: w as u8 };
        let mut q = vec![Lanes::X; w];
        let mut last_clk = Lanes::X;
        let mut states: Vec<ElemState> = (0..64).map(|_| ElemState::init(&kind)).collect();
        for _step in 0..200 {
            let mut clks = [Lanes::ZERO; 1];
            let mut rsts = [Lanes::ZERO; 1];
            let mut ds = vec![Lanes::ZERO; w];
            let mut scalar = Vec::new();
            for lane in 0..64u32 {
                let c = bitv(STATES[rng.gen_range(0..4)]);
                let r = bitv(STATES[rng.gen_range(0..4)]);
                let d = rand_value(&mut rng, w as u8);
                scatter(&mut clks, lane, &c);
                scatter(&mut rsts, lane, &r);
                scatter(&mut ds, lane, &d);
                scalar.push((c, d, r));
            }
            dffr(&mut q, &mut last_clk, clks[0], &ds, rsts[0]);
            for (lane, (c, d, r)) in scalar.iter().enumerate() {
                let expect = evaluate(&kind, &[*c, *d, *r], &mut states[lane]).get(0);
                assert_eq!(gather(&q, lane as u32), expect, "dffr lane {lane}");
            }
        }
    }

    #[test]
    fn latch_sequences_match_scalar() {
        let mut rng = SmallRng::seed_from_u64(43);
        let w = 2usize;
        let kind = ElementKind::Latch { width: w as u8 };
        let mut q = vec![Lanes::X; w];
        let mut states: Vec<ElemState> = (0..64).map(|_| ElemState::init(&kind)).collect();
        for _step in 0..200 {
            let mut ens = [Lanes::ZERO; 1];
            let mut ds = vec![Lanes::ZERO; w];
            let mut scalar = Vec::new();
            for lane in 0..64u32 {
                let e = bitv(STATES[rng.gen_range(0..4)]);
                let d = rand_value(&mut rng, w as u8);
                scatter(&mut ens, lane, &e);
                scatter(&mut ds, lane, &d);
                scalar.push((e, d));
            }
            latch(&mut q, ens[0], &ds);
            for (lane, (e, d)) in scalar.iter().enumerate() {
                let expect = evaluate(&kind, &[*e, *d], &mut states[lane]).get(0);
                assert_eq!(gather(&q, lane as u32), expect, "latch lane {lane}");
            }
        }
    }

    #[test]
    fn tribuf_matches_scalar() {
        let mut rng = SmallRng::seed_from_u64(47);
        let w = 3usize;
        let kind = ElementKind::TriBuf { width: w as u8 };
        for _ in 0..40 {
            let mut ens = [Lanes::ZERO; 1];
            let mut ds = vec![Lanes::ZERO; w];
            let mut scalar = Vec::new();
            for lane in 0..64u32 {
                let e = bitv(STATES[rng.gen_range(0..4)]);
                let d = rand_value(&mut rng, w as u8);
                scatter(&mut ens, lane, &e);
                scatter(&mut ds, lane, &d);
                scalar.push((e, d));
            }
            let mut out = vec![Lanes::ZERO; w];
            tribuf(&mut out, ens[0], &ds);
            for (lane, (e, d)) in scalar.iter().enumerate() {
                let expect = evaluate(&kind, &[*e, *d], &mut ElemState::None).get(0);
                assert_eq!(gather(&out, lane as u32), expect, "tribuf lane {lane}");
            }
        }
    }

    #[test]
    fn scatter_gather_round_trips() {
        let mut rng = SmallRng::seed_from_u64(53);
        let mut arr = vec![Lanes::X; 5];
        let mut vals = Vec::new();
        for lane in 0..64u32 {
            let v = rand_value(&mut rng, 5);
            scatter(&mut arr, lane, &v);
            vals.push(v);
        }
        for (lane, v) in vals.iter().enumerate() {
            assert_eq!(gather(&arr, lane as u32), *v);
        }
        let mut all = vec![Lanes::ZERO; 5];
        let v = rand_value(&mut rng, 5);
        broadcast(&mut all, &v);
        for lane in 0..64u32 {
            assert_eq!(gather(&all, lane), v);
        }
    }

    #[test]
    fn changed_mask_and_write_masked() {
        let mut a = vec![Lanes::ZERO; 2];
        let mut b = vec![Lanes::ZERO; 2];
        scatter(&mut a, 3, &Value::from_bits(&[Bit::One, Bit::Zero]));
        assert_eq!(changed_mask(&a, &b), 1 << 3);
        write_masked(&mut b, &a, 1 << 3);
        assert_eq!(changed_mask(&a, &b), 0);
        // Writes outside the mask must not leak.
        let snapshot = b.clone();
        let mut src = vec![Lanes::ONE; 2];
        scatter(&mut src, 3, &Value::from_bits(&[Bit::Zero, Bit::Zero]));
        write_masked(&mut b, &src, 1 << 5);
        assert_eq!(gather(&b, 3), gather(&snapshot, 3));
        assert_eq!(gather(&b, 5), gather(&src, 5));
    }
}
