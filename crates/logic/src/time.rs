//! Simulation time and element delays.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in discrete simulation time, measured in ticks.
///
/// `Time` is a transparent wrapper over `u64`. The value [`Time::MAX`] is
/// reserved as the "end of time" sentinel: a node whose behavior is valid
/// until `Time::MAX` is fully determined for the whole simulation, which is
/// how the asynchronous engine expresses the paper's "evaluated for all
/// time" condition.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, Time};
///
/// let t = Time(10) + Delay(5);
/// assert_eq!(t, Time(15));
/// assert!(t < Time::MAX);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of simulation time.
    pub const ZERO: Time = Time(0);
    /// The "end of time" sentinel; behavior valid until `MAX` is valid forever.
    pub const MAX: Time = Time(u64::MAX);

    /// Returns the raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a delay, clamping at [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, d: Delay) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Time::MAX {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl Add<Delay> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Delay) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Delay> for Time {
    #[inline]
    fn add_assign(&mut self, d: Delay) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Delay;
    /// Difference between two times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`.
    #[inline]
    fn sub(self, rhs: Time) -> Delay {
        debug_assert!(rhs <= self, "time subtraction underflow");
        Delay(self.0 - rhs.0)
    }
}

impl From<u64> for Time {
    fn from(t: u64) -> Time {
        Time(t)
    }
}

/// A propagation delay in ticks.
///
/// Every element carries a delay applied between an input change and the
/// resulting output change. The asynchronous engine requires all delays to
/// be at least one tick so that valid times strictly advance around feedback
/// loops (the paper's incremental clock-value update that avoids deadlock).
///
/// # Examples
///
/// ```
/// use parsim_logic::Delay;
///
/// assert_eq!(Delay::UNIT, Delay(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Delay(pub u64);

impl Delay {
    /// The unit delay used by the compiled-mode algorithm and as the default.
    pub const UNIT: Delay = Delay(1);

    /// Returns the raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Delay {
    fn from(d: u64) -> Delay {
        Delay(d)
    }
}

/// Picks the propagation delay for an output transition from `old` to
/// `new` under an asymmetric rise/fall delay pair.
///
/// Bits going `0 → 1` use `rise`, bits going `1 → 0` use `fall`; mixed
/// vectors and transitions involving `X`/`Z` conservatively use the larger
/// of the two. Symmetric pairs short-circuit.
///
/// # Examples
///
/// ```
/// use parsim_logic::{transition_delay, Delay, Value};
///
/// let rise = Delay(3);
/// let fall = Delay(1);
/// assert_eq!(
///     transition_delay(&Value::bit(false), &Value::bit(true), rise, fall),
///     rise
/// );
/// assert_eq!(
///     transition_delay(&Value::bit(true), &Value::bit(false), rise, fall),
///     fall
/// );
/// // Unknowns and mixed-direction vectors take the conservative maximum.
/// assert_eq!(
///     transition_delay(&Value::x(1), &Value::bit(true), rise, fall),
///     rise.max(fall)
/// );
/// ```
pub fn transition_delay(
    old: &crate::Value,
    new: &crate::Value,
    rise: Delay,
    fall: Delay,
) -> Delay {
    if rise == fall {
        return rise;
    }
    let max = rise.max(fall);
    let mut any_rise = false;
    let mut any_fall = false;
    for i in 0..new.width().min(old.width()) {
        use crate::Bit;
        match (old.bit_at(i), new.bit_at(i)) {
            (Bit::Zero, Bit::One) => any_rise = true,
            (Bit::One, Bit::Zero) => any_fall = true,
            (a, b) if a == b => {}
            // Any transition through X or Z is direction-less.
            _ => return max,
        }
    }
    match (any_rise, any_fall) {
        (true, false) => rise,
        (false, true) => fall,
        _ => max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(Time::MAX + Delay(1), Time::MAX);
        assert_eq!(Time(5) + Delay(3), Time(8));
    }

    #[test]
    fn min_max() {
        assert_eq!(Time(3).min(Time(7)), Time(3));
        assert_eq!(Time(3).max(Time(7)), Time(7));
    }

    #[test]
    fn subtraction_gives_delay() {
        assert_eq!(Time(9) - Time(4), Delay(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time(12).to_string(), "12");
        assert_eq!(Time::MAX.to_string(), "∞");
        assert_eq!(Delay(3).to_string(), "3");
    }

    #[test]
    fn transition_delay_directions() {
        use crate::Value;
        let r = Delay(4);
        let f = Delay(2);
        // Vector all-rising / all-falling / mixed.
        let zeros = Value::from_u64(0b0000, 4);
        let ones = Value::from_u64(0b1111, 4);
        let mixed_a = Value::from_u64(0b0101, 4);
        let mixed_b = Value::from_u64(0b1010, 4);
        assert_eq!(transition_delay(&zeros, &ones, r, f), r);
        assert_eq!(transition_delay(&ones, &zeros, r, f), f);
        assert_eq!(transition_delay(&mixed_a, &mixed_b, r, f), r.max(f));
        // No change: either is fine; we pick max's complement path (rise).
        assert_eq!(transition_delay(&ones, &ones, r, f), r.max(f));
        // Symmetric short-circuit.
        assert_eq!(transition_delay(&zeros, &ones, f, f), f);
        // Z involvement is direction-less.
        assert_eq!(transition_delay(&Value::z(4), &ones, r, f), r.max(f));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Time(1) < Time(2));
        assert!(Time(2) < Time::MAX);
    }
}
