//! Four-state logic values, element models, and the evaluation kernel.
//!
//! This crate is the bottom layer of `parsim`, the reproduction of
//! *Soule & Blank, "Parallel Logic Simulation on General Purpose Machines"
//! (DAC 1988)*. It defines:
//!
//! - [`Value`]: a four-state (`0`/`1`/`X`/`Z`) logic vector of up to 64 bits,
//!   using the classic two-plane encoding,
//! - [`ElementKind`]: every element model the paper's circuits need — scalar
//!   gates, sequential elements, RTL/functional blocks (adders, multipliers),
//!   and signal generators,
//! - [`evaluate`]: the single evaluation kernel shared by all four simulation
//!   engines, and
//! - [`Time`]/[`Delay`]: simulation time arithmetic.
//!
//! # Examples
//!
//! ```
//! use parsim_logic::{evaluate, ElemState, ElementKind, Value};
//!
//! let and = ElementKind::And;
//! let mut state = ElemState::None;
//! let out = evaluate(&and, &[Value::bit(true), Value::bit(false)], &mut state);
//! assert_eq!(out.get(0), Value::bit(false));
//! ```

mod eval;
mod kind;
pub mod packed;
mod time;
mod value;
pub mod wide;

pub use eval::{evaluate, expand_generator, ElemState, Outputs};
pub use kind::{Controlling, ElementKind, PortCountError};
pub use time::{transition_delay, Delay, Time};
pub use value::{Bit, ParseValueError, Value};
