//! Property-based tests for the four-state value algebra.

use parsim_logic::{evaluate, ElemState, ElementKind, Value};
use proptest::prelude::*;

/// Strategy producing an arbitrary four-state value of the given width.
fn value(width: u8) -> impl Strategy<Value = Value> {
    (any::<u64>(), any::<u64>()).prop_map(move |(a, b)| {
        let mut bits = Vec::with_capacity(width as usize);
        for i in 0..width {
            bits.push(match ((a >> i) & 1, (b >> i) & 1) {
                (0, 0) => parsim_logic::Bit::Zero,
                (1, 0) => parsim_logic::Bit::One,
                (0, 1) => parsim_logic::Bit::Z,
                _ => parsim_logic::Bit::X,
            });
        }
        Value::from_bits(&bits)
    })
}

/// Strategy producing a fully known value of the given width.
fn known(width: u8) -> impl Strategy<Value = Value> {
    any::<u64>().prop_map(move |v| {
        Value::from_u64(
            v & if width >= 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            },
            width,
        )
    })
}

proptest! {
    #[test]
    fn and_or_commute(a in value(16), b in value(16)) {
        prop_assert_eq!(a.and(&b), b.and(&a));
        prop_assert_eq!(a.or(&b), b.or(&a));
        prop_assert_eq!(a.xor(&b), b.xor(&a));
    }

    #[test]
    fn and_or_associate(a in value(8), b in value(8), c in value(8)) {
        prop_assert_eq!(a.and(&b).and(&c), a.and(&b.and(&c)));
        prop_assert_eq!(a.or(&b).or(&c), a.or(&b.or(&c)));
    }

    #[test]
    fn de_morgan(a in value(32), b in value(32)) {
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn double_negation_on_known(a in known(24)) {
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn identity_elements(a in value(12)) {
        prop_assert_eq!(a.to_logic().and(&Value::ones(12)), a.to_logic());
        prop_assert_eq!(a.to_logic().or(&Value::zero(12)), a.to_logic());
        // Zero annihilates AND, ones annihilate OR, even over X/Z bits.
        prop_assert_eq!(a.and(&Value::zero(12)), Value::zero(12));
        prop_assert_eq!(a.or(&Value::ones(12)), Value::ones(12));
    }

    #[test]
    fn known_ops_match_native(a in known(16), b in known(16)) {
        let (x, y) = (a.to_u64().unwrap(), b.to_u64().unwrap());
        prop_assert_eq!(a.and(&b).to_u64(), Some(x & y));
        prop_assert_eq!(a.or(&b).to_u64(), Some(x | y));
        prop_assert_eq!(a.xor(&b).to_u64(), Some(x ^ y));
        prop_assert_eq!(a.not().to_u64(), Some(!x & 0xffff));
        prop_assert_eq!(a.add(&b).to_u64(), Some((x + y) & 0xffff));
        prop_assert_eq!(a.sub(&b).to_u64(), Some(x.wrapping_sub(y) & 0xffff));
        prop_assert_eq!(a.mul(&b, 32).to_u64(), Some(x * y));
        prop_assert_eq!(a.logic_eq(&b).to_u64(), Some((x == y) as u64));
        prop_assert_eq!(a.logic_lt(&b).to_u64(), Some((x < y) as u64));
    }

    #[test]
    fn add_carry_matches_wide_arithmetic(a in known(8), b in known(8), c in any::<bool>()) {
        let (sum, cout) = a.add_carry(&b, &Value::bit(c));
        let wide = a.to_u64().unwrap() + b.to_u64().unwrap() + c as u64;
        prop_assert_eq!(sum.to_u64(), Some(wide & 0xff));
        prop_assert_eq!(cout.to_u64(), Some(wide >> 8));
    }

    #[test]
    fn unknowns_are_monotone(a in value(8), b in known(8)) {
        // Refining an X input can never flip a known output bit
        // (x-monotonicity): compare a&b against refined variants of a.
        let out = a.and(&b);
        // Refine every X/Z bit of `a` to 0 and to 1.
        let zeros = refine(&a, false);
        let ones = refine(&a, true);
        for refined in [zeros.and(&b), ones.and(&b)] {
            for i in 0..8 {
                let coarse = out.bit_at(i);
                if coarse == parsim_logic::Bit::Zero || coarse == parsim_logic::Bit::One {
                    prop_assert_eq!(refined.bit_at(i), coarse);
                }
            }
        }
    }

    #[test]
    fn display_parse_round_trip(a in value(13)) {
        let s = a.to_string();
        let back: Value = s.parse().unwrap();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn concat_slice_inverse(a in value(10), b in value(6)) {
        let c = a.concat(&b);
        prop_assert_eq!(c.slice(0, 10), a);
        prop_assert_eq!(c.slice(10, 6), b);
    }

    #[test]
    fn adder_element_matches_value_op(a in known(8), b in known(8), c in any::<bool>()) {
        let mut st = ElemState::None;
        let out = evaluate(
            &ElementKind::Adder { width: 8 },
            &[a, b, Value::bit(c)],
            &mut st,
        );
        let (sum, cout) = a.add_carry(&b, &Value::bit(c));
        prop_assert_eq!(out.get(0), sum);
        prop_assert_eq!(out.get(1), cout);
    }

    #[test]
    fn multiplier_element_matches_native(a in known(8), b in known(8)) {
        let mut st = ElemState::None;
        let out = evaluate(&ElementKind::Multiplier { width: 8 }, &[a, b], &mut st);
        prop_assert_eq!(
            out.get(0).to_u64(),
            Some(a.to_u64().unwrap() * b.to_u64().unwrap())
        );
    }

    #[test]
    fn generator_events_well_formed(hp in 1u64..20, off in 0u64..40, end in 0u64..500) {
        let ev = parsim_logic::expand_generator(
            &ElementKind::Clock { half_period: hp, offset: off },
            parsim_logic::Time(end),
        );
        prop_assert_eq!(ev[0].0, parsim_logic::Time::ZERO);
        prop_assert!(ev.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(ev.windows(2).all(|w| w[0].1 != w[1].1));
        prop_assert!(ev.iter().all(|(t, _)| t.ticks() <= end));
    }
}

/// Replaces every X/Z bit with a concrete bit value.
fn refine(v: &Value, to_one: bool) -> Value {
    let mut bits = Vec::new();
    for i in 0..v.width() {
        bits.push(match v.bit_at(i) {
            parsim_logic::Bit::X | parsim_logic::Bit::Z => parsim_logic::Bit::from(to_one),
            b => b,
        });
    }
    Value::from_bits(&bits)
}
