//! Model thread spawn/join/yield shims.
//!
//! Model threads are real OS threads scheduled cooperatively by the
//! explorer; spawn and join are schedule points carrying the usual
//! happens-before edges (parent's clock into the child, child's final
//! clock into the joiner).

use std::sync::{Arc as StdArc, Mutex};

use crate::exec;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    id: exec::ThreadId,
    slot: StdArc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks the calling model thread until the target finishes, then
    /// returns its value. Unlike `std`, panics in the child do not surface
    /// here — they abort the whole execution as a model violation, which
    /// is strictly more informative.
    pub fn join(self) -> T {
        exec::block_on_join(self.id);
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined model thread produced no value")
    }
}

/// Spawns a model thread participating in the exploration.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let id = exec::register_spawn();
    let slot = StdArc::new(Mutex::new(None));
    let out = StdArc::clone(&slot);
    let handle = std::thread::spawn(move || {
        exec::thread_main(id, move || {
            let v = f();
            *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        });
    });
    exec::push_os_handle(handle);
    JoinHandle { id, slot }
}

/// Model `yield_now`: parks until some store lands, so spin loops are
/// finite and an unwakeable spin shows up as a violation instead of
/// hanging the explorer.
pub fn yield_now() {
    exec::park_until_write();
}
