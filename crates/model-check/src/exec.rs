//! The deterministic interleaving explorer.
//!
//! One *execution* runs the test closure with every model thread
//! serialized: exactly one thread runs at a time, and at every schedule
//! point (each atomic operation, yield, spawn, join, finish) the scheduler
//! decides who runs next. Each decision — and each choice of *which store
//! a load observes* under the per-location visibility rules — is a branch
//! in a tree that the driver explores by depth-first search with a
//! preemption bound (CHESS-style) and a per-execution step bound.
//!
//! Model threads are real OS threads taking turns under one global mutex
//! and condvar; this is slower than continuation-based engines (loom) but
//! simple enough to vendor, and the protocols under test are tiny.
//!
//! Liveness: a model thread that calls `yield_now`/`spin_loop` parks until
//! *some* store advances the global write generation. If every live thread
//! is parked (or blocked on a join) with nothing left to wake it, the
//! explorer reports a deadlock with the offending schedule.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};

use crate::clock::VClock;

/// Identifier of a model thread within one execution (0 = root).
pub type ThreadId = usize;

/// Sentinel unwound through model threads when an execution aborts (a
/// violation was recorded elsewhere); caught silently by the wrapper.
pub(crate) struct AbortToken;

static RUN_LOCK: Mutex<()> = Mutex::new(());
static EXEC: Mutex<Option<ExecState>> = Mutex::new(None);
static CV: Condvar = Condvar::new();
static HANDLES: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());

thread_local! {
    static CURRENT: std::cell::Cell<Option<ThreadId>> = const { std::cell::Cell::new(None) };
}

pub(crate) fn current() -> ThreadId {
    CURRENT.with(|c| c.get()).expect(
        "parsim-model-check: model primitive used outside an active \
         exploration (wrap the code in Explorer::check or model())",
    )
}

fn acquiring(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releasing(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// One recorded decision: which thread ran, or which store a load read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Choice {
    /// `true` = thread choice (`tN`), `false` = read choice (`rN`).
    thread: bool,
    chosen: usize,
    /// Unexplored alternatives, popped on backtrack.
    remaining: Vec<usize>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    /// Waiting for `write_gen` to pass the stored generation.
    Parked(u64),
    /// Waiting for the given thread to finish.
    Joining(ThreadId),
    Finished,
}

struct ThreadState {
    run: Run,
    clock: VClock,
    /// Clock snapshot of the latest release fence (publishes through
    /// subsequent relaxed stores).
    rel_fence: Option<VClock>,
    /// Release clocks of relaxed-loaded stores, pending an acquire fence.
    acq_pending: VClock,
}

/// One store in a location's modification order.
struct Store {
    val: u64,
    /// Writer's clock at the store (for coherence / race floors).
    hb: VClock,
    /// Clock an acquiring reader synchronizes with, if any.
    rel: Option<VClock>,
}

struct Location {
    stores: Vec<Store>,
    /// Per-thread floor: max modification-order index already observed.
    last_seen: Vec<usize>,
    /// Per-thread `(mo index, global write generation)` of the previous
    /// load — the await-termination assumption: a thread may not re-read
    /// the same *stale* store unless some store (anywhere) happened in
    /// between. Re-reading an unchanged store leaves memory identical, so
    /// the pruned subtrees add no observable outcomes; without this rule
    /// every spin loop has an infinite all-stale branch.
    last_read: Vec<(usize, u64)>,
    /// Modification-order index of the latest SeqCst store.
    seqcst_front: usize,
}

struct CellState {
    write: Option<VClock>,
    /// Joined read clock per thread.
    reads: Vec<Option<VClock>>,
}

/// Why an execution was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CexKind {
    /// An assertion (or any panic) fired inside the model.
    Panic,
    /// A non-atomic access without a happens-before edge to the last write.
    DataRace,
    /// Every live thread is blocked on a join that can never complete.
    Deadlock,
    /// The per-execution step bound was exceeded — a runaway spin, which
    /// includes every-thread-spinning livelocks (e.g. a stuck barrier).
    StepLimit,
}

/// A failing execution: what went wrong and the schedule that provokes it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub kind: CexKind,
    pub message: String,
    /// Replayable decision string, e.g. `"t0 t1 r0 t0"`.
    pub schedule: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {} [schedule: {}]",
            self.kind, self.message, self.schedule
        )
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Executions actually run.
    pub executions: u64,
    /// True when the schedule tree was exhausted within the budget.
    pub complete: bool,
    /// The first violating execution found, if any.
    pub counterexample: Option<Counterexample>,
}

impl Outcome {
    /// True when the tree was fully explored and no execution failed.
    pub fn is_pass(&self) -> bool {
        self.complete && self.counterexample.is_none()
    }

    /// Panics with the counterexample (or budget diagnosis) unless the
    /// exploration passed exhaustively.
    #[track_caller]
    pub fn assert_pass(&self, what: &str) {
        if let Some(cex) = &self.counterexample {
            panic!("model `{what}` failed after {} executions: {cex}", self.executions);
        }
        assert!(
            self.complete,
            "model `{what}` exhausted its execution budget ({} runs) without \
             completing; raise max_executions or tighten the model",
            self.executions
        );
    }
}

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct Config {
    pub max_preemptions: usize,
    pub max_steps: u64,
    pub max_executions: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_preemptions: 3,
            max_steps: 20_000,
            max_executions: 1_000_000,
        }
    }
}

struct ExecState {
    cfg: Config,
    threads: Vec<ThreadState>,
    locations: Vec<Location>,
    cells: Vec<CellState>,
    schedule: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    write_gen: u64,
    steps: u64,
    active: ThreadId,
    violation: Option<Counterexample>,
    /// The recorded violation is a replay-divergence placeholder (see
    /// [`ExecState::choose`]); a real violation may still replace it.
    violation_is_divergence: bool,
    abort: bool,
}

impl ExecState {
    fn new(cfg: Config, schedule: Vec<Choice>) -> ExecState {
        let mut st = ExecState {
            cfg,
            threads: Vec::new(),
            locations: Vec::new(),
            cells: Vec::new(),
            schedule,
            pos: 0,
            preemptions: 0,
            write_gen: 0,
            steps: 0,
            active: 0,
            violation: None,
            violation_is_divergence: false,
            abort: false,
        };
        st.register_thread(None); // root
        st
    }

    fn register_thread(&mut self, parent: Option<ThreadId>) -> ThreadId {
        let id = self.threads.len();
        let mut clock = match parent {
            Some(p) => {
                // The spawn is a parent event: tick so the child is ordered
                // after it but concurrent with everything the parent does
                // next.
                self.threads[p].clock.tick(p);
                self.threads[p].clock.clone()
            }
            None => VClock::new(),
        };
        clock.tick(id);
        self.threads.push(ThreadState {
            run: Run::Runnable,
            clock,
            rel_fence: None,
            acq_pending: VClock::new(),
        });
        id
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.run == Run::Finished)
    }

    fn fail(&mut self, kind: CexKind, message: String) {
        if self.violation.is_none() || self.violation_is_divergence {
            self.violation = Some(Counterexample {
                kind,
                message,
                schedule: render_schedule(&self.schedule[..self.pos]),
            });
            self.violation_is_divergence = false;
        }
        self.abort = true;
    }

    /// Records a replay-divergence abort. It is a placeholder: when the
    /// divergence was caused by a model thread panicking mid-execution,
    /// the surviving peer may report it *before* the panicking thread's
    /// `catch_unwind` lands, and the real violation must win.
    fn fail_divergence(&mut self) {
        if self.violation.is_none() {
            self.violation = Some(Counterexample {
                kind: CexKind::Panic,
                message: "execution diverged from the replayed schedule \
                          (pinned schedule from a different model, or a \
                          model thread panicked mid-execution)"
                    .into(),
                schedule: render_schedule(&self.schedule[..self.pos]),
            });
            self.violation_is_divergence = true;
        }
        self.abort = true;
    }

    fn unpark_waiters(&mut self) {
        for i in 0..self.threads.len() {
            match self.threads[i].run {
                Run::Parked(gen) if self.write_gen > gen => {
                    self.threads[i].run = Run::Runnable;
                }
                Run::Joining(t) if self.threads[t].run == Run::Finished => {
                    self.threads[i].run = Run::Runnable;
                }
                _ => {}
            }
        }
    }

    fn runnable(&self) -> Vec<ThreadId> {
        (0..self.threads.len())
            .filter(|&i| self.threads[i].run == Run::Runnable)
            .collect()
    }

    /// Records or replays one decision with `n` alternatives; the first
    /// exploration picks `n - 1` (callers order candidates so the last is
    /// the "expected" one: keep running the current thread, read the
    /// newest store). Backtracking then walks the stale/preempting
    /// alternatives.
    ///
    /// Returns `None` when the execution no longer matches the schedule
    /// being replayed. That happens in exactly two situations: a pinned
    /// schedule that was recorded for a different model, or — during
    /// exploration — a model thread panicking mid-execution (its unwind
    /// skips schedule points, so surviving peers start consuming choices
    /// recorded for the future that just unwound). Either way the
    /// execution is unsalvageable; it is aborted with the first recorded
    /// violation intact rather than crashing the harness.
    fn choose(&mut self, thread: bool, n: usize) -> Option<usize> {
        debug_assert!(n > 0);
        if self.pos < self.schedule.len() {
            let c = &self.schedule[self.pos];
            if c.thread != thread || c.chosen >= n {
                self.fail_divergence();
                return None;
            }
            self.pos += 1;
            return Some(self.schedule[self.pos - 1].chosen);
        }
        let chosen = n - 1;
        self.schedule.push(Choice {
            thread,
            chosen,
            remaining: (0..n - 1).collect(),
        });
        self.pos += 1;
        Some(chosen)
    }

    /// Picks and activates the next thread. `me_runnable` is false when the
    /// caller parked, blocked, or finished (a forced, uncharged switch).
    /// Returns false when the execution is over (all threads finished).
    fn transfer(&mut self, me: ThreadId, me_runnable: bool) -> bool {
        self.unpark_waiters();
        let mut runnable = self.runnable();
        if runnable.is_empty() {
            // No store can wake the parked spinners, but spinning is still
            // *running*: wake them all and keep scheduling. A genuine
            // all-spinning livelock then burns the step budget and is
            // reported as `StepLimit`; only join cycles (nothing to wake)
            // remain hard deadlocks.
            for i in 0..self.threads.len() {
                if matches!(self.threads[i].run, Run::Parked(_)) {
                    self.threads[i].run = Run::Runnable;
                    runnable.push(i);
                }
            }
        }
        if runnable.is_empty() {
            if self.all_finished() {
                return false;
            }
            self.fail(
                CexKind::Deadlock,
                "every live thread is blocked on a join that can never \
                 complete"
                    .into(),
            );
            return false;
        }
        // Candidate order: [others... , me] so choose()'s first pick (the
        // last) continues the current thread; preempting choices are the
        // backtrack alternatives, admitted only under the budget.
        let mut cands: Vec<ThreadId>;
        if me_runnable {
            if self.preemptions < self.cfg.max_preemptions {
                cands = runnable.iter().copied().filter(|&t| t != me).collect();
            } else {
                cands = Vec::new();
            }
            cands.push(me);
        } else {
            cands = runnable;
        }
        let Some(pick) = self.choose(true, cands.len()) else {
            return false;
        };
        let chosen = cands[pick];
        debug_assert_eq!(self.threads[chosen].run, Run::Runnable);
        if me_runnable && chosen != me {
            self.preemptions += 1;
        }
        self.active = chosen;
        true
    }

    fn bump_step(&mut self) -> bool {
        self.steps += 1;
        if self.steps > self.cfg.max_steps {
            self.fail(
                CexKind::StepLimit,
                format!(
                    "execution exceeded {} schedule points (runaway spin or \
                     all-threads livelock)",
                    self.cfg.max_steps
                ),
            );
            return false;
        }
        true
    }
}

fn render_schedule(choices: &[Choice]) -> String {
    let mut s = String::new();
    for c in choices {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push(if c.thread { 't' } else { 'r' });
        s.push_str(&c.chosen.to_string());
    }
    s
}

fn parse_schedule(s: &str) -> Vec<Choice> {
    s.split_whitespace()
        .map(|tok| {
            let (kind, num) = tok.split_at(1);
            let thread = match kind {
                "t" => true,
                "r" => false,
                _ => panic!("bad schedule token {tok:?} (expected tN or rN)"),
            };
            Choice {
                thread,
                chosen: num.parse().unwrap_or_else(|_| panic!("bad schedule token {tok:?}")),
                remaining: Vec::new(),
            }
        })
        .collect()
}

/// Locks the execution state; panics if no exploration is active.
fn with_state<R>(f: impl FnOnce(&mut ExecState) -> R) -> R {
    let mut g = EXEC.lock().unwrap_or_else(|e| e.into_inner());
    let st = g.as_mut().expect(
        "parsim-model-check: model primitive used outside an active \
         exploration",
    );
    f(st)
}

/// Unwinds the current model thread out of the execution.
fn abort_unwind() -> ! {
    resume_unwind(Box::new(AbortToken))
}

/// The central schedule point: every model-visible operation calls this
/// before running. May suspend the calling thread while others run.
///
/// No-op while the calling thread is unwinding (a model assert fired, or
/// the execution aborted): destructors of model objects still run their
/// operations for exact refcounts, but must neither yield nor unwind
/// again (`resume_unwind` during unwind would abort the process).
pub(crate) fn schedule_point() {
    if std::thread::panicking() {
        return;
    }
    let me = current();
    let mut g = EXEC.lock().unwrap_or_else(|e| e.into_inner());
    {
        let st = g.as_mut().expect("schedule_point outside exploration");
        if st.abort {
            drop(g);
            abort_unwind();
        }
        if !st.bump_step() {
            CV.notify_all();
            drop(g);
            abort_unwind();
        }
        st.transfer(me, true);
    }
    CV.notify_all();
    loop {
        {
            let st = g.as_mut().unwrap();
            if st.abort {
                drop(g);
                abort_unwind();
            }
            if st.active == me {
                return;
            }
        }
        g = CV.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}

/// Parks the calling thread until any store lands (yield/spin-loop shim).
pub(crate) fn park_until_write() {
    if std::thread::panicking() {
        return;
    }
    let me = current();
    let mut g = EXEC.lock().unwrap_or_else(|e| e.into_inner());
    {
        let st = g.as_mut().expect("yield outside exploration");
        if st.abort {
            drop(g);
            abort_unwind();
        }
        if !st.bump_step() {
            CV.notify_all();
            drop(g);
            abort_unwind();
        }
        st.threads[me].run = Run::Parked(st.write_gen);
        st.transfer(me, false);
    }
    CV.notify_all();
    loop {
        {
            let st = g.as_mut().unwrap();
            if st.abort {
                drop(g);
                abort_unwind();
            }
            if st.active == me && st.threads[me].run == Run::Runnable {
                return;
            }
        }
        g = CV.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}

// ---- thread support --------------------------------------------------------

/// Body shared by the root and every spawned model thread.
pub(crate) fn thread_main(id: ThreadId, body: impl FnOnce()) {
    CURRENT.with(|c| c.set(Some(id)));
    // Wait for the scheduler to hand us the first turn.
    {
        let mut g = EXEC.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let st = g.as_mut().expect("model thread without exploration");
            if st.abort {
                break;
            }
            if st.active == id {
                break;
            }
            g = CV.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
    let aborted_early = with_state(|st| st.abort);
    if !aborted_early {
        let result = catch_unwind(AssertUnwindSafe(body));
        if let Err(payload) = result {
            if !payload.is::<AbortToken>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".into());
                with_state(|st| st.fail(CexKind::Panic, msg));
            }
        }
    }
    with_state(|st| {
        st.threads[id].run = Run::Finished;
        st.transfer(id, false);
    });
    CV.notify_all();
    CURRENT.with(|c| c.set(None));
}

/// Registers a spawned model thread (called by the thread shim).
pub(crate) fn register_spawn() -> ThreadId {
    schedule_point();
    with_state(|st| {
        let me = current();
        let id = st.register_thread(Some(me));
        // Spawn is also a write for liveness: a parked thread polling for
        // new peers must observe them.
        st.write_gen += 1;
        id
    })
}

pub(crate) fn push_os_handle(h: std::thread::JoinHandle<()>) {
    HANDLES.lock().unwrap_or_else(|e| e.into_inner()).push(h);
}

/// Blocks the current model thread until `target` finishes, then joins the
/// target's final clock into the caller's (the join edge).
pub(crate) fn block_on_join(target: ThreadId) {
    if std::thread::panicking() {
        return;
    }
    let me = current();
    let mut g = EXEC.lock().unwrap_or_else(|e| e.into_inner());
    {
        let st = g.as_mut().expect("join outside exploration");
        if st.abort {
            drop(g);
            abort_unwind();
        }
        if !st.bump_step() {
            CV.notify_all();
            drop(g);
            abort_unwind();
        }
        if st.threads[target].run == Run::Finished {
            let tc = st.threads[target].clock.clone();
            st.threads[me].clock.join(&tc);
            st.transfer(me, true);
        } else {
            st.threads[me].run = Run::Joining(target);
            st.transfer(me, false);
        }
    }
    CV.notify_all();
    loop {
        {
            let st = g.as_mut().unwrap();
            if st.abort {
                drop(g);
                abort_unwind();
            }
            if st.active == me && st.threads[me].run == Run::Runnable {
                if st.threads[target].run == Run::Finished {
                    let tc = st.threads[target].clock.clone();
                    st.threads[me].clock.join(&tc);
                }
                return;
            }
        }
        g = CV.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}

// ---- atomics ---------------------------------------------------------------

/// Registers an atomic location with its initial value (visible to all).
pub(crate) fn register_loc(init: u64) -> usize {
    with_state(|st| {
        st.locations.push(Location {
            stores: vec![Store {
                val: init,
                hb: VClock::new(),
                rel: None,
            }],
            last_seen: Vec::new(),
            last_read: Vec::new(),
            seqcst_front: 0,
        });
        st.locations.len() - 1
    })
}

fn last_seen(l: &Location, t: ThreadId) -> usize {
    l.last_seen.get(t).copied().unwrap_or(0)
}

fn set_last_seen(l: &mut Location, t: ThreadId, mo: usize) {
    if l.last_seen.len() <= t {
        l.last_seen.resize(t + 1, 0);
    }
    l.last_seen[t] = l.last_seen[t].max(mo);
}

pub(crate) fn atomic_load(loc: usize, ord: Ordering) -> u64 {
    if std::thread::panicking() {
        // Unwind teardown: read the newest store, no branching (recording
        // choices mid-unwind would corrupt the DFS schedule).
        return with_state(|st| st.locations[loc].stores.last().unwrap().val);
    }
    schedule_point();
    let me = current();
    with_state(|st| {
        // Visibility floor: the newest store this thread has observed, or
        // happens-before knows about; SeqCst loads additionally cannot see
        // past the latest SeqCst store.
        let floor = {
            let l = &st.locations[loc];
            let mut floor = last_seen(l, me);
            if ord == Ordering::SeqCst {
                floor = floor.max(l.seqcst_front);
            }
            let clock = &st.threads[me].clock;
            for i in (floor + 1..l.stores.len()).rev() {
                if l.stores[i].hb.leq(clock) {
                    floor = i;
                    break;
                }
            }
            // Await-termination: re-reading the same stale store with no
            // intervening store anywhere is pruned (see `last_read`).
            if let Some(&(prev, gen)) = l.last_read.get(me) {
                if gen == st.write_gen && prev == floor && floor + 1 < l.stores.len() {
                    floor += 1;
                }
            }
            floor
        };
        let n = st.locations[loc].stores.len() - floor;
        // On replay divergence fall back to the newest store; the abort
        // flag is already set and this thread unwinds at its next
        // schedule point.
        let pick = if n > 1 {
            st.choose(false, n).unwrap_or(n - 1)
        } else {
            0
        };
        let mo = floor + pick;
        let gen = st.write_gen;
        {
            let l = &mut st.locations[loc];
            if l.last_read.len() <= me {
                l.last_read.resize(me + 1, (0, 0));
            }
            l.last_read[me] = (mo, gen);
        }
        set_last_seen(&mut st.locations[loc], me, mo);
        let (val, rel) = {
            let s = &st.locations[loc].stores[mo];
            (s.val, s.rel.clone())
        };
        if let Some(rel) = rel {
            if acquiring(ord) {
                st.threads[me].clock.join(&rel);
            } else {
                st.threads[me].acq_pending.join(&rel);
            }
        }
        val
    })
}

pub(crate) fn atomic_store(loc: usize, val: u64, ord: Ordering) {
    schedule_point();
    let me = current();
    with_state(|st| {
        st.threads[me].clock.tick(me);
        let rel = if releasing(ord) {
            Some(st.threads[me].clock.clone())
        } else {
            st.threads[me].rel_fence.clone()
        };
        let hb = st.threads[me].clock.clone();
        let l = &mut st.locations[loc];
        l.stores.push(Store { val, hb, rel });
        let mo = l.stores.len() - 1;
        if ord == Ordering::SeqCst {
            l.seqcst_front = mo;
        }
        set_last_seen(l, me, mo);
        st.write_gen += 1;
    })
}

/// Read-modify-write: always operates on the newest store, continues the
/// release sequence of the store it read.
pub(crate) fn atomic_rmw(loc: usize, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    schedule_point();
    let me = current();
    with_state(|st| rmw_locked(st, me, loc, ord, f))
}

fn rmw_locked(
    st: &mut ExecState,
    me: ThreadId,
    loc: usize,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let (old, prev_rel) = {
        let s = st.locations[loc].stores.last().unwrap();
        (s.val, s.rel.clone())
    };
    if let Some(rel) = &prev_rel {
        if acquiring(ord) {
            st.threads[me].clock.join(rel);
        } else {
            st.threads[me].acq_pending.join(rel);
        }
    }
    st.threads[me].clock.tick(me);
    let mut rel = if releasing(ord) {
        Some(st.threads[me].clock.clone())
    } else {
        st.threads[me].rel_fence.clone()
    };
    // RMWs continue the release sequence of the store they replace: an
    // acquiring reader of this store synchronizes with the original
    // release even if this RMW itself is relaxed.
    if let Some(prev) = prev_rel {
        match &mut rel {
            Some(r) => r.join(&prev),
            None => rel = Some(prev),
        }
    }
    let hb = st.threads[me].clock.clone();
    let l = &mut st.locations[loc];
    l.stores.push(Store {
        val: f(old),
        hb,
        rel,
    });
    let mo = l.stores.len() - 1;
    if ord == Ordering::SeqCst {
        l.seqcst_front = mo;
    }
    set_last_seen(l, me, mo);
    st.write_gen += 1;
    old
}

/// Compare-exchange (strong; the model has no spurious failures, so weak
/// and strong coincide — documented in the crate root).
pub(crate) fn atomic_cas(
    loc: usize,
    expected: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    schedule_point();
    let me = current();
    with_state(|st| {
        let old = st.locations[loc].stores.last().unwrap().val;
        if old == expected {
            Ok(rmw_locked(st, me, loc, success, |_| new))
        } else {
            // Failure path is a load of the newest store.
            let rel = st.locations[loc].stores.last().unwrap().rel.clone();
            if let Some(rel) = rel {
                if acquiring(failure) {
                    st.threads[me].clock.join(&rel);
                } else {
                    st.threads[me].acq_pending.join(&rel);
                }
            }
            let mo = st.locations[loc].stores.len() - 1;
            set_last_seen(&mut st.locations[loc], me, mo);
            Err(old)
        }
    })
}

pub(crate) fn atomic_fence(ord: Ordering) {
    schedule_point();
    let me = current();
    with_state(|st| {
        if acquiring(ord) {
            let pending = std::mem::take(&mut st.threads[me].acq_pending);
            st.threads[me].clock.join(&pending);
        }
        if releasing(ord) {
            st.threads[me].rel_fence = Some(st.threads[me].clock.clone());
        }
    })
}

// ---- non-atomic cells ------------------------------------------------------

pub(crate) fn register_cell() -> usize {
    with_state(|st| {
        st.cells.push(CellState {
            write: None,
            reads: Vec::new(),
        });
        st.cells.len() - 1
    })
}

pub(crate) fn cell_read(id: usize, what: &str) {
    if std::thread::panicking() {
        return;
    }
    let me = current();
    let race = with_state(|st| {
        // The access is an event of its own: tick so later accesses by
        // other threads are not spuriously ordered after it.
        st.threads[me].clock.tick(me);
        let clock = st.threads[me].clock.clone();
        let c = &mut st.cells[id];
        if let Some(w) = &c.write {
            if !w.leq(&clock) {
                st.fail(
                    CexKind::DataRace,
                    format!("non-atomic read of {what} races an unsynchronized write"),
                );
                return true;
            }
        }
        if c.reads.len() <= me {
            c.reads.resize_with(me + 1, || None);
        }
        match &mut c.reads[me] {
            Some(r) => r.join(&clock),
            slot => *slot = Some(clock),
        }
        false
    });
    if race {
        CV.notify_all();
        abort_unwind();
    }
}

pub(crate) fn cell_write(id: usize, what: &str) {
    if std::thread::panicking() {
        return;
    }
    let me = current();
    let race = with_state(|st| {
        st.threads[me].clock.tick(me);
        let clock = st.threads[me].clock.clone();
        let c = &mut st.cells[id];
        let mut racy = false;
        if let Some(w) = &c.write {
            racy |= !w.leq(&clock);
        }
        racy |= c
            .reads
            .iter()
            .flatten()
            .any(|r| !r.leq(&clock));
        if racy {
            st.fail(
                CexKind::DataRace,
                format!("non-atomic write of {what} races an unsynchronized access"),
            );
            return true;
        }
        c.write = Some(clock);
        c.reads.clear();
        false
    });
    if race {
        CV.notify_all();
        abort_unwind();
    }
}

// ---- driver ----------------------------------------------------------------

/// Configurable exploration entry point.
///
/// # Examples
///
/// ```
/// use parsim_model_check::{Explorer, sync::atomic::{AtomicU64, Ordering}, sync::Arc, thread};
///
/// let outcome = Explorer::new().check(|| {
///     let a = Arc::new(AtomicU64::new(0));
///     let a2 = Arc::clone(&a);
///     let t = thread::spawn(move || a2.fetch_add(1, Ordering::AcqRel));
///     a.fetch_add(1, Ordering::AcqRel);
///     t.join();
///     assert_eq!(a.load(Ordering::Acquire), 2);
/// });
/// outcome.assert_pass("counter");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Explorer {
    cfg: Config,
}

impl Explorer {
    /// Default bounds (3 preemptions, 20k steps, 1M executions).
    pub fn new() -> Explorer {
        Explorer::default()
    }

    /// Caps context switches away from a runnable thread (CHESS bound).
    pub fn max_preemptions(mut self, n: usize) -> Explorer {
        self.cfg.max_preemptions = n;
        self
    }

    /// Caps schedule points per execution (runaway-spin guard).
    pub fn max_steps(mut self, n: u64) -> Explorer {
        self.cfg.max_steps = n;
        self
    }

    /// Caps total executions; hitting the cap yields `complete = false`.
    pub fn max_executions(mut self, n: u64) -> Explorer {
        self.cfg.max_executions = n;
        self
    }

    /// Explores every schedule of `f` within the bounds.
    pub fn check(&self, f: impl Fn() + Sync) -> Outcome {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut schedule: Vec<Choice> = Vec::new();
        let mut executions = 0u64;
        loop {
            executions += 1;
            let (sched_back, violation) = run_one(&self.cfg, schedule, &f);
            schedule = sched_back;
            if let Some(cex) = violation {
                return Outcome {
                    executions,
                    complete: false,
                    counterexample: Some(cex),
                };
            }
            if !advance(&mut schedule) {
                return Outcome {
                    executions,
                    complete: true,
                    counterexample: None,
                };
            }
            if executions >= self.cfg.max_executions {
                return Outcome {
                    executions,
                    complete: false,
                    counterexample: None,
                };
            }
        }
    }

    /// Runs exactly one execution pinned to `schedule` (as printed in a
    /// [`Counterexample`]); decisions past the prefix take the default
    /// branch. Used to replay found bugs as regression tests.
    pub fn replay(&self, schedule: &str, f: impl Fn() + Sync) -> Outcome {
        let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (_sched, violation) = run_one(&self.cfg, parse_schedule(schedule), &f);
        Outcome {
            executions: 1,
            complete: false,
            counterexample: violation,
        }
    }
}

/// Explores `f` with default bounds and panics on any counterexample or
/// budget exhaustion — the one-liner for model tests expected to pass.
#[track_caller]
pub fn model(f: impl Fn() + Sync) {
    Explorer::new().check(f).assert_pass("model");
}

fn advance(schedule: &mut Vec<Choice>) -> bool {
    while let Some(last) = schedule.last_mut() {
        if let Some(next) = last.remaining.pop() {
            last.chosen = next;
            return true;
        }
        schedule.pop();
    }
    false
}

fn run_one(
    cfg: &Config,
    schedule: Vec<Choice>,
    f: &(dyn Fn() + Sync),
) -> (Vec<Choice>, Option<Counterexample>) {
    {
        let mut g = EXEC.lock().unwrap_or_else(|e| e.into_inner());
        assert!(g.is_none(), "nested explorations are not supported");
        *g = Some(ExecState::new(cfg.clone(), schedule));
    }
    std::thread::scope(|s| {
        s.spawn(|| thread_main(0, f));
        let mut g = EXEC.lock().unwrap_or_else(|e| e.into_inner());
        while !g.as_ref().unwrap().all_finished() {
            g = CV.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    });
    // Model-spawned OS threads have marked themselves finished; reap them.
    let handles: Vec<_> = {
        let mut h = HANDLES.lock().unwrap_or_else(|e| e.into_inner());
        h.drain(..).collect()
    };
    for h in handles {
        let _ = h.join();
    }
    let st = EXEC
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("execution state vanished");
    (st.schedule, st.violation)
}
