//! Model `Arc` whose reference count is itself a model atomic.
//!
//! `std::sync::Arc::drop` contains an acquire fence that orders the final
//! owner's destructor after every other owner's last access. Code that
//! (accidentally) leans on that fence — the original `Channel::drop` drain
//! did — looks correct under the real `Arc` but is broken as a protocol.
//! Modeling the count explicitly reproduces exactly the fence `Arc`
//! guarantees and nothing more, so such hidden dependencies either hold in
//! the model too (the fence is real) or the protocol must carry its own
//! ordering.

use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::atomic::Ordering;

use crate::atomic::{fence, AtomicUsize};

struct Inner<T> {
    count: AtomicUsize,
    value: T,
}

/// Model counterpart of `std::sync::Arc` (strong counts only; the facaded
/// protocols use no weak references).
pub struct Arc<T> {
    ptr: NonNull<Inner<T>>,
}

// SAFETY: same bounds as std's Arc; the count is a model atomic and all
// model code is serialized by the explorer.
unsafe impl<T: Send + Sync> Send for Arc<T> {}
unsafe impl<T: Send + Sync> Sync for Arc<T> {}

impl<T> Arc<T> {
    pub fn new(value: T) -> Arc<T> {
        let inner = Box::new(Inner {
            count: AtomicUsize::new(1),
            value,
        });
        Arc {
            ptr: NonNull::from(Box::leak(inner)),
        }
    }
}

impl<T> Clone for Arc<T> {
    fn clone(&self) -> Arc<T> {
        // Relaxed suffices exactly as in std: the clone happens-before any
        // use of the new handle by ordinary program order / transfer.
        unsafe { self.ptr.as_ref() }.count.fetch_add(1, Ordering::Relaxed);
        Arc { ptr: self.ptr }
    }
}

impl<T> Deref for Arc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &unsafe { self.ptr.as_ref() }.value
    }
}

impl<T> Drop for Arc<T> {
    fn drop(&mut self) {
        if unsafe { self.ptr.as_ref() }.count.fetch_sub(1, Ordering::Release) == 1 {
            // The fence std::Arc provides: the final drop happens-after
            // every other owner's release-decrement.
            fence(Ordering::Acquire);
            drop(unsafe { Box::from_raw(self.ptr.as_ptr()) });
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}
