//! # parsim-model-check — vendored interleaving explorer
//!
//! A registry-free, loom-style model checker for parsim's lock-free
//! inventory (SPSC segmented queues, the n×n grid, the sense-reversing
//! barrier, the chaotic node's `valid_until`/GC-cursor protocol). Like the
//! workspace's `rand`/`proptest`/`criterion` shims, it exists so builds
//! never touch a registry: the whole checker is this one crate.
//!
//! ## What it does
//!
//! [`Explorer::check`] runs a closure over and over, each time forcing a
//! different interleaving of its model threads, until the bounded tree of
//! schedules is exhausted. Two kinds of decision are explored:
//!
//! - **Thread choices** — at every schedule point (each atomic op, yield,
//!   spawn, join) any runnable thread may run next, bounded by a CHESS
//!   preemption budget.
//! - **Read choices** — an atomic load may observe *any* store the C11
//!   visibility rules allow (per-location modification order, coherence
//!   floors, SeqCst front), not just the newest; release/acquire edges and
//!   fences join vector clocks exactly as the memory model prescribes,
//!   including release sequences continued by RMWs.
//!
//! Violations — panics/asserts, data races on [`cell::UnsafeCell`] data,
//! join deadlocks, runaway spins — are reported as a [`Counterexample`]
//! carrying a replayable schedule string; [`Explorer::replay`] pins that
//! schedule so a found bug can be committed as a deterministic regression
//! test.
//!
//! ## What it deliberately is not
//!
//! - Not exhaustive beyond its bounds: the preemption/step/execution
//!   budgets make exploration finite; [`Outcome::complete`] says whether
//!   the tree was fully covered within them.
//! - Not a UB detector: a counterexample execution may tear down protocol
//!   state mid-flight; miri on the *real* atomics covers UB (see the CI
//!   model-check job).
//! - `compare_exchange_weak` never fails spuriously (spurious failures
//!   only re-run CAS loops without adding observable outcomes).
//!
//! ## Using it
//!
//! Protocol crates compile against a `cfg(parsim_model)` facade that
//! aliases `std::sync::atomic` et al. to the types here (see
//! `parsim_queue::sync`), so the *real* implementation runs under the
//! model unchanged:
//!
//! ```
//! use parsim_model_check::{model, sync::atomic::{AtomicU64, Ordering}, sync::Arc, thread};
//!
//! model(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let data = Arc::new(AtomicU64::new(0));
//!     let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
//!     let t = thread::spawn(move || {
//!         d2.store(42, Ordering::Relaxed);
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join();
//! });
//! ```

pub mod atomic;
pub mod cell;
mod arc;
mod clock;
mod exec;
pub mod thread;

pub use exec::{model, CexKind, Config, Counterexample, Explorer, Outcome, ThreadId};

/// Mirror of the `std::sync` paths the facade re-exports.
pub mod sync {
    pub use crate::arc::Arc;

    /// Mirror of `std::sync::atomic` (model types + the real `Ordering`).
    pub mod atomic {
        pub use crate::atomic::{
            fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize,
        };
        pub use std::sync::atomic::Ordering;
    }
}

/// Mirror of `std::hint` for spin loops.
pub mod hint {
    /// Spin-loop hint: parks until some store lands, like
    /// [`thread::yield_now`](crate::thread::yield_now).
    pub fn spin_loop() {
        crate::exec::park_until_write();
    }
}
