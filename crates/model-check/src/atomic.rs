//! Model atomic types mirroring `std::sync::atomic`.
//!
//! Every operation is a schedule point, and every load branches over the
//! set of stores the C11 visibility rules allow the reading thread to
//! observe (per-location modification order + happens-before coherence).
//! Read-modify-writes always operate on the newest store and continue the
//! release sequence of the store they replace.
//!
//! Locations register lazily on first access so constructors stay `const`
//! (matching `std`, which protocol code relies on for `const fn new`).
//! The lazy id cell is synchronized by the explorer itself: model code
//! only ever runs on the single active thread.
//!
//! `compare_exchange_weak` never fails spuriously in the model — spurious
//! failure only retries CAS loops, which adds schedules without adding
//! observable outcomes, so the model elides it.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;

use crate::exec;

const UNREGISTERED: usize = usize::MAX;

/// Lazily-registered location id; see module docs for why `Cell` is sound.
struct Loc {
    id: Cell<usize>,
}

// SAFETY: the explorer serializes all model code (exactly one model thread
// runs between schedule points), so the Cell is never accessed
// concurrently.
unsafe impl Send for Loc {}
unsafe impl Sync for Loc {}

impl Loc {
    const fn new() -> Loc {
        Loc {
            id: Cell::new(UNREGISTERED),
        }
    }

    fn get(&self, init: u64) -> usize {
        let id = self.id.get();
        if id != UNREGISTERED {
            return id;
        }
        let id = exec::register_loc(init);
        self.id.set(id);
        id
    }
}

macro_rules! int_atomic {
    ($name:ident, $ty:ty) => {
        /// Model counterpart of the std atomic of the same name.
        pub struct $name {
            init: $ty,
            loc: Loc,
        }

        impl $name {
            pub const fn new(v: $ty) -> $name {
                $name {
                    init: v,
                    loc: Loc::new(),
                }
            }

            fn loc(&self) -> usize {
                self.loc.get(self.init as u64)
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                exec::atomic_load(self.loc(), ord) as $ty
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                exec::atomic_store(self.loc(), v as u64, ord)
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                exec::atomic_rmw(self.loc(), ord, |_| v as u64) as $ty
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                exec::atomic_rmw(self.loc(), ord, |old| {
                    (old as $ty).wrapping_add(v) as u64
                }) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                exec::atomic_rmw(self.loc(), ord, |old| {
                    (old as $ty).wrapping_sub(v) as u64
                }) as $ty
            }

            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                exec::atomic_rmw(self.loc(), ord, |old| {
                    ((old as $ty) | v) as u64
                }) as $ty
            }

            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                exec::atomic_rmw(self.loc(), ord, |old| {
                    ((old as $ty) & v) as u64
                }) as $ty
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                exec::atomic_rmw(self.loc(), ord, |old| {
                    (old as $ty).max(v) as u64
                }) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                exec::atomic_cas(self.loc(), current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name)).finish()
            }
        }
    };
}

int_atomic!(AtomicU8, u8);
int_atomic!(AtomicU32, u32);
int_atomic!(AtomicU64, u64);
int_atomic!(AtomicUsize, usize);

/// Model counterpart of `std::sync::atomic::AtomicI64` (stored as bits).
pub struct AtomicI64 {
    init: i64,
    loc: Loc,
}

impl AtomicI64 {
    pub const fn new(v: i64) -> AtomicI64 {
        AtomicI64 {
            init: v,
            loc: Loc::new(),
        }
    }

    fn loc(&self) -> usize {
        self.loc.get(self.init as u64)
    }

    pub fn load(&self, ord: Ordering) -> i64 {
        exec::atomic_load(self.loc(), ord) as i64
    }

    pub fn store(&self, v: i64, ord: Ordering) {
        exec::atomic_store(self.loc(), v as u64, ord)
    }

    pub fn fetch_add(&self, v: i64, ord: Ordering) -> i64 {
        exec::atomic_rmw(self.loc(), ord, |old| (old as i64).wrapping_add(v) as u64) as i64
    }

    pub fn fetch_sub(&self, v: i64, ord: Ordering) -> i64 {
        exec::atomic_rmw(self.loc(), ord, |old| (old as i64).wrapping_sub(v) as u64) as i64
    }
}

/// Model counterpart of `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    init: bool,
    loc: Loc,
}

impl AtomicBool {
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            init: v,
            loc: Loc::new(),
        }
    }

    fn loc(&self) -> usize {
        self.loc.get(self.init as u64)
    }

    pub fn load(&self, ord: Ordering) -> bool {
        exec::atomic_load(self.loc(), ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        exec::atomic_store(self.loc(), v as u64, ord)
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        exec::atomic_rmw(self.loc(), ord, |_| v as u64) != 0
    }

    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        exec::atomic_rmw(self.loc(), ord, |old| (old != 0 || v) as u64) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        exec::atomic_cas(self.loc(), current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool").finish()
    }
}

/// Model counterpart of `std::sync::atomic::AtomicPtr<T>`.
///
/// Pointers travel through the store history as addresses; provenance is
/// preserved by the fact that model threads are ordinary OS threads in one
/// address space and the model is never run under strict-provenance
/// checkers (miri runs target the *real* atomics instead).
pub struct AtomicPtr<T> {
    init: Cell<*mut T>,
    loc: Loc,
    _marker: PhantomData<*mut T>,
}

// SAFETY: same serialization argument as `Loc`; the pointee is never
// dereferenced by the atomic itself.
unsafe impl<T> Send for AtomicPtr<T> {}
unsafe impl<T> Sync for AtomicPtr<T> {}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            init: Cell::new(p),
            loc: Loc::new(),
            _marker: PhantomData,
        }
    }

    fn loc(&self) -> usize {
        self.loc.get(self.init.get() as usize as u64)
    }

    pub fn load(&self, ord: Ordering) -> *mut T {
        exec::atomic_load(self.loc(), ord) as usize as *mut T
    }

    pub fn store(&self, p: *mut T, ord: Ordering) {
        exec::atomic_store(self.loc(), p as usize as u64, ord)
    }

    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        exec::atomic_rmw(self.loc(), ord, |_| p as usize as u64) as usize as *mut T
    }

    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        exec::atomic_cas(
            self.loc(),
            current as usize as u64,
            new as usize as u64,
            success,
            failure,
        )
        .map(|v| v as usize as *mut T)
        .map_err(|v| v as usize as *mut T)
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicPtr").finish()
    }
}

/// Model counterpart of `std::sync::atomic::fence`.
pub fn fence(ord: Ordering) {
    exec::atomic_fence(ord);
}
