//! Vector clocks: the happens-before partial order the explorer tracks.
//!
//! Each model thread carries a [`VClock`]; atomic release/acquire edges and
//! thread spawn/join edges join clocks. A write is *visible* to a reader
//! when the writer's clock at the write is `<=` the reader's clock — the
//! standard vector-clock encoding of happens-before.

/// A vector clock over model thread ids.
///
/// Indexed by [`ThreadId`](crate::exec::ThreadId); missing entries are 0.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub const fn new() -> VClock {
        VClock(Vec::new())
    }

    /// This clock's component for thread `t`.
    pub fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Advances thread `t`'s own component.
    pub fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// True when every component of `self` is `<=` the matching component
    /// of `other` — i.e. the event stamped `self` happens-before (or is)
    /// the event stamped `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(t, &v)| v <= other.get(t))
    }

    /// True when no component is set (nothing happened-before).
    #[cfg(test)]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_leq() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        b.tick(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert!(!j.leq(&a));
        assert!(VClock::new().leq(&a));
        assert!(VClock::new().is_zero());
        assert!(!j.is_zero());
    }
}
