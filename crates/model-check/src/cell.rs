//! Race-detecting `UnsafeCell` for non-atomic data shared between model
//! threads (queue slots, cached tail pointers).
//!
//! Accesses are *not* schedule points — races are detected purely through
//! vector clocks (a read must happen-after the last write; a write must
//! happen-after every prior access), so the detection is independent of
//! the particular interleaving the explorer happens to run. This keeps the
//! schedule tree small without losing any races.

use std::cell::Cell;

use crate::exec;

const UNREGISTERED: usize = usize::MAX;

/// Model counterpart of `std::cell::UnsafeCell`, loom-style: data access
/// goes through [`with`](UnsafeCell::with)/[`with_mut`](UnsafeCell::with_mut)
/// closures so every read and write is clock-checked.
pub struct UnsafeCell<T> {
    data: std::cell::UnsafeCell<T>,
    id: Cell<usize>,
}

// SAFETY: the explorer serializes all model code, and the clock checks
// abort the execution on the first access that is not ordered by
// happens-before — which is exactly the condition under which the
// underlying data could be accessed concurrently for real.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub const fn new(v: T) -> UnsafeCell<T> {
        UnsafeCell {
            data: std::cell::UnsafeCell::new(v),
            id: Cell::new(UNREGISTERED),
        }
    }

    fn id(&self) -> usize {
        let id = self.id.get();
        if id != UNREGISTERED {
            return id;
        }
        let id = exec::register_cell();
        self.id.set(id);
        id
    }

    /// Immutable access; records a read and aborts on a racing write.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        exec::cell_read(self.id(), std::any::type_name::<T>());
        f(self.data.get())
    }

    /// Mutable access; records a write and aborts on any racing access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        exec::cell_write(self.id(), std::any::type_name::<T>());
        f(self.data.get())
    }

    /// Exclusive access through `&mut self` needs no clock check.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> UnsafeCell<T> {
        UnsafeCell::new(T::default())
    }
}

impl<T> std::fmt::Debug for UnsafeCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("UnsafeCell").finish()
    }
}
