//! Sanity suite for the explorer itself: known-correct protocols must pass
//! exhaustively, textbook-broken ones must produce the right kind of
//! counterexample, and counterexample schedules must replay
//! deterministically.

use parsim_model_check::sync::atomic::{fence, AtomicU64, Ordering};
use parsim_model_check::sync::Arc;
use parsim_model_check::{cell::UnsafeCell, model, thread, CexKind, Explorer};

/// Release/acquire message passing is correct: exhaustive pass.
#[test]
fn message_passing_release_acquire_passes() {
    let outcome = Explorer::new().check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    outcome.assert_pass("message passing (release/acquire)");
    assert!(outcome.executions > 1, "should have explored several schedules");
}

/// The same protocol with a relaxed flag store lets the reader see the
/// flag before the data: the explorer must find the stale read.
#[test]
fn message_passing_relaxed_flag_fails() {
    let outcome = Explorer::new().check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed); // bug: no release edge
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    let cex = outcome
        .counterexample
        .as_ref()
        .expect("relaxed message passing must fail");
    assert_eq!(cex.kind, CexKind::Panic, "stale data read: {cex}");

    // The reported schedule must reproduce the violation deterministically.
    let replayed = Explorer::new().replay(&cex.schedule, || {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    let rcex = replayed
        .counterexample
        .expect("replayed schedule must reproduce the violation");
    assert_eq!(rcex.kind, CexKind::Panic);
}

/// Non-atomic data published without any edge is a data race, caught by
/// the vector clocks regardless of the interleaving actually run.
#[test]
fn unsynchronized_cell_is_a_data_race() {
    let outcome = Explorer::new().check(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 7 });
        });
        cell.with(|p| unsafe { *p });
        t.join();
    });
    let cex = outcome.counterexample.expect("unsynchronized cell must race");
    assert_eq!(cex.kind, CexKind::DataRace, "{cex}");
}

/// The same cell guarded by a release store / acquire load is race-free.
#[test]
fn flag_guarded_cell_passes() {
    model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 7 });
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            let v = cell.with(|p| unsafe { *p });
            assert_eq!(v, 7);
        }
        t.join();
    });
}

/// Store buffering: with SeqCst both threads cannot read the other's
/// pre-store value; with release/acquire they can. Classic litmus that
/// separates the orderings.
#[test]
fn store_buffering_seqcst_passes_acqrel_fails() {
    let run = |ord_store: Ordering, ord_load: Ordering| {
        Explorer::new().check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, ord_store);
                y2.load(ord_load)
            });
            y.store(1, ord_store);
            let r0 = x.load(ord_load);
            let r1 = t.join();
            assert!(r0 == 1 || r1 == 1, "both threads read 0: SC violated");
        })
    };
    run(Ordering::SeqCst, Ordering::SeqCst).assert_pass("store buffering under SeqCst");
    let weak = run(Ordering::Release, Ordering::Acquire);
    let cex = weak
        .counterexample
        .expect("store buffering must be observable under release/acquire");
    assert_eq!(cex.kind, CexKind::Panic, "{cex}");
}

/// An acquire *fence* upgrades an earlier relaxed load: the fenced version
/// passes exhaustively, the unfenced one reads stale data.
#[test]
fn acquire_fence_orders_relaxed_load() {
    let run = |with_fence: bool| {
        Explorer::new().check(move || {
            let flag = Arc::new(AtomicU64::new(0));
            let data = Arc::new(AtomicU64::new(0));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                if with_fence {
                    fence(Ordering::Acquire);
                }
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join();
        })
    };
    run(true).assert_pass("relaxed load + acquire fence");
    let cex = run(false)
        .counterexample
        .expect("relaxed load without fence must see stale data");
    assert_eq!(cex.kind, CexKind::Panic, "{cex}");
}

/// A relaxed RMW continues the release sequence of the store it replaces:
/// an acquiring reader of the RMW's result synchronizes with the original
/// release.
#[test]
fn rmw_continues_release_sequence() {
    model(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
            // Relaxed RMW in the same sequence; readers of `2` must still
            // synchronize with the release store of `1`.
            let _ = f2.compare_exchange(1, 2, Ordering::Relaxed, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 2 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
}

/// RMWs always act on the newest store: concurrent fetch_adds never lose
/// an increment even when fully relaxed.
#[test]
fn relaxed_fetch_add_never_loses_updates() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// A load/store "increment" (not an RMW) does lose updates — but only in
/// schedules with a preemption, so the bound controls whether the bug is
/// reachable. Guards the CHESS budget accounting.
#[test]
fn preemption_bound_gates_lost_update() {
    let run = |bound: usize| {
        Explorer::new().max_preemptions(bound).check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        })
    };
    run(0).assert_pass("no-preemption schedules cannot interleave the halves");
    let cex = run(2)
        .counterexample
        .expect("with preemptions the lost update must surface");
    assert_eq!(cex.kind, CexKind::Panic, "{cex}");
}

/// A spin on a flag nobody sets is reported, not hung: the park/step
/// machinery converts the unwakeable spin into a StepLimit violation.
#[test]
fn unwakeable_spin_is_reported() {
    let outcome = Explorer::new().max_steps(200).check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        while flag.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
    });
    let cex = outcome.counterexample.expect("spin must hit the step limit");
    assert_eq!(cex.kind, CexKind::StepLimit, "{cex}");
}

/// A realistic two-thread spin handoff terminates and passes: parking is
/// woken by the peer's store.
#[test]
fn spin_handoff_passes() {
    model(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
        t.join();
    });
}
