//! Committed counterexamples: the pre-fix shapes of protocols that were
//! hardened in the queue crate, kept as failing-schedule regression
//! tests.
//!
//! Each pair below replicates, with the model's own primitives, the exact
//! ordering shape a shipped protocol had before its fix, and the shape it
//! has after:
//!
//! - **Drop-drain** (`spsc::Channel::drop` / `ring::RingInner::drop`):
//!   the drains used `Relaxed` loads and leaned on `Arc::drop`'s internal
//!   acquire fence to order the drain after the producer's last publish.
//!   Stated as its own protocol — publish with release, drain with a
//!   relaxed read — the explorer finds a schedule where the drain
//!   observes the published flag yet races with the slot write. The fix
//!   upgrades the drain loads to `Acquire`.
//! - **Barrier arrival** (`barrier::SpinBarrier` before the epoch
//!   rewrite): the boolean sense-reversing shape derived each phase's
//!   sense from a pre-arrival `Relaxed` re-read of the shared sense flag.
//!   That read contributes no ordering; the whole protocol is carried by
//!   the `AcqRel` arrival RMW on `remaining`. Weaken that single RMW to
//!   `Relaxed` and the leader releases a phase without having acquired
//!   its peers' pre-barrier writes. The rewrite derives each waiter's
//!   phase from an `Acquire` load of a monotone epoch, so the value the
//!   waiter spins on is itself the synchronizing location.
//!
//! Every discovered schedule is pinned and replayed, so these stay
//! red-green: the broken shape must keep failing on its recorded
//! schedule, and the fixed shape must pass the same exhaustive
//! exploration.

use parsim_model_check::cell::UnsafeCell;
use parsim_model_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use parsim_model_check::sync::Arc;
use parsim_model_check::{thread, CexKind, Explorer};

// ---------------------------------------------------------------------------
// Drop-drain: publish with release, drain with a configurable load.
// ---------------------------------------------------------------------------

/// The end-of-life drain of a single-slot channel: the producer writes
/// the slot and publishes it; the dropping endpoint drains whatever the
/// publication counter admits. `load` is the ordering the drain uses —
/// the pre-fix code used `Relaxed`.
fn drain_shape(load: Ordering) {
    let slot = Arc::new(UnsafeCell::new(0u64));
    let published = Arc::new(AtomicU64::new(0));
    let (s2, p2) = (Arc::clone(&slot), Arc::clone(&published));
    let producer = thread::spawn(move || {
        s2.with_mut(|p| unsafe { *p = 42 });
        p2.store(1, Ordering::Release);
    });
    // Drop-while-nonempty: no join, no Arc teardown fence — the drain's
    // own load is the only candidate ordering.
    if published.load(load) == 1 {
        let v = slot.with(|p| unsafe { *p });
        assert_eq!(v, 42, "drained a slot the publish did not cover");
    }
    producer.join();
}

/// Schedule on which the pre-fix drain was first caught racing. Pinned so
/// the regression reproduces deterministically, independent of search
/// order.
const DRAIN_RELAXED_SCHEDULE: &str = "t0 t0 t0 t0 t1 t1 t1 t0 r1";

#[test]
fn prefix_drop_drain_relaxed_races() {
    let outcome = Explorer::new().check(|| drain_shape(Ordering::Relaxed));
    let cex = outcome
        .counterexample
        .as_ref()
        .expect("relaxed drop-drain must race with the slot write");
    assert_eq!(cex.kind, CexKind::DataRace, "expected a slot race: {cex}");

    let replayed = Explorer::new().replay(DRAIN_RELAXED_SCHEDULE, || {
        drain_shape(Ordering::Relaxed)
    });
    let rcex = replayed
        .counterexample
        .expect("pinned schedule must reproduce the drain race");
    assert_eq!(rcex.kind, CexKind::DataRace);
}

#[test]
fn fixed_drop_drain_acquire_passes() {
    Explorer::new()
        .check(|| drain_shape(Ordering::Acquire))
        .assert_pass("acquire drop-drain");
}

// ---------------------------------------------------------------------------
// Barrier: the boolean sense-reversing shape, arrival RMW configurable.
// ---------------------------------------------------------------------------

/// The barrier as shipped before the epoch rewrite: per-phase sense
/// derived by negating a `Relaxed` re-read of the shared sense flag.
struct SenseBarrier {
    remaining: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    fn new() -> SenseBarrier {
        SenseBarrier {
            remaining: AtomicUsize::new(2),
            sense: AtomicBool::new(false),
        }
    }

    fn wait(&self, arrival: Ordering) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        if self.remaining.fetch_sub(1, arrival) == 1 {
            self.remaining.store(2, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                thread::yield_now();
            }
            false
        }
    }
}

/// Two parties, `phases` rounds; every party increments `work` before
/// each wait and must observe both increments after it. With a `Relaxed`
/// arrival the *leader* is the vulnerable party: it observes the peer's
/// arrival through the `remaining` counter yet has acquired nothing, so
/// the leak already manifests in phase 0 (one phase keeps the broken
/// shape's exploration tractable; the fixed shape runs two to cover the
/// sense reversal).
fn sense_barrier_shape(arrival: Ordering, phases: usize) {
    let barrier = Arc::new(SenseBarrier::new());
    let work = Arc::new(AtomicUsize::new(0));
    let (b2, w2) = (Arc::clone(&barrier), Arc::clone(&work));
    let body = move |b: &SenseBarrier, w: &AtomicUsize| {
        for phase in 0..phases {
            w.fetch_add(1, Ordering::Relaxed);
            b.wait(arrival);
            let seen = w.load(Ordering::Relaxed);
            assert!(
                seen >= 2 * (phase + 1),
                "phase {phase} released with only {seen} increments visible"
            );
        }
    };
    let body2 = body;
    let t = thread::spawn(move || body2(&b2, &w2));
    body(&barrier, &work);
    t.join();
}

/// Schedule on which the relaxed-arrival barrier was first caught
/// releasing a phase without the peer's pre-barrier write.
const BARRIER_RELAXED_SCHEDULE: &str = "t0 t0 t0 t1 t1 t0 t1 t1 t1 t1 t0 t1 t1 t1 r0";

#[test]
fn prefix_barrier_relaxed_arrival_leaks_phase() {
    let outcome = Explorer::new()
        .max_preemptions(2)
        .check(|| sense_barrier_shape(Ordering::Relaxed, 1));
    let cex = outcome
        .counterexample
        .as_ref()
        .expect("relaxed arrival must leak a pre-barrier write");
    assert_eq!(cex.kind, CexKind::Panic, "expected stale work count: {cex}");

    let replayed = Explorer::new().replay(BARRIER_RELAXED_SCHEDULE, || {
        sense_barrier_shape(Ordering::Relaxed, 1)
    });
    let rcex = replayed
        .counterexample
        .expect("pinned schedule must reproduce the leak");
    assert_eq!(rcex.kind, CexKind::Panic);
    assert!(
        rcex.message.contains("increments visible"),
        "pinned schedule reproduced the wrong failure: {rcex}"
    );
}

/// With the `AcqRel` arrival restored, the boolean-sense shape passes —
/// which is precisely the point: its correctness lived entirely in the
/// `remaining` RMW, not in the sense protocol the code was written
/// around. The shipped barrier now makes the synchronizing location
/// explicit (the epoch the waiter spins on); `crates/queue/tests/model.rs`
/// checks that implementation itself.
#[test]
fn fixed_barrier_acqrel_arrival_passes() {
    Explorer::new()
        .check(|| sense_barrier_shape(Ordering::AcqRel, 2))
        .assert_pass("acqrel sense barrier");
}

// ---------------------------------------------------------------------------
// Epoch pin: the arena's reclamation announcement, pin-store configurable.
// ---------------------------------------------------------------------------

const RECLAIM_TOMBSTONE: u64 = u64::MAX;
const EPOCH_ACTIVE: u64 = 1;
const EPOCH_STEP: u64 = 2;
const EPOCH_GRACE: u64 = 2 * EPOCH_STEP;

/// The arena's epoch-based reclamation (`parsim_queue::arena`), with the
/// reader's pin synchronization configurable. A reader announces its
/// epoch in `slot`, re-checks `global`, and only then dereferences the
/// published object; the owner unlinks the object, stamps it with the
/// current epoch, advances the epoch past the grace period ([`EPOCH_GRACE`])
/// with `SeqCst` slot scans, and then reuses the memory (modeled as a
/// tombstone write the reader's payload read would race with).
///
/// Pin is a store (`slot`) followed by a load of another location
/// (`global`) — the Dekker shape — and the advance scan is the mirror
/// image. With `SeqCst` pins the scan can never miss a pinned reader;
/// with `Relaxed` pins the store can be invisible to the scan while the
/// reader still sees the pre-advance epoch, so the owner advances twice
/// past a live reader and reclaims under it.
fn epoch_pin_shape(pin_sync: Ordering) {
    let global = Arc::new(AtomicU64::new(0));
    let slot = Arc::new(AtomicU64::new(0));
    let published = Arc::new(AtomicU64::new(1));
    let payload = Arc::new(UnsafeCell::new(7u64));

    let (g2, s2, p2, d2) = (
        Arc::clone(&global),
        Arc::clone(&slot),
        Arc::clone(&published),
        Arc::clone(&payload),
    );
    let reader = thread::spawn(move || {
        // Pin: announce, then re-check the global epoch.
        let mut g = g2.load(Ordering::Relaxed);
        loop {
            s2.store(g | EPOCH_ACTIVE, pin_sync);
            let now = g2.load(pin_sync);
            if now == g {
                break;
            }
            g = now;
        }
        if p2.load(Ordering::Acquire) == 1 {
            let v = d2.with(|p| unsafe { *p });
            assert_ne!(v, RECLAIM_TOMBSTONE, "read reclaimed memory");
        }
        // Unpin.
        s2.store(0, Ordering::Release);
    });

    // Owner: unlink, stamp, advance out the grace period, reuse.
    published.store(0, Ordering::Release);
    let stamp = global.load(Ordering::SeqCst);
    while global.load(Ordering::SeqCst) < stamp + EPOCH_GRACE {
        let g = global.load(Ordering::SeqCst);
        let s = slot.load(Ordering::SeqCst);
        if s & EPOCH_ACTIVE != 0 && s & !EPOCH_ACTIVE != g {
            thread::yield_now();
            continue;
        }
        let _ = global.compare_exchange(g, g + EPOCH_STEP, Ordering::SeqCst, Ordering::Relaxed);
    }
    payload.with_mut(|p| unsafe { *p = RECLAIM_TOMBSTONE });
    reader.join();
}

/// Schedule on which the relaxed pin was first caught being overtaken by
/// a double epoch advance (discovered by the explorer, pinned here).
const EPOCH_RELAXED_SCHEDULE: &str =
    "t0 t0 t0 t0 t0 t1 t1 t1 t1 t1 t1 t1 t1 t1 t1 t1 t0 t0 r2 t0 t0 t0 r0";

#[test]
fn prefix_epoch_relaxed_pin_reclaims_under_reader() {
    let outcome = Explorer::new()
        .max_preemptions(2)
        .check(|| epoch_pin_shape(Ordering::Relaxed));
    let cex = outcome
        .counterexample
        .as_ref()
        .expect("relaxed pin must admit a premature reclaim");
    assert_eq!(
        cex.kind,
        CexKind::DataRace,
        "expected a payload race: {cex}"
    );

    let replayed = Explorer::new().replay(EPOCH_RELAXED_SCHEDULE, || {
        epoch_pin_shape(Ordering::Relaxed)
    });
    let rcex = replayed
        .counterexample
        .expect("pinned schedule must reproduce the premature reclaim");
    assert_eq!(rcex.kind, CexKind::DataRace);
}

/// With `SeqCst` pins restored (the shipped `EpochDomain::pin`), the same
/// exploration passes: the advance scan is totally ordered against every
/// pin store, so the epoch can never move two steps past a live reader.
#[test]
fn fixed_epoch_seqcst_pin_passes() {
    Explorer::new()
        .max_preemptions(2)
        .check(|| epoch_pin_shape(Ordering::SeqCst))
        .assert_pass("seqcst epoch pin");
}
