//! Model checking of the real queue protocols under the vendored
//! interleaving explorer.
//!
//! Compiled only under `RUSTFLAGS="--cfg parsim_model"` (the CI
//! model-check job); the implementations under test are the exact
//! shipping ones — the facade in `parsim_queue::sync` swaps `std`'s
//! primitives for `parsim_model_check`'s, nothing else changes.
//!
//! Every test here passes *exhaustively* within its bounds: the explorer
//! reports completeness, and `assert_pass` fails on either a
//! counterexample or an exhausted execution budget. The bugs these
//! protocols used to contain (or would contain with one ordering
//! weakened) live in `parsim-model-check/tests/prefix_counterexamples.rs`
//! as pinned failing schedules.
#![cfg(parsim_model)]

use parsim_model_check::{Explorer, model, thread};
use parsim_queue::sync::atomic::{AtomicUsize, Ordering};
use parsim_queue::sync::Arc;
use parsim_queue::sync::UnsafeCell;
use parsim_queue::{channel, ring, ActivationState, IdBatch, SpinBarrier, StepHandoff, BATCH_CAPACITY};

/// Under the model the SPSC segment size is 2, so three items cross a
/// segment boundary: the producer links a successor and the consumer
/// retires the exhausted segment mid-stream. No interleaving may tear,
/// drop, reorder, or duplicate an item.
#[test]
fn spsc_fifo_across_segment_retire() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let (mut tx, mut rx) = channel::<u64>();
        let t = thread::spawn(move || {
            for i in 0..3u64 {
                tx.send(i);
            }
        });
        let mut next = 0u64;
        while next < 3 {
            match rx.recv() {
                Some(v) => {
                    assert_eq!(v, next, "fifo violated");
                    next += 1;
                }
                None => thread::yield_now(),
            }
        }
        assert_eq!(rx.recv(), None);
        t.join();
    });
    outcome.assert_pass("spsc push/pop/segment-retire");
}

/// Token whose drop is observable through a shared counter, so the
/// end-of-life drain can be audited for exactly-once drops.
struct Token {
    hits: Arc<AtomicUsize>,
}

impl Drop for Token {
    fn drop(&mut self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}

/// Dropping a non-empty channel (three items spanning two segments, zero
/// or one consumed) must drop every unconsumed item exactly once, on
/// whichever thread releases the channel last — the drain's own `Acquire`
/// loads must order it after the producer's final publishes, with no help
/// from join edges.
#[test]
fn spsc_drop_while_nonempty_drains_exactly_once() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let hits = Arc::new(AtomicUsize::new(0));
        let (mut tx, mut rx) = channel::<Token>();
        let h = Arc::clone(&hits);
        let t = thread::spawn(move || {
            for _ in 0..3 {
                tx.send(Token {
                    hits: Arc::clone(&h),
                });
            }
            // tx drops here: the producer may or may not be the last
            // owner depending on the schedule.
        });
        // Consume at most one item, then abandon the queue while it may
        // still be non-empty (and possibly still being filled).
        let _ = rx.recv();
        drop(rx);
        t.join();
        assert_eq!(hits.load(Ordering::Relaxed), 3, "every token dropped exactly once");
    });
    outcome.assert_pass("spsc drop-while-nonempty");
}

/// An `IdBatch` travels as one 64-byte slot: all `BATCH_CAPACITY` ids must
/// be visible to the consumer the moment the slot is (the slot's release
/// publish covers the whole copy — a torn batch is a data race on the
/// slot cell).
#[test]
fn idbatch_slot_publishes_all_ids() {
    let outcome = Explorer::new().check(|| {
        let (mut tx, mut rx) = channel::<IdBatch>();
        let t = thread::spawn(move || {
            let mut b = IdBatch::new();
            for i in 0..BATCH_CAPACITY as u32 {
                assert!(b.push(i));
            }
            tx.send(b);
        });
        loop {
            if let Some(b) = rx.recv() {
                let expected: Vec<u32> = (0..BATCH_CAPACITY as u32).collect();
                assert_eq!(b.as_slice(), expected.as_slice(), "torn batch");
                break;
            }
            thread::yield_now();
        }
        t.join();
    });
    outcome.assert_pass("idbatch full-slot publication");
}

/// Two parties, two back-to-back phases: the barrier must elect exactly
/// one leader per phase, never deadlock (an unreleasable phase would
/// surface as a StepLimit/Deadlock counterexample), never double-release
/// (a double release would let a party run ahead and observe fewer than
/// `2 * (phase + 1)` pre-barrier increments), and must publish every
/// party's pre-barrier writes to every post-barrier reader.
#[test]
fn barrier_two_phases_one_leader_no_deadlock() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let barrier = Arc::new(SpinBarrier::new(2));
        let leaders = Arc::new(AtomicUsize::new(0));
        let work = Arc::new(AtomicUsize::new(0));
        let (b2, l2, w2) = (Arc::clone(&barrier), Arc::clone(&leaders), Arc::clone(&work));
        let body = move |barrier: &SpinBarrier, leaders: &AtomicUsize, work: &AtomicUsize| {
            for phase in 0..2usize {
                work.fetch_add(1, Ordering::Relaxed);
                if barrier.wait() {
                    leaders.fetch_add(1, Ordering::Relaxed);
                }
                let seen = work.load(Ordering::Relaxed);
                assert!(
                    seen >= 2 * (phase + 1),
                    "phase {phase} released early: saw {seen} increments"
                );
            }
        };
        let body2 = body;
        let t = thread::spawn(move || body2(&b2, &l2, &w2));
        body(&barrier, &leaders, &work);
        t.join();
        assert_eq!(
            leaders.load(Ordering::Relaxed),
            2,
            "exactly one leader per phase"
        );
    });
    outcome.assert_pass("barrier two-phase leader election");
}

/// Poisoning must release a waiter stuck in a phase that can never
/// complete — in every interleaving, including poison-before-arrival.
#[test]
fn barrier_poison_releases_model() {
    let outcome = Explorer::new().check(|| {
        let barrier = Arc::new(SpinBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let t = thread::spawn(move || b2.wait());
        barrier.poison();
        assert!(!t.join(), "poisoned wait must not elect a leader");
        assert!(!barrier.wait());
    });
    outcome.assert_pass("barrier poison release");
}

/// The activation machine's absorbed wakeup: an activator that loses the
/// `try_activate` race (its CAS absorbs into `Queued`/`RunningDirty`)
/// must still have its prior writes visible to whichever run the machine
/// guarantees follows. The deliberate same-value CAS in `try_activate` is
/// what makes this hold — remove it and this exploration finds a schedule
/// where the element runs with a stale view and goes idle with `payload`
/// unseen (the executor loop below then spins into a StepLimit
/// counterexample).
#[test]
fn activation_absorbed_wakeup_not_lost() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let st = Arc::new(ActivationState::new());
        let payload = Arc::new(AtomicUsize::new(0));
        let queued = Arc::new(AtomicUsize::new(0));

        // Seed: the element is already queued by the main thread.
        assert!(st.try_activate());

        let (s2, p2, q2) = (Arc::clone(&st), Arc::clone(&payload), Arc::clone(&queued));
        let t = thread::spawn(move || {
            // Publish work, then activate. Relaxed on purpose: the
            // activation machine itself must carry the edge.
            p2.store(1, Ordering::Relaxed);
            if s2.try_activate() {
                q2.store(1, Ordering::Release);
            }
        });

        // Executor: drains the pseudo-queue until the payload has been
        // observed by a run. If visibility were lost this loop would spin
        // forever (caught as a violation).
        let mut pending = 1usize;
        let mut seen = 0usize;
        while seen == 0 {
            if pending > 0 {
                pending -= 1;
                st.begin_run();
                seen = payload.load(Ordering::Relaxed);
                if st.finish_run() {
                    pending += 1;
                }
            } else if queued.swap(0, Ordering::Acquire) == 1 {
                pending += 1;
            } else {
                thread::yield_now();
            }
        }
        t.join();
    });
    outcome.assert_pass("activation absorbed-wakeup visibility");
}

/// The bounded ring under contention at its smallest capacity: blocking
/// send/recv loops across the full/empty boundaries, FIFO preserved.
#[test]
fn ring_cross_thread_fifo_at_capacity_one() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let (tx, rx) = ring::<u64>(1);
        let t = thread::spawn(move || {
            for i in 0..2u64 {
                let mut v = i;
                while let Err(back) = tx.try_send(v) {
                    v = back;
                    thread::yield_now();
                }
            }
        });
        let mut next = 0u64;
        while next < 2 {
            match rx.try_recv() {
                Some(v) => {
                    assert_eq!(v, next);
                    next += 1;
                }
                None => thread::yield_now(),
            }
        }
        t.join();
    });
    outcome.assert_pass("ring fifo at capacity one");
}

/// Dropping a ring that still holds an item: the `Acquire` drain must
/// drop it exactly once regardless of which endpoint is released last.
#[test]
fn ring_drop_while_nonempty_drains() {
    let outcome = Explorer::new().check(|| {
        let hits = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = ring::<Token>(2);
        let h = Arc::clone(&hits);
        let t = thread::spawn(move || {
            let _ = tx.try_send(Token {
                hits: Arc::clone(&h),
            });
            let _ = tx.try_send(Token {
                hits: Arc::clone(&h),
            });
        });
        drop(rx); // abandon with 0..=2 items inside, producer maybe live
        t.join();
        assert_eq!(hits.load(Ordering::Relaxed), 2, "both tokens dropped exactly once");
    });
    outcome.assert_pass("ring drop-while-nonempty");
}

/// With the `chaos` feature on, the seeded yield bursts inside
/// `send`/`recv` are real schedule points: the exploration exercises the
/// exact perturbation windows `cargo test --features chaos` does, and the
/// protocol still passes exhaustively.
#[cfg(feature = "chaos")]
#[test]
fn chaos_yields_are_schedule_points() {
    model(|| {
        let (mut tx, mut rx) = channel::<u64>();
        let t = thread::spawn(move || {
            tx.send(1);
            tx.send(2);
        });
        let mut next = 1u64;
        while next <= 2 {
            match rx.recv() {
                Some(v) => {
                    assert_eq!(v, next);
                    next += 1;
                }
                None => thread::yield_now(),
            }
        }
        t.join();
    });
}

/// A node slot shared between a producing and a consuming worker; plain
/// (non-atomic) data, exactly like the wide value arena in the compiled
/// batch kernel. Safe to share only because the handoff protocol orders
/// every write against every read — the model's clock-checked cell
/// reports a data race the instant any required edge is missing.
struct Slot(UnsafeCell<u64>);

// SAFETY: all accesses are funneled through the StepHandoff protocol
// under test; the model checker verifies that claim on every schedule.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

/// The full two-worker BSP step protocol over a shared slot, two steps:
/// worker 0 (producer) overwrites the slot in its apply phase, worker 1
/// (consumer) reads it in its eval phase. Three hazards are all in play
/// and must be closed by the handoff alone:
///
/// - RAW: the consumer's step-`t` read must see the producer's step-`t`
///   write (`wait_apply` edge),
/// - WAR: the producer's step-`t+1` overwrite must not race the
///   consumer's step-`t` read (`wait_eval` edge),
/// - plain-data race: the slot is a non-atomic cell, so *any* unordered
///   access pair is an immediate counterexample.
#[test]
fn handoff_bsp_step_protocol_no_races() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        const STEPS: u64 = 2;
        let h = Arc::new(StepHandoff::new(2));
        let slot = Arc::new(Slot(UnsafeCell::new(0)));
        let (h2, s2) = (Arc::clone(&h), Arc::clone(&slot));
        // Worker 0: producer.
        let t = thread::spawn(move || {
            for t in 0..STEPS {
                if t > 0 && !h2.wait_eval(1, t - 1) {
                    return;
                }
                s2.0.with_mut(|p| unsafe { *p = t + 1 });
                h2.publish_apply(0, t);
                // Reads nothing; its eval phase is empty.
                h2.publish_eval(0, t);
            }
        });
        // Worker 1: consumer (owns no slots, so its apply is empty).
        for t in 0..STEPS {
            h.publish_apply(1, t);
            if !h.wait_apply(0, t) {
                return;
            }
            let v = slot.0.with(|p| unsafe { *p });
            assert_eq!(v, t + 1, "step {t}: stale or torn slot value");
            h.publish_eval(1, t);
        }
        t.join();
    });
    outcome.assert_pass("handoff BSP step protocol");
}

/// The dirty-mask contract under neighbor sync: activity marks are
/// `Relaxed` stores made during a producer's apply phase, and consumers
/// `take` them with `Relaxed` loads during eval. That is only sound if
/// the `publish_apply`/`wait_apply` Release/Acquire pair carries the
/// marks — this exploration deletes every other ordering source on
/// purpose.
#[test]
fn handoff_apply_edge_carries_relaxed_marks() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let h = Arc::new(StepHandoff::new(2));
        let mark = Arc::new(AtomicUsize::new(0));
        let (h2, m2) = (Arc::clone(&h), Arc::clone(&mark));
        let t = thread::spawn(move || {
            // Relaxed on purpose: the handoff must carry the edge.
            m2.store(1, Ordering::Relaxed);
            h2.publish_apply(0, 0);
        });
        if h.wait_apply(0, 0) {
            assert_eq!(
                mark.load(Ordering::Relaxed),
                1,
                "dirty mark lost across the apply handoff"
            );
        }
        t.join();
    });
    outcome.assert_pass("handoff carries relaxed dirty marks");
}

/// Poisoning must release a waiter stuck on a phase that will never be
/// published — in every interleaving, including poison-before-wait.
#[test]
fn handoff_poison_releases_model() {
    let outcome = Explorer::new().check(|| {
        let h = Arc::new(StepHandoff::new(2));
        let h2 = Arc::clone(&h);
        // Worker 1 never publishes anything; only poison can end this.
        let t = thread::spawn(move || h2.wait_apply(1, 3));
        h.poison();
        assert!(!t.join(), "poisoned wait must report failure");
        assert!(!h.wait_eval(0, 0));
    });
    outcome.assert_pass("handoff poison release");
}

// `model` is referenced by the chaos-gated test only; keep the import
// warning-free in default-feature builds.
#[cfg(not(feature = "chaos"))]
#[allow(unused_imports)]
use model as _;

// ---- arena reclamation protocol -------------------------------------------

use parsim_queue::arena::{EpochDomain, Retired, ReturnStack};
use parsim_queue::sync::atomic::AtomicPtr;

/// Two producers race `ReturnStack::push` CASes against each other and
/// against the owner's drain swap. Every node must come back exactly
/// once, with its `next` link visible to the drain (the push's Release
/// CAS / drain's Acquire swap pairing).
#[test]
fn arena_return_stack_mpsc_drains_exactly_once() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let stack = Arc::new(ReturnStack::new());
        let a = Box::into_raw(Box::new(Retired::new())) as usize;
        let b = Box::into_raw(Box::new(Retired::new())) as usize;
        let s1 = Arc::clone(&stack);
        let t1 = thread::spawn(move || {
            // SAFETY: node `a` is valid and pushed exactly once.
            unsafe { s1.push(a as *mut Retired) };
        });
        let s2 = Arc::clone(&stack);
        let t2 = thread::spawn(move || {
            // SAFETY: node `b` is valid and pushed exactly once.
            unsafe { s2.push(b as *mut Retired) };
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            // SAFETY: this thread is the stack's unique drainer.
            unsafe { stack.drain(|p| got.push(p as usize)) };
            thread::yield_now();
        }
        t1.join();
        t2.join();
        got.sort_unstable();
        let mut want = vec![a, b];
        want.sort_unstable();
        assert_eq!(got, want, "push lost or duplicated");
        // SAFETY: drained exactly once, so ownership is back here.
        unsafe {
            drop(Box::from_raw(a as *mut Retired));
            drop(Box::from_raw(b as *mut Retired));
        }
    });
    outcome.assert_pass("arena return-stack mpsc drain");
}

const RECLAIM_TOMBSTONE: u64 = u64::MAX;

struct EpochObj {
    val: UnsafeCell<u64>,
}

/// The full publish → retire → reclaim lifecycle against a concurrent
/// pinned reader: the owner unlinks a shared object, stamps it with the
/// current epoch, advances the epoch until the grace period clears, and
/// only then tombstones the payload (standing in for reuse). A reader
/// that pinned *before* the unlink may still dereference the object; the
/// two-grace-period rule must keep the tombstone write ordered after the
/// reader's unpin, or the explorer reports the race on the payload cell.
/// Weakening the pin store to `Relaxed` breaks exactly this — the pinned
/// red schedule in `prefix_counterexamples.rs`.
#[test]
fn arena_epoch_reclaim_never_races_pinned_reader() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let epochs = Arc::new(EpochDomain::new(2));
        let obj = Box::into_raw(Box::new(EpochObj {
            val: UnsafeCell::new(7),
        }));
        let slot = Arc::new(AtomicPtr::new(obj));
        let e1 = Arc::clone(&epochs);
        let s1 = Arc::clone(&slot);
        let reader = thread::spawn(move || {
            e1.pin(1);
            let p = s1.load(Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: pinned before the load, so the grace period
                // covers this dereference.
                let v = unsafe { (*p).val.with(|v| *v) };
                assert_ne!(v, RECLAIM_TOMBSTONE, "read reclaimed memory");
            }
            e1.unpin(1);
        });
        // Owner: unlink, retire at the current epoch, wait out the grace
        // period, then "reuse" the payload.
        let old = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
        let retire_epoch = epochs.epoch();
        while !epochs.can_reclaim(retire_epoch) {
            if !epochs.try_advance() {
                thread::yield_now();
            }
        }
        // SAFETY: grace period cleared — no pinned reader can still hold
        // `old` (this is the claim under test).
        unsafe { (*old).val.with_mut(|v| *v = RECLAIM_TOMBSTONE) };
        reader.join();
        // SAFETY: reclaimed exactly once.
        unsafe { drop(Box::from_raw(old)) };
    });
    outcome.assert_pass("arena epoch publish/retire/reclaim");
}

/// A lagging pin blocks `try_advance` until unpin: the epoch can never
/// move two steps past a pinned reader, which is the invariant the
/// reclaim test above leans on.
#[test]
fn arena_epoch_advance_blocked_by_lagging_pin() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let epochs = Arc::new(EpochDomain::new(2));
        let e1 = Arc::clone(&epochs);
        let t = thread::spawn(move || {
            e1.pin(1);
            let pinned_at = e1.epoch();
            // While pinned, the global epoch may advance at most one
            // step past the pin.
            let now = e1.epoch();
            assert!(
                now <= pinned_at + parsim_queue::arena::EPOCH_STEP,
                "epoch ran two steps past a pinned slot"
            );
            e1.unpin(1);
        });
        epochs.try_advance();
        epochs.try_advance();
        t.join();
    });
    outcome.assert_pass("arena epoch lagging-pin blocks advance");
}
