//! Property tests: the SPSC queue behaves exactly like a `VecDeque` under
//! arbitrary interleavings of sends and receives.

// Single-threaded property runs; under the model cfg the primitives only
// work inside an exploration, so this suite is real-atomics only.
#![cfg(not(parsim_model))]

use std::collections::VecDeque;

use parsim_queue::{channel, CentralQueue};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Replays a random operation sequence against both the lock-free queue
/// and a reference `VecDeque`, checking every observation.
fn check_against_model(seed: u64, ops: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (mut tx, mut rx) = channel::<u64>();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut next = 0u64;
    for _ in 0..ops {
        if rng.gen_bool(0.55) {
            tx.send(next);
            model.push_back(next);
            next += 1;
        } else {
            assert_eq!(rx.recv(), model.pop_front(), "seed {seed}");
        }
    }
    // Drain.
    while let Some(expected) = model.pop_front() {
        assert_eq!(rx.recv(), Some(expected), "seed {seed} (drain)");
    }
    assert_eq!(rx.recv(), None, "seed {seed} (empty)");
    assert!(rx.is_empty());
}

#[test]
fn spsc_matches_vecdeque_model() {
    for seed in 0..50 {
        check_against_model(seed, 2000);
    }
}

#[test]
fn spsc_matches_model_across_many_segments() {
    // Long bursts force multiple 256-slot segments.
    for seed in 100..110 {
        check_against_model(seed, 30_000);
    }
}

#[test]
fn central_queue_matches_model() {
    let mut rng = SmallRng::seed_from_u64(7);
    let q = CentralQueue::<u64>::new();
    let mut model: VecDeque<u64> = VecDeque::new();
    for i in 0..5000u64 {
        if rng.gen_bool(0.5) {
            q.push(i);
            model.push_back(i);
        } else {
            assert_eq!(q.pop(), model.pop_front());
        }
        assert_eq!(q.len(), model.len());
    }
}

/// Ping-pong latency correctness: two queues forming a rendezvous must
/// never lose or reorder tokens under real threads.
#[test]
fn spsc_ping_pong() {
    const ROUNDS: u64 = 20_000;
    let (mut tx_ab, mut rx_ab) = channel::<u64>();
    let (mut tx_ba, mut rx_ba) = channel::<u64>();
    let pong = std::thread::spawn(move || {
        let mut received = 0u64;
        while received < ROUNDS {
            if let Some(v) = rx_ab.recv() {
                assert_eq!(v, received);
                received += 1;
                tx_ba.send(v * 2);
            } else {
                std::thread::yield_now();
            }
        }
    });
    let mut got = 0u64;
    let mut sent = 0u64;
    while got < ROUNDS {
        if sent < ROUNDS {
            tx_ab.send(sent);
            sent += 1;
        }
        while let Some(v) = rx_ba.recv() {
            assert_eq!(v, got * 2);
            got += 1;
        }
    }
    pong.join().unwrap();
}
