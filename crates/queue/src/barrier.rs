//! A phase-counting spin barrier (sense reversing, generalized).
//!
//! The synchronous event-driven and compiled-mode algorithms "make sure
//! that *all* processors are done before continuing on to the next
//! time-step" (§2). A sense-reversing barrier is reusable across an
//! unbounded number of phases without reinitialization; this one counts
//! phases in a monotonic epoch instead of flipping a boolean sense.
//!
//! The original implementation derived each waiter's sense by *re-reading
//! the shared flag* (`!self.sense.load(Relaxed)`) on arrival. That read
//! races the previous leader's flip: it is only correct because every
//! arriver's load happens to be ordered before the flip through the
//! `AcqRel` chain on `remaining` — an edge supplied by a *different*
//! location's protocol, invisible at the read itself, and lost the moment
//! anyone weakens the arrival RMW (the model checker demonstrates the
//! resulting deadlock in
//! `parsim-model-check/tests/prefix_counterexamples.rs`). The epoch form
//! needs no such cross-location argument: a waiter captures the epoch
//! before arriving and spins until it *changes*, so a stale capture is
//! impossible to misinterpret and a missed flip cannot park a waiter in
//! the wrong phase.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use parsim_trace::{EventKind, WorkerTracer};

/// A reusable spin barrier for a fixed set of participants.
///
/// Spins briefly, then yields to the OS scheduler — important when threads
/// outnumber cores (this reproduction often runs oversubscribed).
///
/// # Examples
///
/// ```
/// use parsim_queue::SpinBarrier;
/// use std::sync::Arc;
///
/// let barrier = Arc::new(SpinBarrier::new(2));
/// let b2 = Arc::clone(&barrier);
/// let t = std::thread::spawn(move || {
///     b2.wait();
/// });
/// let leader = barrier.wait();
/// t.join().unwrap();
/// # let _ = leader;
/// ```
pub struct SpinBarrier {
    parties: usize,
    remaining: AtomicUsize,
    /// Completed-phase counter; waiters of phase `p` spin until it leaves
    /// `p`. Monotonic, so a waiter can never confuse two phases (the
    /// boolean-sense ABA) and never needs to re-read shared state to
    /// learn which phase it is in.
    phase: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> SpinBarrier {
        assert!(parties > 0, "barrier needs at least one party");
        SpinBarrier {
            parties,
            remaining: AtomicUsize::new(parties),
            phase: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// The number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Marks the barrier as unusable and releases every current and
    /// future waiter immediately.
    ///
    /// Called by a participant that is about to die (e.g. from a panic
    /// handler) so its peers observe shutdown instead of spinning forever
    /// on a phase that can never complete. Once poisoned, every `wait`
    /// returns `false` without synchronizing; callers must check
    /// [`SpinBarrier::is_poisoned`] and abandon the phase protocol.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// True once any participant has called [`SpinBarrier::poison`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Blocks until all parties have called `wait`. Returns `true` for
    /// exactly one caller per phase (the "leader"), which is useful for
    /// per-phase bookkeeping.
    ///
    /// A poisoned barrier never blocks: `wait` returns `false` at once,
    /// and any phase in flight when the poison landed is abandoned.
    pub fn wait(&self) -> bool {
        if self.is_poisoned() {
            return false;
        }
        // Capture the phase *before* arriving: once `remaining` is
        // decremented the leader may flip at any moment, and a capture
        // taken after that point could name the next phase and wait on a
        // release that already happened.
        let my_phase = self.phase.load(Ordering::Acquire);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset the count for the next phase, then
            // release this one. The reset must be ordered before (or with)
            // the phase store — waiters re-arrive as soon as they see the
            // epoch move.
            self.remaining.store(self.parties, Ordering::Relaxed);
            self.phase.fetch_add(1, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.phase.load(Ordering::Acquire) == my_phase {
                if self.is_poisoned() {
                    return false;
                }
                spins += 1;
                if spins < 64 {
                    crate::sync::hint::spin_loop();
                } else {
                    // Oversubscribed hosts: let the missing party run.
                    crate::sync::thread::yield_now();
                }
            }
            false
        }
    }

    /// [`SpinBarrier::wait`] wrapped in a `BarrierWait` trace span.
    ///
    /// `phase` tags which barrier within the engine's step loop this is
    /// (e.g. 0 = after node apply, 1 = after element eval), so the run
    /// report can attribute imbalance to a specific phase boundary.
    #[inline]
    pub fn wait_traced(&self, tracer: &mut WorkerTracer, phase: u32) -> bool {
        tracer.begin(EventKind::BarrierWait, phase);
        let leader = self.wait();
        tracer.end(EventKind::BarrierWait);
        leader
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_party_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_are_totally_ordered() {
        const THREADS: usize = 4;
        const PHASES: u64 = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // After the barrier, all increments of this phase
                        // must be visible.
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(
                            seen >= (phase + 1) * THREADS as u64,
                            "phase {phase}: saw {seen}"
                        );
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), PHASES * THREADS as u64);
    }

    #[test]
    fn poison_releases_spinning_waiters() {
        let barrier = Arc::new(SpinBarrier::new(3));
        assert!(!barrier.is_poisoned());
        // Two of three parties arrive; the phase cannot complete. A third
        // party poisons instead of arriving, and both waiters must return.
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || barrier.wait())
            })
            .collect();
        // Give the waiters time to block in the spin loop.
        thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison();
        for w in waiters {
            assert!(!w.join().unwrap(), "poisoned wait must not elect a leader");
        }
        // Subsequent waits return immediately.
        assert!(!barrier.wait());
        assert!(barrier.is_poisoned());
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const THREADS: usize = 3;
        const PHASES: usize = 100;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                thread::spawn(move || {
                    for _ in 0..PHASES {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), PHASES as u64);
    }
}
