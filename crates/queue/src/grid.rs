//! The n×n SPSC mailbox grid of the asynchronous algorithm.
//!
//! §4 of the paper: "each processor owns n FIFO queues (including one for
//! itself), where n is the number of processors, with each queue
//! corresponding to one of the other processors. The processors only
//! remove elements from queues they own, and add elements to queues that
//! correspond to them." A [`GridSender`] scatters work round-robin across
//! its row of queues (the §2 trick of "splitting up the problem into n
//! parts when adding to the list rather than when removing from the
//! list"); a [`GridReceiver`] drains its column.

#[cfg(not(parsim_model))]
use std::rc::Rc;

#[cfg(not(parsim_model))]
use crate::arena::WorkerArena;
use crate::spsc::{channel, Receiver, Sender};
use parsim_trace::{EventKind, WorkerTracer};

/// The sending side owned by one processor: one SPSC sender per peer.
///
/// # Examples
///
/// ```
/// let (mut senders, mut receivers) = parsim_queue::grid::<u32>(2);
/// senders[0].send(10); // lands on some processor, round-robin
/// senders[0].send(11);
/// let got: Vec<u32> = (0..2).filter_map(|p| receivers[p].recv()).collect();
/// assert_eq!(got.len(), 2);
/// ```
pub struct GridSender<T> {
    to: Vec<Sender<T>>,
    cursor: usize,
}

impl<T> GridSender<T> {
    /// Scatters one item round-robin over the peers.
    ///
    /// Returns the index of the receiving processor.
    pub fn send(&mut self, item: T) -> usize {
        let target = self.cursor;
        self.cursor = (self.cursor + 1) % self.to.len();
        self.to[target].send(item);
        target
    }

    /// Sends directly to a specific processor (used by engines that route
    /// by ownership rather than round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn send_to(&mut self, target: usize, item: T) {
        self.to[target].send(item);
    }

    /// The number of peers (including self).
    pub fn peers(&self) -> usize {
        self.to.len()
    }

    /// [`GridSender::send`] plus a `GridSend` instant tagged with the
    /// destination processor.
    #[inline]
    pub fn send_traced(&mut self, item: T, tracer: &mut WorkerTracer) -> usize {
        let target = self.send(item);
        tracer.instant(EventKind::GridSend, target as u32);
        target
    }

    /// [`GridSender::send_to`] plus a `GridSend` instant tagged with the
    /// destination processor.
    #[inline]
    pub fn send_to_traced(&mut self, target: usize, item: T, tracer: &mut WorkerTracer) {
        self.send_to(target, item);
        tracer.instant(EventKind::GridSend, target as u32);
    }

    /// Routes segment allocations of every inner sender through `arena`.
    ///
    /// # Safety
    ///
    /// Same contract as [`Sender::use_arena`] for each inner sender: the
    /// grid sender must stay on the calling thread afterwards and the
    /// arena's domain must outlive all segments it backs.
    #[cfg(not(parsim_model))]
    pub unsafe fn use_arena(&mut self, arena: &Rc<WorkerArena>) {
        for tx in &mut self.to {
            unsafe { tx.use_arena(Rc::clone(arena)) };
        }
    }
}

/// The receiving side owned by one processor: one SPSC receiver per peer.
pub struct GridReceiver<T> {
    from: Vec<Receiver<T>>,
    cursor: usize,
}

impl<T> GridReceiver<T> {
    /// Dequeues the next available item, polling peers round-robin from
    /// where the last successful receive left off (fairness across
    /// senders).
    pub fn recv(&mut self) -> Option<T> {
        let n = self.from.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if let Some(item) = self.from[idx].recv() {
                self.cursor = idx;
                return Some(item);
            }
        }
        None
    }

    /// [`GridReceiver::recv`] plus, on success, a `GridRecv` instant
    /// tagged with the source peer the item came from.
    #[inline]
    pub fn recv_traced(&mut self, tracer: &mut WorkerTracer) -> Option<T> {
        let n = self.from.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if let Some(item) = self.from[idx].recv() {
                self.cursor = idx;
                tracer.instant(EventKind::GridRecv, idx as u32);
                return Some(item);
            }
        }
        None
    }

    /// True if every incoming queue is currently empty (advisory).
    pub fn is_empty(&self) -> bool {
        self.from.iter().all(Receiver::is_empty)
    }

    /// The number of peers (including self).
    pub fn peers(&self) -> usize {
        self.from.len()
    }
}

/// Builds an n×n grid of SPSC queues, returning one sender bundle and one
/// receiver bundle per processor.
///
/// `senders[i]` writes only to queues whose single reader is the indexed
/// receiver; no queue ever has two writers or two readers.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn grid<T>(n: usize) -> (Vec<GridSender<T>>, Vec<GridReceiver<T>>) {
    assert!(n > 0, "grid needs at least one processor");
    let mut senders: Vec<GridSender<T>> = (0..n)
        .map(|i| GridSender {
            to: Vec::with_capacity(n),
            // Stagger initial cursors so processor i starts scattering at
            // i+1, spreading initial load (round-robin per the paper).
            cursor: (i + 1) % n,
        })
        .collect();
    let mut receivers: Vec<GridReceiver<T>> = (0..n)
        .map(|_| GridReceiver {
            from: Vec::with_capacity(n),
            cursor: 0,
        })
        .collect();
    for sender in senders.iter_mut() {
        for receiver in receivers.iter_mut() {
            let (tx, rx) = channel();
            sender.to.push(tx);
            receiver.from.push(rx);
        }
    }
    (senders, receivers)
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn every_item_arrives_exactly_once() {
        const N: usize = 4;
        const PER: u64 = 10_000;
        let (senders, receivers) = grid::<u64>(N);
        let producer_handles: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(p, mut tx)| {
                thread::spawn(move || {
                    for i in 0..PER {
                        tx.send(p as u64 * PER + i);
                    }
                })
            })
            .collect();
        let consumer_handles: Vec<_> = receivers
            .into_iter()
            .map(|mut rx| {
                thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut idle = 0;
                    while idle < 10_000 {
                        match rx.recv() {
                            Some(v) => {
                                got.push(v);
                                idle = 0;
                            }
                            None => {
                                idle += 1;
                                thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for h in producer_handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = consumer_handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        let expected: Vec<u64> = (0..N as u64 * PER).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let (mut senders, receivers) = grid::<u32>(4);
        for i in 0..400 {
            senders[0].send(i);
        }
        let counts: Vec<usize> = receivers
            .into_iter()
            .map(|mut rx| {
                let mut c = 0;
                while rx.recv().is_some() {
                    c += 1;
                }
                c
            })
            .collect();
        assert_eq!(counts, vec![100; 4]);
    }

    #[test]
    fn send_to_routes_directly() {
        let (mut senders, mut receivers) = grid::<&str>(3);
        senders[1].send_to(2, "hello");
        assert_eq!(receivers[2].recv(), Some("hello"));
        assert_eq!(receivers[0].recv(), None);
        assert!(receivers[1].is_empty());
    }

    #[test]
    fn per_sender_fifo_is_preserved() {
        // Items from one sender to one receiver stay ordered even when
        // interleaved with another sender's traffic.
        let (mut senders, mut receivers) = grid::<(usize, u64)>(2);
        for i in 0..100 {
            senders[0].send_to(0, (0, i));
            senders[1].send_to(0, (1, i));
        }
        let mut last = [None::<u64>; 2];
        while let Some((src, seq)) = receivers[0].recv() {
            if let Some(prev) = last[src] {
                assert!(seq > prev, "fifo per sender violated");
            }
            last[src] = Some(seq);
        }
        assert_eq!(last, [Some(99), Some(99)]);
    }

    #[test]
    fn single_processor_grid_self_delivers() {
        let (mut senders, mut receivers) = grid::<u8>(1);
        senders[0].send(42);
        assert_eq!(receivers[0].recv(), Some(42));
    }
}
