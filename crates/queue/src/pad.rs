//! Cache-line padding for hot shared cursors.
//!
//! Head and tail cursors of an SPSC queue are written by different
//! processors; if they share a cache line every publish invalidates the
//! peer's line (false sharing). Aligning each cursor to its own 128-byte
//! block — two 64-byte lines, covering adjacent-line prefetchers — keeps
//! the paper's "never modify the same location" property true at the
//! cache-coherence level, not just the word level.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so it owns its cache line(s).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
