//! Unbounded lock-free single-producer/single-consumer FIFO.
//!
//! The queue is a linked list of fixed-size segments. The producer writes
//! into the tail segment and *publishes* each slot with a release store of
//! the segment's published count; the consumer acquires that count before
//! reading. Head and tail state live on opposite sides and are never
//! modified by the other party — the paper's "the two processors
//! corresponding to each queue must never modify the same location".
//!
//! Segments fully consumed by the consumer are freed by the consumer once
//! the producer has linked a successor (the producer never revisits a
//! segment after linking its successor, so this is safe without epochs).
//!
//! Model-checked: `tests/model.rs` runs this exact implementation under
//! the `parsim-model-check` explorer (push/pop/segment-retire, both drop
//! orders, drop-while-nonempty, chaos yields); the pre-fix drain that
//! leaned on `Arc`'s drop fence is kept as a counterexample fixture in
//! `parsim-model-check/tests/prefix_counterexamples.rs`.

use std::mem::MaybeUninit;
use std::ptr;
#[cfg(not(parsim_model))]
use std::rc::Rc;

#[cfg(not(parsim_model))]
use crate::arena::{retire_remote, WorkerArena, MAX_CLASS};
use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use crate::sync::{Arc, UnsafeCell};

/// Slots per segment. Large enough to amortize allocation, small enough
/// that bursty producers don't hoard memory.
#[cfg(not(parsim_model))]
const SEG: usize = 256;
/// Under the model: small enough that segment linking and retirement are
/// reachable within a bounded exploration.
#[cfg(parsim_model)]
const SEG: usize = 2;

struct Segment<T> {
    data: [UnsafeCell<MaybeUninit<T>>; SEG],
    /// Number of slots written and visible to the consumer.
    published: AtomicUsize,
    next: AtomicPtr<Segment<T>>,
    /// Whether the backing memory came from a worker arena rather than
    /// the global allocator; decides how [`Segment::free`] returns it.
    #[cfg(not(parsim_model))]
    from_arena: bool,
}

impl<T> Segment<T> {
    fn new_boxed() -> *mut Segment<T> {
        Box::into_raw(Box::new(Segment {
            data: [const { UnsafeCell::new(MaybeUninit::uninit()) }; SEG],
            published: AtomicUsize::new(0),
            next: AtomicPtr::new(ptr::null_mut()),
            #[cfg(not(parsim_model))]
            from_arena: false,
        }))
    }

    /// Allocates from `arena` when the segment fits a slab size class
    /// and the arena's 64-byte alignment; falls back to the global
    /// allocator otherwise (e.g. very large or over-aligned `T`).
    #[cfg(not(parsim_model))]
    fn new_in(arena: &WorkerArena) -> *mut Segment<T> {
        if size_of::<Segment<T>>() > MAX_CLASS || align_of::<Segment<T>>() > 64 {
            return Self::new_boxed();
        }
        let p = arena.alloc(size_of::<Segment<T>>()) as *mut Segment<T>;
        // SAFETY: freshly allocated block, sized and aligned for
        // `Segment<T>` per the guard above.
        unsafe {
            ptr::write(
                p,
                Segment {
                    data: [const { UnsafeCell::new(MaybeUninit::uninit()) }; SEG],
                    published: AtomicUsize::new(0),
                    next: AtomicPtr::new(ptr::null_mut()),
                    from_arena: true,
                },
            );
        }
        p
    }

    /// Frees a segment previously returned by `new_boxed`/`new_in`.
    ///
    /// # Safety
    ///
    /// `seg` must be live with no remaining readers or writers, and any
    /// published-but-unread items must already have been dropped. For
    /// arena-backed segments the owning domain must still be alive.
    unsafe fn free(seg: *mut Segment<T>) {
        #[cfg(not(parsim_model))]
        if (*seg).from_arena {
            ptr::drop_in_place(seg);
            retire_remote(seg as *mut u8);
            return;
        }
        drop(Box::from_raw(seg));
    }
}

struct Channel<T> {
    /// Producer-side cursor: current tail segment and write index.
    tail: CachePadded<UnsafeCell<(*mut Segment<T>, usize)>>,
    /// Consumer-side cursor: current head segment and read index.
    head: CachePadded<UnsafeCell<(*mut Segment<T>, usize)>>,
}

// SAFETY: the producer only touches `tail` and the consumer only `head`;
// cross-thread publication goes through `published`/`next` atomics.
unsafe impl<T: Send> Send for Channel<T> {}
unsafe impl<T: Send> Sync for Channel<T> {}

impl<T> Drop for Channel<T> {
    fn drop(&mut self) {
        // Exclusive access: both endpoints are gone. Drain remaining items
        // and free all segments.
        //
        // The `Acquire` loads below carry their own ordering edge from the
        // producer's final `Release` publishes: this drain may run on the
        // consumer's thread (consumer endpoint dropped last) and read
        // slots the consumer never received. The original `Relaxed` drain
        // was only correct through the acquire fence inside
        // `Arc::drop` — an invariant of someone else's implementation;
        // under the model (whose `Arc` reproduces exactly that fence, no
        // more) the protocol must order the drain itself.
        unsafe {
            let (mut seg, mut idx) = self.head.with(|p| *p);
            while !seg.is_null() {
                let published = (*seg).published.load(Ordering::Acquire);
                for i in idx..published {
                    (*seg).data[i].with_mut(|slot| ptr::drop_in_place((*slot).as_mut_ptr()));
                }
                let next = (*seg).next.load(Ordering::Acquire);
                Segment::free(seg);
                seg = next;
                idx = 0;
            }
        }
    }
}

/// The sending half of an unbounded SPSC queue.
///
/// Not [`Clone`]: exactly one producer exists per queue.
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = parsim_queue::channel::<u32>();
/// tx.send(7);
/// assert_eq!(rx.recv(), Some(7));
/// assert_eq!(rx.recv(), None);
/// ```
pub struct Sender<T> {
    ch: Arc<Channel<T>>,
    /// Segment source installed via [`Sender::use_arena`]; `None` keeps
    /// the global allocator.
    #[cfg(not(parsim_model))]
    arena: Option<Rc<WorkerArena>>,
    #[cfg(feature = "chaos")]
    chaos: crate::chaos::ChaosState,
}

// SAFETY: moving the unique producer endpoint to another thread is fine for
// T: Send; the endpoint is !Sync by construction (UnsafeCell access).
unsafe impl<T: Send> Send for Sender<T> {}

/// The receiving half of an unbounded SPSC queue.
///
/// Not [`Clone`]: exactly one consumer exists per queue.
pub struct Receiver<T> {
    ch: Arc<Channel<T>>,
    #[cfg(feature = "chaos")]
    chaos: crate::chaos::ChaosState,
}

unsafe impl<T: Send> Send for Receiver<T> {}

/// Creates an unbounded SPSC queue.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let seg = Segment::new_boxed();
    let ch = Arc::new(Channel {
        tail: CachePadded::new(UnsafeCell::new((seg, 0))),
        head: CachePadded::new(UnsafeCell::new((seg, 0))),
    });
    (
        Sender {
            ch: Arc::clone(&ch),
            #[cfg(not(parsim_model))]
            arena: None,
            #[cfg(feature = "chaos")]
            chaos: crate::chaos::ChaosState::new("spsc-send"),
        },
        Receiver {
            ch,
            #[cfg(feature = "chaos")]
            chaos: crate::chaos::ChaosState::new("spsc-recv"),
        },
    )
}

impl<T> Sender<T> {
    /// Enqueues a value. Never blocks and never fails; memory is the only
    /// limit (the paper's asynchronous queues "fill up quickly", which is
    /// the desirable state — ample available work).
    pub fn send(&mut self, value: T) {
        unsafe {
            let (mut seg, mut idx) = self.ch.tail.with(|p| *p);
            if idx == SEG {
                #[cfg(not(parsim_model))]
                let new = match &self.arena {
                    Some(a) => Segment::new_in(a),
                    None => Segment::new_boxed(),
                };
                #[cfg(parsim_model)]
                let new = Segment::new_boxed();
                (*seg).next.store(new, Ordering::Release);
                seg = new;
                idx = 0;
            }
            (*seg).data[idx].with_mut(|slot| (*slot).write(value));
            // Chaos: widen the window between writing a slot and
            // publishing it, so consumers exercise the not-yet-visible
            // path that a well-timed preemption would otherwise hit
            // only rarely.
            #[cfg(feature = "chaos")]
            self.chaos.maybe_yield();
            (*seg).published.store(idx + 1, Ordering::Release);
            self.ch.tail.with_mut(|p| *p = (seg, idx + 1));
        }
    }

    /// Routes subsequent segment allocations through `arena`. The first
    /// segment (allocated by [`channel`]) always comes from the global
    /// allocator; only segments linked after this call are arena-backed.
    ///
    /// # Safety
    ///
    /// - The sender must not migrate to another thread after this call:
    ///   `WorkerArena` is thread-bound and reached through a shared
    ///   `Rc`.
    /// - The arena's domain must outlive every segment this sender
    ///   allocates — in practice, outlive both channel endpoints.
    #[cfg(not(parsim_model))]
    pub unsafe fn use_arena(&mut self, arena: Rc<WorkerArena>) {
        self.arena = Some(arena);
    }
}

impl<T> Receiver<T> {
    /// Dequeues the oldest value, or `None` if the queue is currently
    /// empty.
    pub fn recv(&mut self) -> Option<T> {
        // Chaos: occasionally stall the consumer so producer-side
        // backlogs (and segment-boundary races) are exercised.
        #[cfg(feature = "chaos")]
        self.chaos.maybe_yield();
        unsafe {
            loop {
                let (seg, idx) = self.ch.head.with(|p| *p);
                if idx == SEG {
                    let next = (*seg).next.load(Ordering::Acquire);
                    if next.is_null() {
                        return None;
                    }
                    // The producer has moved on; this segment is fully
                    // consumed and will never be touched again.
                    Segment::free(seg);
                    self.ch.head.with_mut(|p| *p = (next, 0));
                    continue;
                }
                let published = (*seg).published.load(Ordering::Acquire);
                if idx < published {
                    let value = (*seg).data[idx].with(|slot| (*slot).assume_init_read());
                    self.ch.head.with_mut(|p| *p = (seg, idx + 1));
                    return Some(value);
                }
                return None;
            }
        }
    }

    /// True if a `recv` right now would return `None`. Advisory only: the
    /// producer may enqueue immediately afterwards.
    pub fn is_empty(&self) -> bool {
        unsafe {
            let (seg, idx) = self.ch.head.with(|p| *p);
            if idx == SEG {
                return (*seg).next.load(Ordering::Acquire).is_null();
            }
            idx >= (*seg).published.load(Ordering::Acquire)
        }
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = channel();
        for i in 0..1000 {
            tx.send(i);
        }
        for i in 0..1000 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn interleaved_send_recv_crosses_segments() {
        let (mut tx, mut rx) = channel();
        let mut expected = 0u64;
        for round in 0..50u64 {
            for i in 0..((round % 7) * 37 + 13) {
                tx.send(round * 10_000 + i);
            }
            while let Some(v) = rx.recv() {
                let round_got = v / 10_000;
                let idx = v % 10_000;
                assert_eq!(v, round_got * 10_000 + idx);
                expected += 1;
            }
        }
        assert!(expected > SEG as u64 * 2, "test must cross segments");
    }

    #[test]
    fn cross_thread_sequence_preserved() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel();
        let producer = thread::spawn(move || {
            for i in 0..N {
                tx.send(i);
            }
        });
        let mut next = 0u64;
        while next < N {
            if let Some(v) = rx.recv() {
                assert_eq!(v, next, "fifo order violated");
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.recv(), None);
    }

    struct DropCounter<'a>(&'a AtomicUsize, #[allow(dead_code)] u64);
    impl Drop for DropCounter<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn unconsumed_items_are_dropped_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        DROPS.store(0, Ordering::Relaxed);
        {
            let (mut tx, mut rx) = channel();
            for i in 0..(SEG as u64 * 3 + 17) {
                tx.send(DropCounter(&DROPS, i));
            }
            // Consume a prefix spanning one segment boundary.
            for _ in 0..(SEG + 5) {
                let item = rx.recv().unwrap();
                drop(item);
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), SEG * 3 + 17);
    }

    #[test]
    fn sender_dropping_first_still_delivers() {
        let (mut tx, mut rx) = channel();
        for i in 0..10 {
            tx.send(i);
        }
        drop(tx);
        for i in 0..10 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn zero_item_channel_drops_cleanly() {
        let (tx, rx) = channel::<String>();
        drop(tx);
        drop(rx);
    }

    #[test]
    fn arena_backed_segments_preserve_fifo_and_recycle() {
        use crate::arena::ArenaDomain;

        // Declared first so it drops last: arena-backed segments are
        // retired into the domain and must not outlive it.
        let domain = ArenaDomain::new(1);
        let arena = std::rc::Rc::new(domain.worker(0));
        let (mut tx, mut rx) = channel::<u64>();
        // SAFETY: single-threaded test; domain outlives both endpoints.
        unsafe { tx.use_arena(std::rc::Rc::clone(&arena)) };
        let total = SEG as u64 * 6 + 11;
        for round in 0..3 {
            for i in 0..total {
                tx.send(round * total + i);
            }
            for i in 0..total {
                assert_eq!(rx.recv(), Some(round * total + i));
            }
            assert_eq!(rx.recv(), None);
            // Give retired segments a chance to clear the grace period
            // so later rounds hit the free list.
            for _ in 0..8 {
                arena.maintain();
            }
        }
        drop(tx);
        drop(rx);
        drop(arena);
        let stats = domain.stats();
        assert!(stats.fresh > 0, "segments should come from the arena");
        assert!(
            stats.recycled > 0,
            "later rounds should reuse reclaimed segments: {stats:?}"
        );
    }

    #[test]
    fn arena_segments_drop_unconsumed_items() {
        use crate::arena::ArenaDomain;

        static DROPS: AtomicUsize = AtomicUsize::new(0);
        DROPS.store(0, Ordering::Relaxed);
        let domain = ArenaDomain::new(1);
        {
            let arena = std::rc::Rc::new(domain.worker(0));
            let (mut tx, rx) = channel();
            // SAFETY: single-threaded test; domain outlives the channel.
            unsafe { tx.use_arena(arena) };
            for i in 0..(SEG as u64 * 3 + 17) {
                tx.send(DropCounter(&DROPS, i));
            }
            drop(tx);
            drop(rx);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), SEG * 3 + 17);
    }
}
