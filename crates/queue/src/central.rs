//! A deliberately centralized, lock-based work queue.
//!
//! The paper's first attempt at the synchronous algorithm used "only one
//! centralized hash table for the node changes and one centralized queue
//! for the activated elements", which capped speed-up at about 2 with 8
//! processors (§2). This queue exists to reproduce that negative result in
//! the ablation benchmarks — it is *not* used by any production engine.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A mutex-guarded MPMC FIFO: the contended baseline the paper replaced
/// with distributed per-processor queues.
///
/// # Examples
///
/// ```
/// use parsim_queue::CentralQueue;
///
/// let q = CentralQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct CentralQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> CentralQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> CentralQueue<T> {
        CentralQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an item (takes the global lock).
    pub fn push(&self, item: T) {
        self.inner.lock().expect("central queue poisoned").push_back(item);
    }

    /// Removes the oldest item (takes the global lock).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().expect("central queue poisoned").pop_front()
    }

    /// The current length (takes the global lock).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("central queue poisoned").len()
    }

    /// True if currently empty (takes the global lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mpmc_delivery_is_complete() {
        let q = Arc::new(CentralQueue::new());
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        q.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort();
        assert_eq!(got, (0..3000u64).collect::<Vec<_>>());
        assert!(q.is_empty());
    }
}
