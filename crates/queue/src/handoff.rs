//! Per-worker step handoff for statically scheduled BSP execution.
//!
//! The compiled batch kernel runs a two-phase step loop (apply pending
//! node writes, then evaluate levels). With a [`SpinBarrier`] every
//! worker waits for *every* other worker twice per step — even for
//! workers whose outputs it never reads. The lowered instruction stream
//! knows the communication pattern at compile time, so a worker only
//! needs to order itself against its actual **producers** (workers whose
//! node slots it reads) and **consumers** (workers that read its slots).
//!
//! [`StepHandoff`] is the per-edge primitive: each worker owns two
//! monotonic phase counters — "I finished my apply of step `t`" and "I
//! finished my eval of step `t`" — published with `Release` and awaited
//! with `Acquire`. A phase counter stores `t + 1` once step `t`'s phase
//! is done, so the all-zeros initial state means "nothing published" and
//! waiters never need a sentinel.
//!
//! The protocol a worker `w` runs per step `t` (neighbor-sync mode):
//!
//! 1. wait `eval_done[c] ≥ t` for every consumer `c` (step `t-1`'s reads
//!    of `w`'s slots have retired — overwriting them is now safe),
//! 2. apply `w`'s pending writes for step `t`; publish `apply_done[w] = t+1`,
//! 3. wait `apply_done[p] ≥ t+1` for every producer `p` (the slot values
//!    `w`'s instructions read this step are final),
//! 4. evaluate; publish `eval_done[w] = t+1`.
//!
//! Each wait targets a counter that its owner is guaranteed to advance
//! (waits on step `t` only ever target phases of step `t` or `t-1`, and
//! phases within a worker's loop advance in program order), so the wait
//! graph is grounded and deadlock-free — unless a worker dies. For that
//! case the handoff carries the same poison protocol as the barrier:
//! a dying worker (panic handler, watchdog, fault-plan exit) poisons the
//! handoff, every in-flight and future wait returns `false` immediately,
//! and callers abandon the step loop.
//!
//! Built entirely on [`crate::sync`], so `--cfg parsim_model` runs the
//! whole protocol under the deterministic interleaving explorer
//! (`crates/queue/tests/model.rs`).
//!
//! [`SpinBarrier`]: crate::SpinBarrier

use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Two published phase counters per worker plus a shared poison flag.
///
/// Counters are cache-padded: each is written by exactly one worker and
/// spun on by a handful of neighbors, and padding keeps a publish from
/// invalidating an unrelated worker's line.
pub struct StepHandoff {
    /// `apply_done[w] = t + 1` ⇔ worker `w` finished its apply phase of
    /// step `t` (writes to its node slots for this step are complete).
    apply_done: Vec<CachePadded<AtomicU64>>,
    /// `eval_done[w] = t + 1` ⇔ worker `w` finished evaluating step `t`
    /// (its reads of producer slots for this step have retired).
    eval_done: Vec<CachePadded<AtomicU64>>,
    poisoned: AtomicBool,
}

impl StepHandoff {
    /// Creates a handoff for `workers` participants, all phases
    /// unpublished.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> StepHandoff {
        assert!(workers > 0, "handoff needs at least one worker");
        StepHandoff {
            apply_done: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            eval_done: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// The number of participating workers.
    pub fn workers(&self) -> usize {
        self.apply_done.len()
    }

    /// Publishes "worker `w` finished its apply phase of step `step`".
    ///
    /// The `Release` store is the synchronization edge that makes `w`'s
    /// node-slot writes (and any `Relaxed` dirty-mask marks) visible to a
    /// consumer returning from [`StepHandoff::wait_apply`].
    #[inline]
    pub fn publish_apply(&self, w: usize, step: u64) {
        self.apply_done[w].store(step + 1, Ordering::Release);
    }

    /// Blocks until worker `p` has published its apply phase of `step`.
    ///
    /// Returns `false` immediately if the handoff is (or becomes)
    /// poisoned; the caller must abandon the step loop.
    #[inline]
    pub fn wait_apply(&self, p: usize, step: u64) -> bool {
        self.wait(&self.apply_done[p], step)
    }

    /// Publishes "worker `w` finished evaluating step `step`" — its reads
    /// of producer slots for this step have retired, so producers may
    /// overwrite them for step `step + 1`.
    #[inline]
    pub fn publish_eval(&self, w: usize, step: u64) {
        self.eval_done[w].store(step + 1, Ordering::Release);
    }

    /// Blocks until worker `c` has published its eval phase of `step`.
    ///
    /// Returns `false` immediately if the handoff is (or becomes)
    /// poisoned.
    #[inline]
    pub fn wait_eval(&self, c: usize, step: u64) -> bool {
        self.wait(&self.eval_done[c], step)
    }

    /// Marks the handoff unusable and releases every current and future
    /// waiter immediately (same contract as `SpinBarrier::poison`).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// True once any participant has called [`StepHandoff::poison`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    #[inline]
    fn wait(&self, counter: &AtomicU64, step: u64) -> bool {
        let target = step + 1;
        let mut spins = 0u32;
        // Counters are monotonic, so `>=` tolerates the owner running
        // arbitrarily far ahead of this waiter.
        while counter.load(Ordering::Acquire) < target {
            if self.is_poisoned() {
                return false;
            }
            spins += 1;
            if spins < 64 {
                crate::sync::hint::spin_loop();
            } else {
                // Oversubscribed hosts: let the missing worker run.
                crate::sync::thread::yield_now();
            }
        }
        !self.is_poisoned()
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn published_phases_are_observed_in_order() {
        let h = StepHandoff::new(2);
        h.publish_apply(0, 0);
        assert!(h.wait_apply(0, 0));
        h.publish_eval(0, 0);
        assert!(h.wait_eval(0, 0));
        // Monotonic: a later publish satisfies earlier waits too.
        h.publish_apply(1, 5);
        assert!(h.wait_apply(1, 3));
        assert!(h.wait_apply(1, 5));
    }

    #[test]
    fn producer_consumer_chain_runs_many_steps() {
        const STEPS: u64 = 10_000;
        let h = Arc::new(StepHandoff::new(2));
        let data = Arc::new(std::sync::atomic::AtomicU64::new(0));
        // Worker 0 produces (apply), worker 1 consumes (eval).
        let producer = {
            let h = Arc::clone(&h);
            let data = Arc::clone(&data);
            thread::spawn(move || {
                for t in 0..STEPS {
                    if t > 0 && !h.wait_eval(1, t - 1) {
                        return;
                    }
                    data.store(t + 1, std::sync::atomic::Ordering::Relaxed);
                    h.publish_apply(0, t);
                }
            })
        };
        let consumer = {
            let h = Arc::clone(&h);
            let data = Arc::clone(&data);
            thread::spawn(move || {
                for t in 0..STEPS {
                    if !h.wait_apply(0, t) {
                        return;
                    }
                    // The Relaxed payload write is ordered by the
                    // Release/Acquire edge on apply_done[0].
                    assert_eq!(data.load(std::sync::atomic::Ordering::Relaxed), t + 1);
                    h.publish_eval(1, t);
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    #[test]
    fn poison_releases_stuck_waiters() {
        let h = Arc::new(StepHandoff::new(2));
        let waiter = {
            let h = Arc::clone(&h);
            // Worker 1 never publishes; the wait can only end by poison.
            thread::spawn(move || h.wait_apply(1, 7))
        };
        thread::sleep(std::time::Duration::from_millis(20));
        h.poison();
        assert!(!waiter.join().unwrap());
        // Poison also defeats already-satisfied waits, so a caller that
        // raced the poison cannot keep stepping on half-published state.
        h.publish_apply(0, 0);
        assert!(!h.wait_apply(0, 0));
        assert!(h.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = StepHandoff::new(0);
    }
}
