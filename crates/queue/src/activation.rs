//! The per-element at-most-once activation state machine.
//!
//! The paper requires that fan-out elements be stimulated "only once"
//! (§4, step 4c) and that each element's state and output lists have a
//! single writer. This lock-free state machine provides both guarantees:
//!
//! ```text
//!            try_activate                 begin_run
//!   Idle ───────────────────▶ Queued ───────────────▶ Running
//!    ▲                                                   │ │
//!    │                 finish_run == false               │ │ try_activate
//!    └───────────────────────────────────────────────────┘ ▼
//!                      finish_run == true ◀───────────── RunningDirty
//!                      (caller re-enqueues)
//! ```
//!
//! An element is executed by at most one processor at a time (single
//! writer); events arriving mid-run set `RunningDirty`, and the executing
//! processor re-enqueues the element after finishing, so no event is ever
//! lost.

use crate::sync::atomic::{AtomicU8, Ordering};

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const DIRTY: u8 = 3;

/// Lock-free at-most-once scheduling state for one element.
///
/// # Examples
///
/// ```
/// use parsim_queue::ActivationState;
///
/// let st = ActivationState::new();
/// assert!(st.try_activate());   // Idle -> Queued: caller enqueues
/// assert!(!st.try_activate());  // already queued: nothing to do
/// st.begin_run();
/// assert!(!st.try_activate());  // running: marked dirty instead
/// assert!(st.finish_run());     // dirty -> requeue requested
/// st.begin_run();
/// assert!(!st.finish_run());    // clean finish -> idle
/// ```
#[derive(Debug)]
pub struct ActivationState(AtomicU8);

impl Default for ActivationState {
    fn default() -> Self {
        Self::new()
    }
}

impl ActivationState {
    /// Creates the state machine in `Idle`.
    pub const fn new() -> ActivationState {
        ActivationState(AtomicU8::new(IDLE))
    }

    /// Signals that the element has new input events.
    ///
    /// Returns `true` exactly when the caller must enqueue the element
    /// (the `Idle -> Queued` transition won). All other states absorb the
    /// activation: `Queued`/`RunningDirty` are already pending, and
    /// `Running` is flipped to `RunningDirty` so the current run is
    /// followed by another.
    pub fn try_activate(&self) -> bool {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            // Every arm performs a *successful* release RMW on the state,
            // including the absorbing ones (CAS to the same value). This
            // is load-bearing: the activator's prior writes (e.g. events
            // appended to a node's behavior list) become visible to the
            // element's next `begin_run`, whose acquire RMW reads the tail
            // of this release sequence. Without the QUEUED -> QUEUED and
            // DIRTY -> DIRTY writes, an already-queued element could run
            // with a stale view and drop the activation's events.
            let (target, enqueue) = match cur {
                IDLE => (QUEUED, true),
                RUNNING => (DIRTY, false),
                QUEUED => (QUEUED, false),
                DIRTY => (DIRTY, false),
                _ => unreachable!("invalid activation state"),
            };
            match self
                .0
                .compare_exchange_weak(cur, target, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return enqueue,
                Err(now) => cur = now,
            }
        }
    }

    /// Marks the element as executing. Call after dequeuing it.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the element was not `Queued` — that would
    /// mean it was enqueued twice, violating the single-writer guarantee.
    pub fn begin_run(&self) {
        let prev = self.0.swap(RUNNING, Ordering::AcqRel);
        debug_assert_eq!(prev, QUEUED, "begin_run on non-queued element");
    }

    /// Finishes an execution. Returns `true` if activations arrived during
    /// the run and the caller must re-enqueue the element (the state has
    /// already been reset to `Queued`); `false` on a clean `Idle` finish.
    pub fn finish_run(&self) -> bool {
        match self
            .0
            .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => false,
            Err(state) => {
                debug_assert_eq!(state, DIRTY, "finish_run saw invalid state");
                self.0.store(QUEUED, Ordering::Release);
                true
            }
        }
    }

    /// True if the element is idle (test/metrics helper).
    pub fn is_idle(&self) -> bool {
        self.0.load(Ordering::Acquire) == IDLE
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lifecycle() {
        let st = ActivationState::new();
        assert!(st.is_idle());
        assert!(st.try_activate());
        assert!(!st.try_activate());
        st.begin_run();
        assert!(!st.finish_run());
        assert!(st.is_idle());
    }

    #[test]
    fn dirty_requeues() {
        let st = ActivationState::new();
        assert!(st.try_activate());
        st.begin_run();
        assert!(!st.try_activate()); // lands as dirty
        assert!(!st.try_activate()); // still dirty, absorbed
        assert!(st.finish_run()); // must requeue
        st.begin_run();
        assert!(!st.finish_run());
    }

    /// Concurrency stress: many activators racing one executor; every
    /// activation burst must be followed by at least one run, and runs
    /// never overlap.
    #[test]
    fn no_lost_wakeups_and_single_writer() {
        let st = Arc::new(ActivationState::new());
        let enqueued = Arc::new(AtomicUsize::new(0));
        let produced = Arc::new(AtomicU64::new(0));
        let consumed = Arc::new(AtomicU64::new(0));
        let running = Arc::new(AtomicUsize::new(0));

        // Seed one activation so the executor has work.
        assert!(st.try_activate());
        enqueued.store(1, Ordering::SeqCst);

        let activators: Vec<_> = (0..3)
            .map(|_| {
                let st = Arc::clone(&st);
                let enqueued = Arc::clone(&enqueued);
                let produced = Arc::clone(&produced);
                thread::spawn(move || {
                    for _ in 0..5_000u64 {
                        produced.fetch_add(1, Ordering::SeqCst);
                        if st.try_activate() {
                            enqueued.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();

        // Executor: runs whenever the queue (here: a counter) is nonempty.
        let exec = {
            let st = Arc::clone(&st);
            let enqueued = Arc::clone(&enqueued);
            let produced = Arc::clone(&produced);
            let consumed = Arc::clone(&consumed);
            let running = Arc::clone(&running);
            thread::spawn(move || loop {
                if enqueued.load(Ordering::SeqCst) > 0 {
                    enqueued.fetch_sub(1, Ordering::SeqCst);
                    st.begin_run();
                    assert_eq!(running.fetch_add(1, Ordering::SeqCst), 0, "overlap!");
                    // "Process" everything produced so far.
                    consumed.store(produced.load(Ordering::SeqCst), Ordering::SeqCst);
                    running.fetch_sub(1, Ordering::SeqCst);
                    if st.finish_run() {
                        enqueued.fetch_add(1, Ordering::SeqCst);
                    }
                } else if consumed.load(Ordering::SeqCst) >= 15_000 && st.is_idle() {
                    break;
                } else {
                    thread::yield_now();
                }
            })
        };

        for a in activators {
            a.join().unwrap();
        }
        exec.join().unwrap();
        // Everything produced before the last run is consumed; the state
        // machine guarantees the final activation was not lost.
        assert_eq!(consumed.load(Ordering::SeqCst), 15_000);
    }
}
