//! The bounded Lamport SPSC ring — the paper's literal queue.
//!
//! "Since elements are removed from the head and added to the tail, we
//! just make sure that the head and tail never point to the same location
//! to satisfy this constraint" (§4). One slot is sacrificed to
//! distinguish full from empty, exactly as in 1988; the unbounded
//! [`channel`](crate::channel) used by the engines trades that fixed
//! footprint for never-failing sends.

use std::mem::MaybeUninit;

use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, UnsafeCell};

struct RingInner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read (consumer-owned, atomically published).
    head: CachePadded<AtomicUsize>,
    /// Next slot to write (producer-owned, atomically published).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: slot (i) is written only by the producer before publishing via
// `tail` and read only by the consumer before publishing via `head`; the
// two indices never alias a live slot (one slot is kept empty).
unsafe impl<T: Send> Send for RingInner<T> {}
unsafe impl<T: Send> Sync for RingInner<T> {}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Exclusive at drop: drain live items. `Acquire` orders the drain
        // after the producer's final `Release` publish on its own — same
        // fix as `Channel::drop` in `spsc.rs`; the previous `Relaxed`
        // loads leaned on the acquire fence inside `Arc::drop`.
        let mut head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        while head != tail {
            // SAFETY: slots in [head, tail) hold initialized values.
            self.slots[head].with_mut(|slot| unsafe { (*slot).assume_init_drop() });
            head = (head + 1) % self.slots.len();
        }
    }
}

/// The producing half of a bounded SPSC ring.
pub struct RingSender<T> {
    inner: Arc<RingInner<T>>,
}

/// The consuming half of a bounded SPSC ring.
pub struct RingReceiver<T> {
    inner: Arc<RingInner<T>>,
}

/// Creates a bounded SPSC ring holding up to `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// # Examples
///
/// ```
/// let (tx, rx) = parsim_queue::ring::<u32>(2);
/// assert!(tx.try_send(1).is_ok());
/// assert!(tx.try_send(2).is_ok());
/// assert_eq!(tx.try_send(3), Err(3)); // full
/// assert_eq!(rx.try_recv(), Some(1));
/// assert!(tx.try_send(3).is_ok());
/// ```
pub fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    assert!(capacity > 0, "capacity must be nonzero");
    // One slot stays empty so head == tail unambiguously means "empty".
    let slots = (0..capacity + 1)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(RingInner {
        slots,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        RingSender {
            inner: Arc::clone(&inner),
        },
        RingReceiver { inner },
    )
}

impl<T> RingSender<T> {
    /// Attempts to enqueue a value.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` (handing the value back) when the ring is
    /// full.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        let inner = &self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let next = (tail + 1) % inner.slots.len();
        if next == inner.head.load(Ordering::Acquire) {
            return Err(value); // full: head and tail must never meet
        }
        // SAFETY: the slot at `tail` is dead (not between head and tail).
        inner.slots[tail].with_mut(|slot| unsafe { (*slot).write(value) });
        inner.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// True when a `try_send` right now would fail (advisory).
    pub fn is_full(&self) -> bool {
        let inner = &self.inner;
        let next = (inner.tail.load(Ordering::Relaxed) + 1) % inner.slots.len();
        next == inner.head.load(Ordering::Acquire)
    }
}

impl<T> RingReceiver<T> {
    /// Attempts to dequeue the oldest value.
    pub fn try_recv(&self) -> Option<T> {
        let inner = &self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        if head == inner.tail.load(Ordering::Acquire) {
            return None; // empty
        }
        // SAFETY: the slot at `head` holds an initialized value published
        // by the matching tail store.
        let value = inner.slots[head].with(|slot| unsafe { (*slot).assume_init_read() });
        inner
            .head
            .store((head + 1) % inner.slots.len(), Ordering::Release);
        Some(value)
    }

    /// True when a `try_recv` right now would fail (advisory).
    pub fn is_empty(&self) -> bool {
        let inner = &self.inner;
        inner.head.load(Ordering::Relaxed) == inner.tail.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::thread;

    #[test]
    fn fills_to_capacity_exactly() {
        let (tx, rx) = ring::<u32>(3);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert!(tx.try_send(3).is_ok());
        assert!(tx.is_full());
        assert_eq!(tx.try_send(4), Err(4));
        assert_eq!(rx.try_recv(), Some(1));
        assert!(!tx.is_full());
        assert!(tx.try_send(4).is_ok());
        for expected in [2, 3, 4] {
            assert_eq!(rx.try_recv(), Some(expected));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn wraps_many_times_against_model() {
        let (tx, rx) = ring::<u64>(5);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        let mut state = 12345u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state.is_multiple_of(2) {
                match tx.try_send(next) {
                    Ok(()) => {
                        model.push_back(next);
                        next += 1;
                    }
                    Err(_) => assert_eq!(model.len(), 5, "full only at capacity"),
                }
            } else {
                assert_eq!(rx.try_recv(), model.pop_front());
            }
        }
    }

    #[test]
    fn cross_thread_fifo() {
        const N: u64 = 100_000;
        let (tx, rx) = ring::<u64>(64);
        let producer = thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                while let Err(back) = tx.try_send(v) {
                    v = back;
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.try_recv() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drops_unconsumed_items() {
        static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (tx, rx) = ring::<D>(8);
            for _ in 0..6 {
                assert!(tx.try_send(D).is_ok());
            }
            drop(rx.try_recv()); // consume one
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 6);
    }
}
