//! Seeded, deterministic schedule perturbation for the queue primitives.
//!
//! Compiled only under the `chaos` cargo feature. Each queue endpoint owns
//! a [`ChaosState`]: a tiny SplitMix64 stream seeded from a process-wide
//! base seed (`PARSIM_CHAOS_SEED`, default `0xC0FFEE`), a role tag, and a
//! per-construction sequence number. The *decision* stream — which sends
//! and receives get perturbed, and how hard — is therefore reproducible
//! across runs for a fixed seed and construction order, even though the
//! OS-level interleaving it provokes is not.
//!
//! Perturbations are plain `yield_now` bursts placed at the narrowest
//! windows of the SPSC protocol (between writing a slot and publishing
//! it, and before a consume), so rare interleavings become common without
//! changing any observable queue semantics.

#[cfg(not(parsim_model))]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Endpoints constructed so far; makes each stream distinct while staying
/// reproducible for a deterministic construction order.
#[cfg(not(parsim_model))]
static SEQUENCE: AtomicU64 = AtomicU64::new(0);

/// Process-wide base seed, read once from `PARSIM_CHAOS_SEED`.
fn base_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("PARSIM_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE)
    })
}

/// Deterministic perturbation stream for one queue endpoint.
#[derive(Debug)]
pub struct ChaosState {
    state: u64,
}

impl ChaosState {
    /// Creates a stream for the endpoint role named by `tag`.
    pub fn new(tag: &str) -> ChaosState {
        // FNV-1a over the role tag, mixed with the base seed and the
        // construction sequence number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Under the model cfg the explorer replays schedules across many
        // executions of the same closure; a process-global counter would
        // make each execution draw a different decision stream and break
        // replay determinism. Endpoints are distinguished by tag alone
        // there (construction order within one execution is fixed).
        #[cfg(parsim_model)]
        let seq = 0u64;
        #[cfg(not(parsim_model))]
        let seq = SEQUENCE.fetch_add(1, Ordering::Relaxed);
        ChaosState {
            state: base_seed() ^ h ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// With probability 1/8, yields the thread 1–4 times.
    ///
    /// The yield goes through the facade so that under `cfg(parsim_model)`
    /// every chaos-injected yield is a first-class schedule point: the
    /// explorer and `cargo test --features chaos` perturb the very same
    /// windows of the protocols.
    pub fn maybe_yield(&mut self) {
        let r = self.next();
        if r & 0x7 == 0 {
            for _ in 0..(1 + ((r >> 3) & 0x3)) {
                crate::sync::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_streams_are_seeded_and_distinct() {
        let mut a = ChaosState { state: 1 };
        let mut b = ChaosState { state: 1 };
        let mut c = ChaosState { state: 2 };
        let sa: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next()).collect();
        assert_eq!(sa, sb, "same seed, same decisions");
        assert_ne!(sa, sc, "different seed, different decisions");
    }

    #[test]
    fn maybe_yield_terminates() {
        let mut s = ChaosState::new("test");
        for _ in 0..10_000 {
            s.maybe_yield();
        }
    }
}
