//! Lock-free scheduling primitives for the parallel simulation engines.
//!
//! The paper's asynchronous algorithm (§4) schedules elements through an
//! n×n grid of single-reader/single-writer FIFO queues: "each queue has
//! only one processor that adds elements to it and only one processor that
//! removes elements from it... Since no locks are used, the two processors
//! corresponding to each queue must never modify the same location." This
//! crate provides exactly those building blocks:
//!
//! - [`spsc`]: an unbounded lock-free single-producer/single-consumer
//!   queue (segmented, with the Lamport publish/consume protocol),
//! - [`ring()`]: the bounded Lamport ring, the paper's literal structure
//!   ("the head and tail never point to the same location"),
//! - [`grid()`]: the n×n mailbox grid with round-robin scatter senders,
//! - [`barrier::SpinBarrier`]: the sense-reversing barrier the synchronous
//!   algorithms need at phase boundaries,
//! - [`activation::ActivationState`]: the per-element at-most-once
//!   scheduling state machine ("activate the elements only once"), and
//! - [`central::CentralQueue`]: a deliberately contended lock-based queue
//!   used to reproduce the paper's negative result (§2: one centralized
//!   queue capped speed-up at ~2 with 8 processors).

pub mod activation;
pub mod barrier;
pub mod central;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod grid;
pub mod pad;
pub mod ring;
pub mod spsc;

pub use activation::ActivationState;
pub use pad::CachePadded;
pub use barrier::SpinBarrier;
pub use central::CentralQueue;
pub use grid::{grid, GridReceiver, GridSender};
pub use ring::{ring, RingReceiver, RingSender};
pub use spsc::{channel, Receiver, Sender};
