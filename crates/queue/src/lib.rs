//! Lock-free scheduling primitives for the parallel simulation engines.
//!
//! The paper's asynchronous algorithm (§4) schedules elements through an
//! n×n grid of single-reader/single-writer FIFO queues: "each queue has
//! only one processor that adds elements to it and only one processor that
//! removes elements from it... Since no locks are used, the two processors
//! corresponding to each queue must never modify the same location." This
//! crate provides exactly those building blocks:
//!
//! - [`spsc`]: an unbounded lock-free single-producer/single-consumer
//!   queue (segmented, with the Lamport publish/consume protocol),
//! - [`ring()`]: the bounded Lamport ring, the paper's literal structure
//!   ("the head and tail never point to the same location"),
//! - [`grid()`]: the n×n mailbox grid with round-robin scatter senders,
//! - [`barrier::SpinBarrier`]: the sense-reversing barrier the synchronous
//!   algorithms need at phase boundaries,
//! - [`handoff::StepHandoff`]: per-worker published phase counters that
//!   replace the compiled batch kernel's global step barrier with
//!   neighbor-only producer/consumer synchronization,
//! - [`activation::ActivationState`]: the per-element at-most-once
//!   scheduling state machine ("activate the elements only once"),
//! - [`batch::IdBatch`]: a cache-line-sized batch of element ids so one
//!   grid slot carries many activations (locality-aware scheduling),
//! - [`backoff::Backoff`]: truncated exponential backoff for idle
//!   workers (spin → yield → bounded park), and
//! - [`central::CentralQueue`]: a deliberately contended lock-based queue
//!   used to reproduce the paper's negative result (§2: one centralized
//!   queue capped speed-up at ~2 with 8 processors).
//!
//! The barrier, backoff, and grid primitives additionally expose
//! `*_traced` variants that record into a `parsim_trace::WorkerTracer`
//! (span for barrier waits, instants for grid traffic and parks). With the
//! `trace` feature off these wrappers cost nothing beyond the plain call.
//!
//! # Model checking
//!
//! Every lock-free protocol here compiles against the [`sync`] facade
//! instead of `std` directly. Under `RUSTFLAGS="--cfg parsim_model"` the
//! facade resolves to the `parsim-model-check` interleaving explorer and
//! `tests/model.rs` exhaustively checks the real implementations —
//! torn/dropped SPSC items, drop-while-nonempty drains, barrier
//! deadlock/double-release, activation-handoff visibility. See DESIGN.md
//! §9 for the inventory-to-model-test mapping.

pub mod activation;
pub mod arena;
pub mod backoff;
pub mod barrier;
pub mod batch;
pub mod central;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod grid;
pub mod handoff;
pub mod pad;
pub mod ring;
pub mod spsc;
pub mod sync;

pub use activation::ActivationState;
#[cfg(not(parsim_model))]
pub use arena::{ArenaDomain, WorkerArena};
pub use arena::{ArenaStats, EpochDomain, MailPool, ReturnStack};
pub use backoff::Backoff;
pub use batch::{IdBatch, BATCH_CAPACITY};
pub use pad::CachePadded;
pub use barrier::SpinBarrier;
pub use central::CentralQueue;
pub use handoff::StepHandoff;
pub use grid::{grid, GridReceiver, GridSender};
pub use ring::{ring, RingReceiver, RingSender};
pub use spsc::{channel, Receiver, Sender};
