//! Truncated exponential backoff for idle workers.
//!
//! The asynchronous engine's original idle branch was a bare
//! `spin_loop`/`yield_now` pair, which burns a full hardware thread per
//! idle worker and — on oversubscribed machines — steals cycles from the
//! workers that still have work. This helper escalates through three
//! stages, each doubling in intensity, truncated at a bounded park:
//!
//! 1. **spin**: `2^k` busy-wait hints (k ≤ 6) — cheapest, keeps the
//!    cache-line watch hot for arrivals within tens of nanoseconds;
//! 2. **yield**: `yield_now`, giving the scheduler a chance to run a
//!    producer on this core;
//! 3. **park**: short sleeps doubling from 1 µs and truncated at
//!    [`MAX_PARK`], so a worker never oversleeps termination or new work
//!    by more than ~100 µs.
//!
//! The caller polls its work sources between snoozes, so correctness
//! never depends on a wakeup — the backoff only shapes idle cost.

use parsim_trace::{EventKind, WorkerTracer};
use std::time::Duration;

/// Final spin stage: `2^SPIN_LIMIT` spin hints per snooze.
const SPIN_LIMIT: u32 = 6;
/// Yield stage ends (and parking begins) after this many steps.
const YIELD_LIMIT: u32 = 10;
/// Truncation bound for the park stage.
const MAX_PARK: Duration = Duration::from_micros(100);

/// Truncated exponential backoff state for one idle loop.
///
/// # Examples
///
/// ```
/// use parsim_queue::Backoff;
///
/// let mut b = Backoff::new();
/// let mut parks = 0;
/// for _ in 0..16 {
///     if b.snooze() {
///         parks += 1; // reached the bounded-sleep stage
///     }
/// }
/// assert!(parks > 0);
/// b.reset(); // call on every successful dequeue
/// assert!(!b.snooze()); // back to cheap spinning
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Creates a backoff at the cheapest (spin) stage.
    pub const fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Re-arms the backoff; call after useful work is found.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits a little, escalating on each consecutive call. Returns `true`
    /// when the snooze parked the thread (slept), `false` for the cheap
    /// spin/yield stages — callers count parks for the idle metrics.
    pub fn snooze(&mut self) -> bool {
        let parked = if self.step < SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            false
        } else if self.step < YIELD_LIMIT {
            std::thread::yield_now();
            false
        } else {
            let exp = (self.step - YIELD_LIMIT).min(7);
            let park = Duration::from_micros(1u64 << exp).min(MAX_PARK);
            std::thread::sleep(park);
            true
        };
        self.step = self.step.saturating_add(1);
        parked
    }

    /// [`Backoff::snooze`] that records a `BackoffPark` instant (tagged
    /// with the escalation step) whenever the snooze actually slept.
    #[inline]
    pub fn snooze_traced(&mut self, tracer: &mut WorkerTracer) -> bool {
        let parked = self.snooze();
        if parked {
            tracer.instant(EventKind::BackoffPark, self.step);
        }
        parked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn escalates_spin_yield_park() {
        let mut b = Backoff::new();
        for _ in 0..YIELD_LIMIT {
            assert!(!b.snooze(), "spin/yield stages must not park");
        }
        assert!(b.snooze(), "post-yield stage must park");
    }

    #[test]
    fn park_is_truncated() {
        let mut b = Backoff::new();
        // Drive deep into the park stage; each park must stay bounded.
        for _ in 0..40 {
            b.snooze();
        }
        let t0 = Instant::now();
        assert!(b.snooze());
        // Generous bound: MAX_PARK plus scheduler noise.
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "park exceeded truncation bound"
        );
    }

    #[test]
    fn reset_rearms_the_spin_stage() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        b.reset();
        assert!(!b.snooze());
    }
}
