//! The atomic facade: one set of paths for real atomics and the model.
//!
//! All lock-free code in this crate imports its concurrency primitives
//! from here instead of `std`. In a normal build everything below is a
//! zero-cost alias of the `std` item of the same name. When the custom
//! cfg `parsim_model` is set (`RUSTFLAGS="--cfg parsim_model"`, as the CI
//! model-check job does), the same paths resolve to
//! `parsim_model_check`'s instrumented types, so the *real* protocol
//! implementations — `spsc`, `ring`, `grid`, `barrier`, `activation`,
//! and the chaotic node's chunk lists in `parsim-core` — run under the
//! interleaving explorer unchanged.
//!
//! A cfg (rather than a cargo feature) is used for the same reason loom
//! uses one: feature unification must never silently switch the rest of a
//! build onto model atomics.
//!
//! The one non-aliased item is [`UnsafeCell`]: loom-style checkers need
//! reads and writes of non-atomic shared data funneled through
//! closures so they can be clock-checked, so the real type is a
//! `#[repr(transparent)]` wrapper offering the same `with`/`with_mut`
//! access the model type has.

#[cfg(not(parsim_model))]
pub use std::sync::Arc;

#[cfg(parsim_model)]
pub use parsim_model_check::sync::Arc;

/// `std::sync::atomic` (or the model's mirror of it).
pub mod atomic {
    #[cfg(not(parsim_model))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(parsim_model)]
    pub use parsim_model_check::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// `std::thread` operations that are schedule points under the model.
pub mod thread {
    #[cfg(not(parsim_model))]
    pub use std::thread::yield_now;

    #[cfg(parsim_model)]
    pub use parsim_model_check::thread::yield_now;
}

/// `std::hint` operations that are schedule points under the model.
pub mod hint {
    #[cfg(not(parsim_model))]
    pub use std::hint::spin_loop;

    #[cfg(parsim_model)]
    pub use parsim_model_check::hint::spin_loop;
}

#[cfg(parsim_model)]
pub use parsim_model_check::cell::UnsafeCell;

/// Shared-memory cell with closure-based access (real-mode flavor).
///
/// Equivalent to `std::cell::UnsafeCell`; the `with`/`with_mut` shape
/// exists so the identical call sites compile against the model's
/// race-checked cell under `cfg(parsim_model)`.
#[cfg(not(parsim_model))]
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(parsim_model))]
impl<T> UnsafeCell<T> {
    pub const fn new(v: T) -> UnsafeCell<T> {
        UnsafeCell(std::cell::UnsafeCell::new(v))
    }

    /// Immutable access to the cell's contents.
    ///
    /// # Safety contract (checked under the model)
    ///
    /// The caller must ensure the access does not race a write; under
    /// `cfg(parsim_model)` this exact call site is clock-checked.
    #[inline(always)]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Mutable access to the cell's contents; same contract as
    /// [`with`](UnsafeCell::with) but for writes.
    #[inline(always)]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}
