//! Fixed-capacity element-id batches for the mailbox grid.
//!
//! The asynchronous engine's hash-scatter sends one element id per SPSC
//! slot, so the common producer→consumer hop pays a full cross-core
//! publication per activation. An [`IdBatch`] lets one grid slot carry
//! many ids: the sender accumulates foreign fan-out into a small
//! per-destination buffer and flushes it at activation end, amortizing the
//! release/acquire traffic over the whole batch.
//!
//! The capacity is chosen so the struct fills exactly one cache line
//! (15 × 4-byte ids + 1-byte length + padding = 64 bytes), matching the
//! SPSC ring's slot granularity.

/// Ids per batch: one cache line's worth.
pub const BATCH_CAPACITY: usize = 15;

/// A fixed-capacity batch of element ids carried in one grid slot.
///
/// # Examples
///
/// ```
/// use parsim_queue::IdBatch;
///
/// let mut b = IdBatch::new();
/// assert!(b.push(3));
/// assert!(b.push(7));
/// assert_eq!(b.as_slice(), &[3, 7]);
/// while !b.is_full() {
///     b.push(0);
/// }
/// assert!(!b.push(9), "a full batch rejects further ids");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdBatch {
    len: u8,
    ids: [u32; BATCH_CAPACITY],
}

impl Default for IdBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl IdBatch {
    /// Creates an empty batch.
    pub const fn new() -> IdBatch {
        IdBatch {
            len: 0,
            ids: [0; BATCH_CAPACITY],
        }
    }

    /// Creates a batch holding a single id (the unbatched degenerate case
    /// used by the pure-grid ablation path).
    pub const fn single(id: u32) -> IdBatch {
        let mut b = IdBatch::new();
        b.ids[0] = id;
        b.len = 1;
        b
    }

    /// Appends one id. Returns `false` (leaving the batch unchanged) when
    /// the batch is full — the caller must flush first.
    pub fn push(&mut self, id: u32) -> bool {
        if self.is_full() {
            return false;
        }
        self.ids[self.len as usize] = id;
        self.len += 1;
        true
    }

    /// The ids accumulated so far, oldest first.
    pub fn as_slice(&self) -> &[u32] {
        &self.ids[..self.len as usize]
    }

    /// Number of ids in the batch.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no ids have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the batch holds [`BATCH_CAPACITY`] ids.
    pub fn is_full(&self) -> bool {
        self.len as usize == BATCH_CAPACITY
    }

    /// Removes and returns all ids, leaving the batch empty and reusable.
    pub fn take(&mut self) -> IdBatch {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_one_cache_line() {
        assert_eq!(std::mem::size_of::<IdBatch>(), 64);
    }

    #[test]
    fn push_until_full_then_reject() {
        let mut b = IdBatch::new();
        assert!(b.is_empty());
        for i in 0..BATCH_CAPACITY as u32 {
            assert!(b.push(i), "push {i} within capacity");
        }
        assert!(b.is_full());
        assert!(!b.push(99));
        let expected: Vec<u32> = (0..BATCH_CAPACITY as u32).collect();
        assert_eq!(b.as_slice(), expected.as_slice());
    }

    #[test]
    fn take_resets_for_reuse() {
        let mut b = IdBatch::new();
        b.push(5);
        b.push(6);
        let taken = b.take();
        assert_eq!(taken.as_slice(), &[5, 6]);
        assert!(b.is_empty());
        assert!(b.push(7));
        assert_eq!(b.as_slice(), &[7]);
    }

    #[test]
    fn single_holds_one_id() {
        let b = IdBatch::single(42);
        assert_eq!(b.len(), 1);
        assert_eq!(b.as_slice(), &[42]);
    }
}
