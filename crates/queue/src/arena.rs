//! Per-worker slab arenas with epoch-based reclamation.
//!
//! The chaotic engine's hot path allocates three kinds of objects:
//! behavior-list `Chunk`s, SPSC ring `Segment`s, and mailbox buffers.
//! Before this module each was a one-off global-allocator call — exactly
//! the pattern PARSIR identifies as the difference between scaling and
//! collapsing on multiprocessor hosts. Here every worker owns a slab
//! arena with fixed size classes; objects are carved from worker-local
//! slabs (so first-touch places them on the owning worker) and, once
//! dead, return to the *owning* worker's arena through a per-worker MPSC
//! return stack. Steady-state simulation therefore performs zero
//! global-allocator calls: the only `alloc` traffic is the occasional
//! slab-span grow, amortized over dozens of objects.
//!
//! # Reclamation protocol
//!
//! A freed object may still be *visible* to other workers: a behavior
//! chunk unlinked by its writer's GC can still be referenced by a
//! consumer cursor that has not yet republished its position, and an SPSC
//! segment is freed by the consumer while the producer's tail pointer
//! may still alias it for one more load. The PR 5 model checker's
//! tombstone-quarantine discipline is the correctness spec: memory must
//! not be *reused* until no other thread can still hold a reference.
//!
//! The arena enforces that with classic two-grace-period epoch-based
//! reclamation ([`EpochDomain`]):
//!
//! - every worker **pins** its epoch slot (`global | ACTIVE`, `SeqCst`)
//!   before touching cross-worker-visible objects and unpins after;
//! - **retiring** an object stamps it with the current global epoch and
//!   pushes it onto the owner's [`ReturnStack`];
//! - the owner recycles a retired object only once the global epoch has
//!   advanced by [`GRACE`] (two steps) past its stamp — and the epoch can
//!   only advance when every pinned worker has observed the current one.
//!
//! The pin store and the advance scan are both `SeqCst` on purpose: pin
//! is a store followed by a load of another location (the classic Dekker
//! shape), so anything weaker lets an advancing thread miss a concurrent
//! pin and advance twice past it — a premature reclaim. This exact bug is
//! pinned as a red-green counterexample in
//! `model-check/tests/prefix_counterexamples.rs`, and the protocol is
//! exhaustively explored in `queue/tests/model.rs` and
//! `core/tests/model_chaotic.rs`.
//!
//! # Layout
//!
//! Every block is `64-byte header | payload`, with the payload aligned to
//! 64 bytes and sized by a fixed class table ([`SIZE_CLASSES`]). The
//! header records the owning domain, owner worker, size class, and retire
//! epoch. A dead block's payload doubles as the intrusive [`Retired`]
//! link while it sits on a return stack. Slab spans are never freed
//! piecemeal: when a worker exits, its spans move to the domain's
//! graveyard and are released when the last handle drops, so outstanding
//! objects (e.g. chunks still linked into node lists at engine teardown)
//! never dangle.

use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::ptr;

/// Low bit of an epoch slot: set while the worker is pinned.
pub const EPOCH_ACTIVE: u64 = 1;
/// Epochs advance in steps of 2, keeping the ACTIVE bit free.
pub const EPOCH_STEP: u64 = 2;
/// A retired object is reclaimable once the global epoch has advanced
/// two full steps past its retire stamp (two grace periods).
pub const GRACE: u64 = 2 * EPOCH_STEP;

/// Intrusive link written into a dead block's payload while it waits on
/// a [`ReturnStack`].
pub struct Retired {
    next: AtomicPtr<Retired>,
}

impl Retired {
    pub const fn new() -> Retired {
        Retired {
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

impl Default for Retired {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-worker MPSC return stack: any thread pushes retired blocks, only
/// the owning worker drains (a Treiber stack with single-consumer swap).
pub struct ReturnStack {
    head: CachePadded<AtomicPtr<Retired>>,
}

impl ReturnStack {
    pub const fn new() -> ReturnStack {
        ReturnStack {
            head: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
        }
    }

    /// Pushes one retired block. Callable from any thread.
    ///
    /// # Safety
    ///
    /// `node` must point to a valid, exclusively-owned `Retired` that is
    /// not on any stack; the stack takes logical ownership.
    pub unsafe fn push(&self, node: *mut Retired) {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            (*node).next.store(head, Ordering::Relaxed);
            // Release so the drain's Acquire swap sees the `next` write
            // (successive CASes continue the release sequence).
            match self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Detaches the whole stack (owner side). Returns the head of a
    /// `next`-linked chain, or null.
    pub fn take_all(&self) -> *mut Retired {
        self.head.swap(ptr::null_mut(), Ordering::Acquire)
    }

    /// Drains the stack, calling `f` on each node. Owner side only.
    ///
    /// # Safety
    ///
    /// Caller must be the single draining owner; each node is handed to
    /// `f` exactly once and is no longer linked when `f` runs.
    pub unsafe fn drain(&self, mut f: impl FnMut(*mut Retired)) {
        let mut cur = self.take_all();
        while !cur.is_null() {
            // Relaxed is enough: the Acquire swap in `take_all`
            // synchronized with every push's Release CAS.
            let next = (*cur).next.load(Ordering::Relaxed);
            f(cur);
            cur = next;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed).is_null()
    }
}

impl Default for ReturnStack {
    fn default() -> Self {
        Self::new()
    }
}

/// Global + per-worker announced epochs (two-grace-period EBR).
///
/// Slot encoding: `0` = quiescent, `epoch | EPOCH_ACTIVE` = pinned at
/// `epoch`. The global epoch is always even and advances by
/// [`EPOCH_STEP`].
pub struct EpochDomain {
    global: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl EpochDomain {
    pub fn new(slots: usize) -> EpochDomain {
        EpochDomain {
            global: CachePadded::new(AtomicU64::new(0)),
            slots: (0..slots)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// The current global epoch (`SeqCst`, so retire stamps are never
    /// staler than one concurrent advance).
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }

    /// Pins `w`'s slot at the current global epoch.
    ///
    /// The slot store must be `SeqCst`: it is a store followed by a load
    /// of *another* location (`global`), and [`try_advance`] does the
    /// mirror-image load of the slot after storing `global`. With
    /// anything weaker both threads can miss each other (store buffering)
    /// and the epoch advances twice past a pinned reader — the premature
    /// reclaim pinned red in `prefix_counterexamples.rs`.
    ///
    /// [`try_advance`]: EpochDomain::try_advance
    pub fn pin(&self, w: usize) {
        let mut g = self.global.load(Ordering::Relaxed);
        loop {
            self.slots[w].store(g | EPOCH_ACTIVE, Ordering::SeqCst);
            let now = self.global.load(Ordering::SeqCst);
            if now == g {
                return;
            }
            // The epoch advanced between the read and the pin; re-pin at
            // the newer epoch so we never hold the domain back a step.
            g = now;
        }
    }

    /// Clears `w`'s pin.
    pub fn unpin(&self, w: usize) {
        self.slots[w].store(0, Ordering::Release);
    }

    /// Advances the global epoch by one step if every pinned worker has
    /// observed the current one. Returns whether it advanced.
    pub fn try_advance(&self) -> bool {
        let g = self.global.load(Ordering::SeqCst);
        for slot in self.slots.iter() {
            let s = slot.load(Ordering::SeqCst);
            if s & EPOCH_ACTIVE != 0 && s & !EPOCH_ACTIVE != g {
                return false;
            }
        }
        self.global
            .compare_exchange(g, g + EPOCH_STEP, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
    }

    /// Whether an object retired at `retire_epoch` is safe to reuse.
    pub fn can_reclaim(&self, retire_epoch: u64) -> bool {
        self.epoch() >= retire_epoch + GRACE
    }
}

/// Aggregated arena counters, surfaced as `Metrics::arena`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slab spans obtained from the global allocator (the only
    /// global-allocator calls the arena ever makes).
    pub slab_allocs: u64,
    /// Bytes in those spans.
    pub slab_bytes: u64,
    /// Allocations served from a free list (a previously-retired block).
    pub recycled: u64,
    /// Allocations carved fresh from a slab span.
    pub fresh: u64,
    /// Blocks retired by their owning worker.
    pub retired_local: u64,
    /// Blocks retired by a non-owner (crossed a return stack).
    pub retired_remote: u64,
    /// Retired blocks that cleared their grace period and re-entered a
    /// free list.
    pub reclaimed: u64,
    /// High-water mark of retired-but-not-yet-reclaimable blocks
    /// observed by any single owner (the quarantine depth).
    pub quarantine_peak: u64,
}

impl ArenaStats {
    pub fn merge(&mut self, o: &ArenaStats) {
        self.slab_allocs += o.slab_allocs;
        self.slab_bytes += o.slab_bytes;
        self.recycled += o.recycled;
        self.fresh += o.fresh;
        self.retired_local += o.retired_local;
        self.retired_remote += o.retired_remote;
        self.reclaimed += o.reclaimed;
        self.quarantine_peak = self.quarantine_peak.max(o.quarantine_peak);
    }

    pub fn is_empty(&self) -> bool {
        *self == ArenaStats::default()
    }

    /// Blocks currently handed out and not yet retired.
    pub fn live_blocks(&self) -> u64 {
        (self.recycled + self.fresh).saturating_sub(self.retired_local + self.retired_remote)
    }

    /// Publishes these totals into a telemetry shard (normally the
    /// driver's — slab counters are only harvestable post-join, once per
    /// run, so the adds land on slots no worker writes).
    pub fn publish(&self, shard: &parsim_telemetry::Shard) {
        use parsim_telemetry::{Counter, Gauge};
        shard.add(Counter::ArenaSlabAllocs, self.slab_allocs);
        shard.add(Counter::ArenaSlabBytes, self.slab_bytes);
        shard.add(Counter::ArenaRecycled, self.recycled);
        shard.add(Counter::ArenaFresh, self.fresh);
        shard.add(Counter::ArenaReclaimed, self.reclaimed);
        shard.set_gauge(Gauge::ArenaLiveBlocks, self.live_blocks());
        shard.gauge_max(Gauge::ArenaQuarantinePeak, self.quarantine_peak);
    }
}

/// Barrier-separated n×n buffer recycling pool (the PR 2 mailbox pool,
/// subsumed into the arena module).
///
/// Slot `(a, b)` is written by worker `a` in one phase and read by
/// worker `b` in another; the engine's barrier between phases is the
/// synchronization, exactly like the mailbox slots themselves.
/// One pool slot: a stack of recycled buffers behind a padded cell.
type MailSlot<T> = CachePadded<std::cell::UnsafeCell<Vec<Vec<T>>>>;

pub struct MailPool<T> {
    n: usize,
    slots: Box<[MailSlot<T>]>,
}

// SAFETY: each slot is accessed by one thread at a time under the
// caller's barrier discipline (documented on `put`/`take`).
unsafe impl<T: Send> Send for MailPool<T> {}
unsafe impl<T: Send> Sync for MailPool<T> {}

impl<T> MailPool<T> {
    pub fn new(n: usize) -> MailPool<T> {
        MailPool {
            n,
            slots: (0..n * n)
                .map(|_| CachePadded::new(std::cell::UnsafeCell::new(Vec::new())))
                .collect(),
        }
    }

    /// Returns a spent buffer to the `(from, to)` slot.
    ///
    /// # Safety
    ///
    /// No other thread may access slot `(from, to)` concurrently; the
    /// caller's phase barrier provides the separation.
    pub unsafe fn put(&self, from: usize, to: usize, buf: Vec<T>) {
        (*self.slots[from * self.n + to].get()).push(buf);
    }

    /// Takes a recycled buffer from the `(from, to)` slot, if any.
    ///
    /// # Safety
    ///
    /// Same exclusivity contract as [`put`](MailPool::put).
    pub unsafe fn take(&self, from: usize, to: usize) -> Option<Vec<T>> {
        (*self.slots[from * self.n + to].get()).pop()
    }
}

#[cfg(not(parsim_model))]
pub use slab::{live_slab_blocks, retire_remote, ArenaDomain, WorkerArena, MAX_CLASS};

#[cfg(not(parsim_model))]
mod slab {
    //! The slab layer proper. Real builds only: under `parsim_model` the
    //! engines fall back to the global allocator and the protocol types
    //! above are what the explorer checks.

    use super::{EpochDomain, Retired, ReturnStack, GRACE};
    use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
    use std::cell::{Cell, RefCell};
    use std::ptr;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// Payload size classes. All multiples of 64 so block footprints
    /// preserve 64-byte alignment across a span. 3072 fits a behavior
    /// `Chunk` (~2.1 KB), 17408 a `Segment<IdBatch>` (~16 KB).
    pub const SIZE_CLASSES: [usize; 16] = [
        64, 128, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 17408, 24576, 32768,
        65536,
    ];

    /// Largest payload the arena serves; bigger requests must use the
    /// global allocator.
    pub const MAX_CLASS: usize = SIZE_CLASSES[SIZE_CLASSES.len() - 1];

    /// Header prefix of every block; payload starts at +64 so it keeps
    /// cache-line alignment.
    const HDR: usize = 64;

    #[repr(C)]
    struct BlockHdr {
        domain: *const DomainShared,
        owner: u32,
        class: u32,
        retire_epoch: u64,
    }

    /// Blocks carved per slab span, by class: big enough that slab grows
    /// are two orders of magnitude rarer than object allocations.
    fn blocks_per_span(class: usize) -> usize {
        if class <= 1024 {
            256
        } else if class <= 4096 {
            128
        } else {
            32
        }
    }

    fn class_index(size: usize) -> usize {
        SIZE_CLASSES
            .iter()
            .position(|&c| c >= size)
            .unwrap_or_else(|| panic!("arena request of {size} bytes exceeds MAX_CLASS"))
    }

    /// Live slab spans across all domains in the process. A test probe:
    /// engine teardown must return this to its starting value.
    static LIVE_SLAB_BLOCKS: AtomicI64 = AtomicI64::new(0);

    /// Current number of live slab spans (see the leak test in
    /// `core/tests/arena.rs`).
    pub fn live_slab_blocks() -> i64 {
        LIVE_SLAB_BLOCKS.load(Ordering::SeqCst)
    }

    struct Span {
        ptr: *mut u8,
        layout: Layout,
    }

    // SAFETY: a Span is an inert allocation record; the memory it names
    // is only touched under the arena's own disciplines.
    unsafe impl Send for Span {}

    impl Span {
        fn free(self) {
            // SAFETY: allocated with exactly this layout in `grow`.
            unsafe { dealloc(self.ptr, self.layout) };
            LIVE_SLAB_BLOCKS.fetch_sub(1, Ordering::SeqCst);
        }
    }

    struct WorkerShared {
        returns: ReturnStack,
    }

    pub(super) struct DomainShared {
        epochs: EpochDomain,
        workers: Box<[WorkerShared]>,
        /// Spans of exited workers, released when the domain drops.
        graveyard: Mutex<Vec<Span>>,
        slab_allocs: AtomicU64,
        slab_bytes: AtomicU64,
        recycled: AtomicU64,
        fresh: AtomicU64,
        retired_local: AtomicU64,
        retired_remote: AtomicU64,
        reclaimed: AtomicU64,
        quarantine_peak: AtomicU64,
    }

    impl Drop for DomainShared {
        fn drop(&mut self) {
            for span in self.graveyard.get_mut().unwrap().drain(..) {
                span.free();
            }
        }
    }

    /// A shared handle to one arena domain (one per engine run). Worker
    /// slot `n_workers` is the *builder* slot, used by the constructing
    /// thread before workers spawn.
    #[derive(Clone)]
    pub struct ArenaDomain {
        shared: Arc<DomainShared>,
    }

    impl ArenaDomain {
        pub fn new(n_workers: usize) -> ArenaDomain {
            let slots = n_workers + 1;
            ArenaDomain {
                shared: Arc::new(DomainShared {
                    epochs: EpochDomain::new(slots),
                    workers: (0..slots)
                        .map(|_| WorkerShared {
                            returns: ReturnStack::new(),
                        })
                        .collect::<Box<[_]>>(),
                    graveyard: Mutex::new(Vec::new()),
                    slab_allocs: AtomicU64::new(0),
                    slab_bytes: AtomicU64::new(0),
                    recycled: AtomicU64::new(0),
                    fresh: AtomicU64::new(0),
                    retired_local: AtomicU64::new(0),
                    retired_remote: AtomicU64::new(0),
                    reclaimed: AtomicU64::new(0),
                    quarantine_peak: AtomicU64::new(0),
                }),
            }
        }

        /// Worker count, excluding the builder slot.
        pub fn n_workers(&self) -> usize {
            self.shared.workers.len() - 1
        }

        /// Builds worker `w`'s arena. Call this *on the worker's own
        /// thread* so slab spans are first-touched by their owner.
        pub fn worker(&self, w: usize) -> WorkerArena {
            assert!(w < self.shared.workers.len(), "arena worker out of range");
            WorkerArena {
                w,
                shared: Arc::clone(&self.shared),
                free: (0..SIZE_CLASSES.len())
                    .map(|_| RefCell::new(Vec::new()))
                    .collect(),
                pending: RefCell::new(Vec::new()),
                bump: (0..SIZE_CLASSES.len())
                    .map(|_| Cell::new((ptr::null_mut(), 0)))
                    .collect(),
                spans: RefCell::new(Vec::new()),
                recycled: Cell::new(0),
                fresh: Cell::new(0),
                slab_allocs: Cell::new(0),
                slab_bytes: Cell::new(0),
                retired_local: Cell::new(0),
                reclaimed: Cell::new(0),
                quarantine_peak: Cell::new(0),
            }
        }

        /// The build-phase arena (the extra slot after the workers).
        pub fn builder(&self) -> WorkerArena {
            self.worker(self.n_workers())
        }

        pub fn epochs(&self) -> &EpochDomain {
            &self.shared.epochs
        }

        /// Aggregated counters. Worker-local tallies flush on
        /// `WorkerArena` drop, so read this after workers are done.
        pub fn stats(&self) -> super::ArenaStats {
            let s = &self.shared;
            super::ArenaStats {
                slab_allocs: s.slab_allocs.load(Ordering::Relaxed),
                slab_bytes: s.slab_bytes.load(Ordering::Relaxed),
                recycled: s.recycled.load(Ordering::Relaxed),
                fresh: s.fresh.load(Ordering::Relaxed),
                retired_local: s.retired_local.load(Ordering::Relaxed),
                retired_remote: s.retired_remote.load(Ordering::Relaxed),
                reclaimed: s.reclaimed.load(Ordering::Relaxed),
                quarantine_peak: s.quarantine_peak.load(Ordering::Relaxed),
            }
        }
    }

    /// One worker's slab arena: per-class free lists, an epoch-gated
    /// pending (quarantine) list, and bump carving over owned spans.
    ///
    /// Not `Sync` (interior mutability is plain `Cell`/`RefCell`): one
    /// worker thread owns it, typically behind an `Rc`. It is `Send` so
    /// it can be constructed wherever convenient and moved in.
    pub struct WorkerArena {
        w: usize,
        shared: Arc<DomainShared>,
        free: Box<[RefCell<Vec<*mut u8>>]>,
        /// Retired blocks awaiting their grace period: `(payload, epoch)`.
        pending: RefCell<Vec<(*mut u8, u64)>>,
        /// Per-class bump cursor into the newest span: `(next, left)`.
        bump: Box<[Cell<(*mut u8, usize)>]>,
        spans: RefCell<Vec<Span>>,
        recycled: Cell<u64>,
        fresh: Cell<u64>,
        slab_allocs: Cell<u64>,
        slab_bytes: Cell<u64>,
        retired_local: Cell<u64>,
        reclaimed: Cell<u64>,
        quarantine_peak: Cell<u64>,
    }

    // SAFETY: raw pointers into spans the arena itself owns; moving the
    // whole arena to another thread moves ownership of all of them.
    unsafe impl Send for WorkerArena {}

    impl WorkerArena {
        pub fn worker_index(&self) -> usize {
            self.w
        }

        pub fn domain(&self) -> ArenaDomain {
            ArenaDomain {
                shared: Arc::clone(&self.shared),
            }
        }

        /// Pins this worker's epoch slot (see [`EpochDomain::pin`]).
        pub fn pin(&self) {
            self.shared.epochs.pin(self.w);
        }

        pub fn unpin(&self) {
            self.shared.epochs.unpin(self.w);
        }

        /// Allocates a payload of at least `size` bytes, 64-byte
        /// aligned. Never calls the global allocator except to grow a
        /// slab span.
        pub fn alloc(&self, size: usize) -> *mut u8 {
            let cls = class_index(size);
            if let Some(p) = self.free[cls].borrow_mut().pop() {
                self.recycled.set(self.recycled.get() + 1);
                return p;
            }
            self.collect();
            if let Some(p) = self.free[cls].borrow_mut().pop() {
                self.recycled.set(self.recycled.get() + 1);
                return p;
            }
            self.carve(cls)
        }

        /// Retires a block of *this domain* (any owner, any class) from
        /// this worker's thread.
        ///
        /// # Safety
        ///
        /// `payload` must have come from `alloc` on an arena of the same
        /// domain, must not be retired twice, and no new references to it
        /// may be created after this call (existing holders are what the
        /// grace period covers).
        pub unsafe fn retire(&self, payload: *mut u8) {
            let hdr = payload.sub(HDR) as *mut BlockHdr;
            debug_assert_eq!(
                (*hdr).domain,
                Arc::as_ptr(&self.shared),
                "block retired into a foreign domain"
            );
            let epoch = self.shared.epochs.epoch();
            (*hdr).retire_epoch = epoch;
            if (*hdr).owner as usize == self.w {
                // Own block: no CAS needed, straight into quarantine.
                self.pending.borrow_mut().push((payload, epoch));
                self.retired_local.set(self.retired_local.get() + 1);
            } else {
                push_remote(&self.shared, hdr, payload);
            }
        }

        /// Housekeeping entry point for idle workers: drains this
        /// worker's return stack and promotes grace-period-cleared
        /// blocks back to the free lists. `alloc` does this lazily on a
        /// free-list miss; calling it from an idle loop bounds the
        /// quarantine depth even when the worker stops allocating.
        pub fn maintain(&self) {
            self.collect();
        }

        /// Drains the return stack and promotes grace-period-cleared
        /// blocks to the free lists.
        fn collect(&self) {
            let mut pending = self.pending.borrow_mut();
            // SAFETY: this arena is the stack's unique owner/drainer.
            unsafe {
                self.shared.workers[self.w].returns.drain(|r| {
                    let payload = r as *mut u8;
                    let hdr = payload.sub(HDR) as *const BlockHdr;
                    pending.push((payload, (*hdr).retire_epoch));
                });
            }
            let depth = pending.len() as u64;
            if depth > self.quarantine_peak.get() {
                self.quarantine_peak.set(depth);
            }
            self.shared.epochs.try_advance();
            let epoch = self.shared.epochs.epoch();
            let mut cleared = 0u64;
            pending.retain(|&(payload, e)| {
                if epoch >= e + GRACE {
                    // SAFETY: header written at carve time, intact for
                    // the block's whole life.
                    let cls = unsafe { (*(payload.sub(HDR) as *const BlockHdr)).class } as usize;
                    self.free[cls].borrow_mut().push(payload);
                    cleared += 1;
                    false
                } else {
                    true
                }
            });
            self.reclaimed.set(self.reclaimed.get() + cleared);
        }

        fn carve(&self, cls: usize) -> *mut u8 {
            let footprint = HDR + SIZE_CLASSES[cls];
            let (mut next, mut left) = self.bump[cls].get();
            if left == 0 {
                let n = blocks_per_span(SIZE_CLASSES[cls]);
                let layout = Layout::from_size_align(footprint * n, HDR).unwrap();
                // SAFETY: non-zero-sized, valid layout.
                let span = unsafe { alloc(layout) };
                if span.is_null() {
                    handle_alloc_error(layout);
                }
                LIVE_SLAB_BLOCKS.fetch_add(1, Ordering::SeqCst);
                self.slab_allocs.set(self.slab_allocs.get() + 1);
                self.slab_bytes.set(self.slab_bytes.get() + layout.size() as u64);
                self.spans.borrow_mut().push(Span { ptr: span, layout });
                next = span;
                left = n;
            }
            // SAFETY: `next` points at `left` unclaimed blocks.
            unsafe {
                ptr::write(
                    next as *mut BlockHdr,
                    BlockHdr {
                        domain: Arc::as_ptr(&self.shared),
                        owner: self.w as u32,
                        class: cls as u32,
                        retire_epoch: 0,
                    },
                );
                self.bump[cls].set((next.add(footprint), left - 1));
                self.fresh.set(self.fresh.get() + 1);
                next.add(HDR)
            }
        }
    }

    impl Drop for WorkerArena {
        fn drop(&mut self) {
            let s = &self.shared;
            s.recycled.fetch_add(self.recycled.get(), Ordering::Relaxed);
            s.fresh.fetch_add(self.fresh.get(), Ordering::Relaxed);
            s.slab_allocs
                .fetch_add(self.slab_allocs.get(), Ordering::Relaxed);
            s.slab_bytes
                .fetch_add(self.slab_bytes.get(), Ordering::Relaxed);
            s.retired_local
                .fetch_add(self.retired_local.get(), Ordering::Relaxed);
            s.reclaimed
                .fetch_add(self.reclaimed.get(), Ordering::Relaxed);
            s.quarantine_peak
                .fetch_max(self.quarantine_peak.get(), Ordering::Relaxed);
            // Spans outlive the worker: outstanding objects may still be
            // linked into shared structures until the domain drops.
            let mut graveyard = s.graveyard.lock().unwrap();
            graveyard.append(&mut self.spans.borrow_mut());
        }
    }

    fn push_remote(shared: &Arc<DomainShared>, hdr: *mut BlockHdr, payload: *mut u8) {
        // SAFETY (caller: retire/retire_remote): the block is dead, so
        // overlaying the intrusive link on its payload is exclusive.
        unsafe {
            let r = payload as *mut Retired;
            ptr::write(r, Retired::new());
            shared.workers[(*hdr).owner as usize].returns.push(r);
        }
        shared.retired_remote.fetch_add(1, Ordering::Relaxed);
    }

    /// Retires a block without a worker handle (e.g. an SPSC consumer
    /// freeing a producer-owned segment).
    ///
    /// # Safety
    ///
    /// Same contract as [`WorkerArena::retire`], plus: the owning domain
    /// must still be alive (some handle to it outlives this call).
    pub unsafe fn retire_remote(payload: *mut u8) {
        let hdr = payload.sub(HDR) as *mut BlockHdr;
        let domain = (*hdr).domain;
        let epoch = (*domain).epochs.epoch();
        (*hdr).retire_epoch = epoch;
        let r = payload as *mut Retired;
        ptr::write(r, Retired::new());
        (*domain).workers[(*hdr).owner as usize].returns.push(r);
        (*domain).retired_remote.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn alloc_is_aligned_and_zero_distance_from_class() {
            let domain = ArenaDomain::new(1);
            let a = domain.worker(0);
            for &size in &[1usize, 64, 65, 2100, 16400] {
                let p = a.alloc(size);
                assert_eq!(p as usize % 64, 0, "payload must be 64-byte aligned");
                // Writable across the whole requested size.
                unsafe {
                    ptr::write_bytes(p, 0xAB, size);
                }
            }
        }

        #[test]
        fn recycle_waits_for_grace_then_reuses() {
            let domain = ArenaDomain::new(1);
            let a = domain.worker(0);
            let p = a.alloc(128);
            // SAFETY: freshly allocated, never shared.
            unsafe { a.retire(p) };
            // Immediately after retiring, the grace period blocks reuse:
            // the next alloc must carve fresh.
            let q = a.alloc(128);
            assert_ne!(p, q, "retired block reused before its grace period");
            // Advance two epochs (nothing is pinned) and the block comes
            // back through the free list.
            assert!(domain.epochs().try_advance());
            assert!(domain.epochs().try_advance());
            let r = a.alloc(128);
            assert_eq!(p, r, "grace-cleared block should be recycled");
            let stats = {
                drop(a);
                domain.stats()
            };
            assert_eq!(stats.retired_local, 1);
            assert_eq!(stats.reclaimed, 1);
            assert_eq!(stats.recycled, 1);
        }

        #[test]
        fn pinned_reader_blocks_reclaim() {
            let domain = ArenaDomain::new(2);
            let a = domain.worker(0);
            domain.epochs().pin(1);
            let p = a.alloc(64);
            unsafe { a.retire(p) };
            // Worker 1 is pinned at the retire epoch: no amount of
            // advancing from here can clear the grace period.
            for _ in 0..4 {
                domain.epochs().try_advance();
            }
            let q = a.alloc(64);
            assert_ne!(p, q, "reclaimed under a pinned reader");
            domain.epochs().unpin(1);
            for _ in 0..2 {
                assert!(domain.epochs().try_advance());
            }
            let r = a.alloc(64);
            assert_eq!(p, r);
        }

        #[test]
        fn cross_thread_retire_returns_to_owner() {
            let domain = ArenaDomain::new(2);
            let a0 = domain.worker(0);
            let p = a0.alloc(256) as usize;
            let d = domain.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let a1 = d.worker(1);
                    // SAFETY: the block is dead from worker 0's view.
                    unsafe { a1.retire(p as *mut u8) };
                });
            });
            assert!(domain.epochs().try_advance());
            assert!(domain.epochs().try_advance());
            let q = a0.alloc(256);
            assert_eq!(p, q as usize, "remote retire must reach the owner");
            drop(a0);
            let stats = domain.stats();
            assert_eq!(stats.retired_remote, 1);
            assert_eq!(stats.reclaimed, 1);
        }

        #[test]
        fn spans_survive_worker_exit_and_free_on_domain_drop() {
            let before = live_slab_blocks();
            let domain = ArenaDomain::new(1);
            let p;
            {
                let a = domain.worker(0);
                p = a.alloc(1024);
                assert!(live_slab_blocks() > before);
            }
            // Worker gone; its span is graveyarded, the payload still
            // addressable until the domain drops.
            unsafe {
                ptr::write_bytes(p, 0x5A, 1024);
            }
            drop(domain);
            assert_eq!(live_slab_blocks(), before, "slab span leaked");
        }

        #[test]
        fn retire_remote_without_handle() {
            let before = live_slab_blocks();
            let domain = ArenaDomain::new(1);
            let a = domain.worker(0);
            let p = a.alloc(17000);
            // SAFETY: dead block, domain alive via `domain`.
            unsafe { retire_remote(p) };
            assert!(domain.epochs().try_advance());
            assert!(domain.epochs().try_advance());
            assert_eq!(a.alloc(17000), p);
            drop(a);
            assert_eq!(domain.stats().retired_remote, 1);
            drop(domain);
            assert_eq!(live_slab_blocks(), before);
        }
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;

    #[test]
    fn return_stack_roundtrip() {
        let stack = ReturnStack::new();
        assert!(stack.is_empty());
        let mut nodes: Vec<Box<Retired>> = (0..3).map(|_| Box::new(Retired::new())).collect();
        let ptrs: Vec<*mut Retired> = nodes.iter_mut().map(|n| &mut **n as *mut Retired).collect();
        // SAFETY: nodes are valid and pushed exactly once.
        unsafe {
            for &p in &ptrs {
                stack.push(p);
            }
        }
        let mut drained = Vec::new();
        // SAFETY: single-threaded owner drain.
        unsafe { stack.drain(|p| drained.push(p)) };
        // LIFO order.
        assert_eq!(drained, ptrs.iter().rev().copied().collect::<Vec<_>>());
        assert!(stack.is_empty());
    }

    #[test]
    fn epoch_advance_requires_current_pins() {
        let e = EpochDomain::new(2);
        assert_eq!(e.epoch(), 0);
        // A worker pinned AT the current epoch does not block the next
        // advance — only a lagging pin does.
        e.pin(0);
        assert!(e.try_advance());
        assert_eq!(e.epoch(), EPOCH_STEP);
        assert!(!e.try_advance(), "slot 0 still announces epoch 0");
        e.unpin(0);
        assert!(e.try_advance());
        assert_eq!(e.epoch(), 2 * EPOCH_STEP);
        assert!(!e.can_reclaim(EPOCH_STEP));
        assert!(e.can_reclaim(0));
    }

    #[test]
    fn mail_pool_recycles_per_slot() {
        let pool: MailPool<u32> = MailPool::new(2);
        // SAFETY: single-threaded — trivially phase-separated.
        unsafe {
            assert!(pool.take(0, 1).is_none());
            pool.put(0, 1, vec![7, 8]);
            assert_eq!(pool.take(0, 1), Some(vec![7, 8]));
            assert!(pool.take(1, 0).is_none(), "slots are directional");
        }
    }
}
