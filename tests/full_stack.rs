//! Integration tests across the whole workspace, through the `parsim`
//! facade: circuits → engines → machine models must stay mutually
//! consistent.

use parsim::circuits::{
    functional_multiplier, gate_multiplier, inverter_array, pipelined_cpu, random_circuit,
    RandomCircuitParams,
};
use parsim::engine::{
    assert_equivalent, ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven,
};
use parsim::logic::Time;
use parsim::machine::{model_async, model_seq, model_sync, trace_execution, MachineConfig};
use parsim::netlist::Netlist;

/// The machine model's trace replays the same algorithm as the real
/// sequential engine: their event and evaluation counts must agree
/// exactly on every circuit.
#[test]
fn model_trace_matches_real_engine_counts() {
    let arr = inverter_array(8, 8, 2).unwrap();
    let func = functional_multiplier(&[(3, 9), (500, 700)], 64).unwrap();
    let cpu = pipelined_cpu(8, 48).unwrap();
    let cases: Vec<(&str, &Netlist, Time)> = vec![
        ("array", &arr.netlist, Time(150)),
        ("functional", &func.netlist, Time(128)),
        ("cpu", &cpu.netlist, Time(400)),
    ];
    for (name, netlist, end) in cases {
        let real = EventDriven::run(netlist, &SimConfig::new(end)).unwrap();
        let trace = trace_execution(netlist, end);
        assert_eq!(
            real.metrics.events_processed, trace.total_events,
            "{name}: event counts diverge"
        );
        assert_eq!(
            real.metrics.evaluations, trace.total_evals,
            "{name}: evaluation counts diverge"
        );
    }
}

/// Async engine and async model process the same number of node events.
#[test]
fn async_model_event_count_matches_engine() {
    let arr = inverter_array(8, 8, 1).unwrap();
    let end = Time(120);
    let engine = ChaoticAsync::run(&arr.netlist, &SimConfig::new(end)).unwrap();
    let model = model_async(&arr.netlist, end, &MachineConfig::multimax(1));
    assert_eq!(engine.metrics.events_processed, model.events);
}

/// Every circuit generator's output survives a text-format round trip and
/// simulates identically afterwards.
#[test]
fn text_round_trip_preserves_behavior() {
    let arr = inverter_array(4, 6, 2).unwrap();
    let func = functional_multiplier(&[(42, 69)], 64).unwrap();
    let rnd = random_circuit(&RandomCircuitParams {
        elements: 60,
        seed: 99,
        ..Default::default()
    })
    .unwrap();
    for (name, netlist, end) in [
        ("array", &arr.netlist, Time(100)),
        ("functional", &func.netlist, Time(64)),
        ("random", &rnd.netlist, Time(100)),
    ] {
        let reparsed = Netlist::from_text(&netlist.to_text())
            .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}"));
        // Watch every node (ids are preserved by the round trip).
        let watch: Vec<_> = netlist.iter_nodes().map(|(id, _)| id).collect();
        let cfg = SimConfig::new(end).watch_all(watch);
        let a = EventDriven::run(netlist, &cfg).unwrap();
        let b = EventDriven::run(&reparsed, &cfg).unwrap();
        assert_equivalent(&a, &b, name);
    }
}

/// The paper's headline end-to-end story, in one test: all four engines
/// agree on the multiplier; the virtual Multimax prefers the asynchronous
/// algorithm at high processor counts.
#[test]
fn headline_story() {
    let m = gate_multiplier(8, &[(123, 231), (255, 1)], 160).unwrap();
    let end = m.schedule_end();
    let cfg = SimConfig::new(end).watch_all(m.product.iter().copied());
    let seq = EventDriven::run(&m.netlist, &cfg).unwrap();
    let cfg4 = cfg.clone().threads(4);
    assert_equivalent(&seq, &SyncEventDriven::run(&m.netlist, &cfg4).unwrap(), "sync");
    assert_equivalent(&seq, &ChaoticAsync::run(&m.netlist, &cfg4).unwrap(), "async");
    assert_equivalent(&seq, &CompiledMode::run(&m.netlist, &cfg4).unwrap(), "compiled");

    // Products are numerically correct.
    assert_eq!(
        seq.bus_value_at(&m.product, m.sample_time(0)),
        Some(123 * 231)
    );

    // Modeled at 16 virtual processors, the asynchronous algorithm beats
    // the synchronous one in absolute time.
    let m16 = MachineConfig::multimax(16);
    let sync16 = model_sync(&m.netlist, end, &m16);
    let async16 = model_async(&m.netlist, end, &m16);
    assert!(
        async16.virtual_time < sync16.virtual_time,
        "async {} should finish before sync {}",
        async16.virtual_time,
        sync16.virtual_time
    );
}

/// §5's uniprocessor claim holds in the cost model for every paper
/// circuit: the asynchronous algorithm is 1–3.5× the event-driven one.
#[test]
fn modeled_uniproc_ratio_in_paper_band() {
    let arr = inverter_array(16, 8, 2).unwrap();
    let func = functional_multiplier(&[(3, 9), (500, 700), (1, 1)], 64).unwrap();
    for (name, netlist, end) in [
        ("array", &arr.netlist, Time(400)),
        ("functional", &func.netlist, Time(192)),
    ] {
        let seq = model_seq(netlist, end, &MachineConfig::multimax(1).cost);
        let asy = model_async(netlist, end, &MachineConfig::multimax(1));
        let ratio = seq.virtual_time as f64 / asy.virtual_time as f64;
        assert!(
            (1.0..=3.5).contains(&ratio),
            "{name}: uniprocessor ratio {ratio:.2} outside the paper's band"
        );
    }
}

/// VCD export is structurally valid for a multi-engine run.
#[test]
fn vcd_export_is_well_formed() {
    let arr = inverter_array(2, 2, 1).unwrap();
    let cfg = SimConfig::new(Time(20)).watch_all(arr.taps.iter().copied());
    let r = ChaoticAsync::run(&arr.netlist, &cfg.threads(2)).unwrap();
    let vcd = r.to_vcd();
    assert!(vcd.contains("$timescale"));
    assert!(vcd.contains("$enddefinitions"));
    assert_eq!(vcd.matches("$var").count(), 2);
    assert!(vcd.lines().filter(|l| l.starts_with('#')).count() > 2);
}
